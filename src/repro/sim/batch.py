"""Columnar batch replay: the vectorized front-end of the event loop.

The object replay path (:mod:`repro.sim.replay`) schedules one heap
event per request arrival and plans each request inside its event
handler.  That is fully general -- and pays interpreter dispatch per
event.  This driver exploits three structural facts of the fast path
(analytic FCFS service, no faults, no observation):

1. **Planning is clock-free.**  ``scheme.process(request, now)`` never
   reads ``now`` on the fast path (it only feeds observation), so
   requests can be planned in arrival order *ahead* of disk servicing.
2. **Completion is scheme-free.**  Finishing a request touches only
   the disks and the metrics collector, never scheme state.
3. **Epoch ticks are the only interleaving.**  A scheme's ``on_epoch``
   does mutate scheme state, so plan-ahead is windowed: all arrivals
   up to a tick's timestamp are planned (in arrival order) before the
   tick fires, exactly the order the event loop would have produced
   (arrival events always outrank callbacks on timestamp ties, because
   every arrival's heap sequence number is assigned at setup).

Planning therefore proceeds in batches over the *columnar* trace
(:mod:`repro.traces.columnar`): fingerprints are classified per batch
(first-stream-occurrence chunks can skip their guaranteed-miss index
probe -- see :meth:`DedupScheme.plan_batch`), requests are
materialised via the no-validation :meth:`IORequest.raw`, and the
disk/metrics phase replays completions through a single merged
arrival-cursor + callback-heap loop that reproduces the engine's
``(time, seq)`` event order exactly.

The result is **bit-identical** to :func:`repro.sim.replay.replay_traces`
for every scheme and any batch size (pinned by golden tests), at a
multiple of its throughput (see ``BENCH_replay.json`` and
``docs/performance.md``).  Configurations outside the fast path
(schedulers, faults, SSD, telemetry, ...) are detected by
:func:`batch_eligible` and silently fall back to the object path --
which is bit-identical anyway.
"""

from __future__ import annotations

import gc
import math
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.base import DedupScheme, PlannedIO
from repro.constants import BLOCK_SIZE
from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import disk_utilisation
from repro.sim.replay import ReplayConfig, ReplayResult, size_disks
from repro.sim.request import IORequest, OpType
from repro.storage.disk import Disk
from repro.storage.namespace import NamespaceMapper
from repro.storage.raid import RaidArray, RaidLevel
from repro.traces.columnar import ColumnarTrace, MergedColumns, merge_columnar
from repro.traces.format import Trace

__all__ = ["batch_eligible", "replay_columnar", "DEFAULT_BATCH_SIZE"]

#: Planning window, in requests.  Large enough to amortise the NumPy
#: slicing per batch, small enough to keep materialised request
#: windows cache-friendly; results are invariant to it (tested).
DEFAULT_BATCH_SIZE = 4096

#: Heap entry kinds for the servicing loop (compared after seq, so the
#: values never decide order -- seqs are unique).
_FINISH = 0
_TICK = 1


def batch_eligible(config: ReplayConfig) -> bool:
    """Can this replay config take the columnar fast path?

    The batch driver reproduces the *fast* path of the event loop:
    analytic FCFS disks, healthy array, no SSD tier, no telemetry or
    tracing, no invariant checking.  Anything else falls back to the
    object path (bit-identical, just slower).
    """
    return (
        config.scheduler is None
        and config.failed_disk is None
        and config.ssd_params is None
        and not config.check_invariants
        and config.faults is None
        and config.fault_seed is None
        and config.timeline is None
        and not config.spans
        and config.slo is None
        and config.jobs is None
    )


def _as_columnar(trace: Union[Trace, ColumnarTrace]) -> ColumnarTrace:
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def replay_columnar(
    traces: Sequence[Union[Trace, ColumnarTrace]],
    scheme: DedupScheme,
    config: ReplayConfig = ReplayConfig(),
    collector: Optional[MetricsCollector] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    per_volume_metrics: bool = True,
) -> ReplayResult:
    """Replay N trace streams through the columnar batch core.

    Accepts :class:`Trace` or :class:`ColumnarTrace` inputs (the shard
    workers of the parallel runner ship columns directly).  Requires a
    :func:`batch_eligible` config -- callers wanting automatic
    fallback should go through ``replay_traces(..., batch_size=...)``.
    """
    if not traces:
        raise ConfigError("replay_columnar needs at least one trace")
    if not batch_eligible(config):
        raise ConfigError("replay config is outside the columnar fast path")
    if batch_size < 1:
        raise ConfigError("batch_size must be >= 1")

    ctraces = [_as_columnar(t) for t in traces]
    mapper = NamespaceMapper((ct.name, ct.logical_blocks) for ct in ctraces)
    multi = len(ctraces) > 1
    if mapper.total_logical_blocks > scheme.regions.logical_blocks:
        raise ConfigError(
            f"trace touches {mapper.total_logical_blocks} logical blocks but "
            f"the scheme was configured for {scheme.regions.logical_blocks}"
        )
    geometry = config.geometry()
    params = size_disks(scheme.regions.total_blocks, config)
    disks = [Disk(params, disk_id=i) for i in range(geometry.ndisks)]
    raid = RaidArray(geometry)
    metrics = collector if collector is not None else MetricsCollector()
    if per_volume_metrics:
        metrics.track_volumes()

    merged = merge_columnar(
        ctraces, [mapper.volume(vid).base for vid in range(len(ctraces))]
    )
    n = len(merged)
    run_name = (
        ctraces[0].name if not multi else "+".join(ct.name for ct in ctraces)
    )
    total_warmup = sum(ct.warmup_count for ct in ctraces)

    boundary = {"writes": 0, "removed": 0}
    if n:
        # The batch core churns short-lived acyclic objects (plans and
        # volume ops die by refcount); generational GC scans are pure
        # overhead here, so gate the collector off for the hot loop.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            _replay_merged(
                merged, scheme, raid, disks, metrics, config, batch_size,
                multi, boundary,
            )
        finally:
            if gc_was_enabled:
                gc.enable()

    volumes: List[Dict[str, Any]] = []
    if per_volume_metrics:
        tracked = set(metrics.volume_ids())
        for ns in mapper:
            entry: Dict[str, Any] = {
                "volume_id": ns.volume_id,
                "name": ns.name,
                "logical_blocks": ns.logical_blocks,
            }
            if ns.volume_id in tracked:
                entry.update(metrics.volume_as_dict(ns.volume_id))
            else:  # volume with no measured traffic
                entry["requests"] = 0
            volumes.append(entry)

    timeline = getattr(scheme.cache, "epoch_timeline", [])
    return ReplayResult(
        trace_name=run_name,
        scheme_name=scheme.name,
        metrics=metrics,
        scheme_stats=scheme.stats(),
        utilisation=disk_utilisation(disks),
        capacity_blocks=scheme.capacity_blocks(),
        writes_total=scheme.writes_total - boundary["writes"],
        write_requests_removed=(
            scheme.write_requests_removed - boundary["removed"]
        ),
        epoch_timeline=[
            e.as_dict() if hasattr(e, "as_dict") else dict(e) for e in timeline
        ],
        volumes=volumes,
    )


def _replay_merged(
    merged: MergedColumns,
    scheme: DedupScheme,
    raid: RaidArray,
    disks: List[Disk],
    metrics: MetricsCollector,
    config: ReplayConfig,
    batch_size: int,
    multi: bool,
    boundary: Dict[str, int],
) -> None:
    """Plan (windowed, batched) and service (event-ordered) the merged
    stream.  Mutates ``scheme``/``disks``/``metrics``/``boundary``."""
    n = len(merged)
    times = merged.times
    times_l = times.tolist()
    lbas_l = merged.lbas.tolist()
    nblocks_l = merged.nblocks.tolist()
    vids_l = merged.volume_ids.tolist()
    is_write_l = (merged.ops == 1).tolist()
    offsets_l = merged.fp_offsets.tolist()
    fp_ids_l = merged.fp_ids.tolist()
    unique_l = merged.first_unique.tolist()
    pool = merged.pool
    measured_l = merged.measured.tolist()
    collect_warmup = config.collect_warmup

    # Fig. 11 boundary snapshot position: the first measured arrival
    # (see replay_traces -- the snapshot happens *before* that request
    # is processed, so planning splits there).
    measured_idx = np.flatnonzero(merged.measured)
    boundary_idx: int = int(measured_idx[0]) if len(measured_idx) else n

    # ------------------------------------------------------------------
    # epoch tick schedule (times accumulate exactly as the event loop's
    # reschedule chain does: T_{k+1} = T_k + interval in float64).
    # ------------------------------------------------------------------
    tick_times: List[float] = []
    tick_wends: List[int] = []
    if scheme.epoch_interval is not None:
        interval = scheme.epoch_interval
        if interval <= 0:
            raise ConfigError("epoch interval must be positive")
        last_arrival = times_l[-1]
        t = times_l[0] + interval
        while True:
            tick_times.append(t)
            nxt = t + interval
            if nxt > last_arrival + interval:
                break
            t = nxt
        # Planning-window end per tick: first arrival strictly after
        # the tick (arrivals at the tick's exact time precede it --
        # their heap seqs were assigned at setup).
        tick_wends = np.searchsorted(times, tick_times, side="right").tolist()

    # ------------------------------------------------------------------
    # planning state
    # ------------------------------------------------------------------
    requests: List[Optional[IORequest]] = [None] * n
    planned: List[Optional[PlannedIO]] = [None] * n
    cross: List[int] = [0] * n
    tick_ops: List[list] = []
    fp_owner: Optional[Dict[int, int]] = {} if multi else None
    use_hints = (
        scheme.fast_unique
        and scheme.uses_fingerprints
        and scheme.chunker is None
        and scheme.spans is None
    )
    plan_cursor = 0
    plan_tick = 0
    plan_batch = scheme.plan_batch
    plan_columns = scheme.plan_columns if fp_owner is None and not use_hints else None
    raw = IORequest.raw
    write_op = OpType.WRITE
    read_op = OpType.READ

    def _plan_range(a: int, b: int) -> None:
        """Materialise and plan arrivals [a, b) (never crosses a tick
        window or the warm-up boundary)."""
        if a == boundary_idx:
            boundary["writes"] = scheme.writes_total
            boundary["removed"] = scheme.write_requests_removed
        if plan_columns is not None:
            # Zero-materialisation tier: the scheme plans straight off
            # the column lists; requests stay ``None`` and ``_finish``
            # materialises the recorded ones lazily.
            plans = plan_columns(
                a, b, is_write_l, lbas_l, nblocks_l, offsets_l, fp_ids_l, pool
            )
            if plans is not None:
                planned[a:b] = plans
                return
        batch: List[IORequest] = []
        append_req = batch.append
        pool_at = pool.__getitem__
        masks: Optional[List[Optional[List[bool]]]] = [] if use_hints else None
        for i in range(a, b):
            if is_write_l[i]:
                lo = offsets_l[i]
                hi = offsets_l[i + 1]
                fps: Optional[Tuple[int, ...]] = tuple(
                    map(pool_at, fp_ids_l[lo:hi])
                )
                req = raw(times_l[i], write_op, lbas_l[i], nblocks_l[i], fps, i, vids_l[i])
                if masks is not None:
                    masks.append(unique_l[lo:hi])
            else:
                req = raw(times_l[i], read_op, lbas_l[i], nblocks_l[i], None, i, vids_l[i])
                if masks is not None:
                    masks.append(None)
            requests[i] = req
            append_req(req)
        plans = plan_batch(batch, masks)
        planned[a:b] = plans
        if fp_owner is not None:
            owner_get = fp_owner.get
            owner_set = fp_owner.setdefault
            for i in range(a, b):
                req_i = batch[i - a]
                fps_i = req_i.fingerprints
                if fps_i is None:
                    continue
                vid = req_i.volume_id
                c = 0
                for k in plans[i - a].deduped_idx:
                    owner = owner_get(fps_i[k])
                    if owner is not None and owner != vid:
                        c += 1
                for fp in fps_i:
                    owner_set(fp, vid)
                if c:
                    cross[i] = c

    def _plan_chunk() -> None:
        """Advance planning by (up to) one batch or one tick."""
        nonlocal plan_cursor, plan_tick
        cursor = plan_cursor
        tick = plan_tick
        wend = tick_wends[tick] if tick < len(tick_wends) else n
        if cursor >= wend and tick < len(tick_times):
            # Every arrival in this window is planned: fire the tick's
            # scheme-state half (its disk half runs in event order).
            tick_ops.append(scheme.on_epoch(tick_times[tick]))
            plan_tick = tick + 1
            return
        stop = min(wend, cursor + batch_size)
        if cursor < boundary_idx < stop:
            stop = boundary_idx
        _plan_range(cursor, stop)
        plan_cursor = stop

    def ensure_planned(idx: int) -> None:
        while plan_cursor <= idx:
            _plan_chunk()

    def ensure_tick_planned(k: int) -> None:
        while plan_tick <= k:
            _plan_chunk()

    # ------------------------------------------------------------------
    # servicing: exact replay of the engine's (time, seq) event order.
    # Arrival events got seqs 0..n-1 at setup, so every callback seq is
    # larger -- an arrival always wins a timestamp tie.
    # ------------------------------------------------------------------
    heap: List[Tuple[float, int, int, int]] = []
    seq = n
    if tick_times:
        heappush(heap, (tick_times[0], seq, _TICK, 0))
        seq += 1

    raid_map = raid.map
    record = metrics.record
    interval_f = scheme.epoch_interval if scheme.epoch_interval is not None else 0.0
    last_arrival_f = times_l[-1]

    # ------------------------------------------------------------------
    # disk mechanics, mirrored into flat locals.  Every service goes
    # through ``_svc`` below and the state is flushed back to the Disk
    # objects once at the end.  The per-disk accumulation order equals
    # the object path's ``Disk.service`` call order, so every float is
    # bit-identical; the bounds check is elided (raid-mapped ops on
    # disks sized by ``size_disks`` are in bounds by construction, and
    # the eligibility gate excludes fail-slow windows).
    # ------------------------------------------------------------------
    g = raid.geometry
    su = g.stripe_unit_blocks
    nd = g.ndisks
    nd1 = nd - 1
    dd = g.data_disks
    raid5 = g.level is RaidLevel.RAID5
    params = disks[0].params
    d_total = params.total_blocks
    smin = params.seek_min
    sdelta = params.seek_max - params.seek_min
    rate = params.transfer_rate
    overhead = params.controller_overhead
    rot = 60.0 / params.rpm / 2.0
    sqrt = math.sqrt
    blk = BLOCK_SIZE
    #: Per-length memo for the RAID-5 read-modify-write rewrite op:
    #: after reading ``(dpba, n)`` the head sits at ``dpba + n``, so
    #: the immediate rewrite always seeks a distance of exactly ``n``
    #: -- its seek / transfer / duration depend on ``n`` alone.
    rmw: Dict[int, Tuple[float, float, float]] = {}
    rmw_get = rmw.get
    d_head = [d.head for d in disks]
    d_busy = [d.busy_until for d in disks]
    d_ops = [d.ops_serviced for d in disks]
    d_blocks = [d.blocks_moved for d in disks]
    d_busyt = [d.busy_time for d in disks]
    d_seek = [d.seek_time_total for d in disks]
    d_rot = [d.rotation_time_total for d in disks]
    d_xfer = [d.transfer_time_total for d in disks]

    def _svc(d: int, now: float, pba: int, n: int) -> float:
        """``Disk.service`` on the mirrored locals (bit-identical)."""
        busy = d_busy[d]
        start = busy if busy > now else now
        dist = pba - d_head[d]
        if dist < 0:
            dist = -dist
        if dist > 0:
            frac = dist / d_total
            if frac > 1.0:
                frac = 1.0
            seek = smin + sdelta * sqrt(frac)
            rot_t = rot
        else:
            seek = 0.0
            rot_t = 0.0
        transfer = n * blk / rate
        duration = overhead + seek + rot_t + transfer
        d_head[d] = pba + n
        done = start + duration
        d_busy[d] = done
        d_ops[d] += 1
        d_blocks[d] += n
        d_busyt[d] += duration
        d_seek[d] += seek
        d_rot[d] += rot_t
        d_xfer[d] += transfer
        return done

    def _finish(i: int, issue_time: float) -> None:
        plan = planned[i]
        assert plan is not None
        if plan.ssd_read_blocks or plan.ssd_write_blocks:
            raise ConfigError(
                f"scheme {scheme.name} emitted SSD traffic but the replay "
                "has no ssd_params configured"
            )
        completion = issue_time
        for vop in plan.volume_ops:
            pba = vop.pba
            n = vop.nblocks
            offset = pba % su
            if offset + n <= su:
                # Extent inside one stripe unit: the raid mapping is a
                # single fragment, computed without DiskOp objects
                # (``RaidArray.locate`` arithmetic inlined).  A RAID-5
                # write of one fragment is always a partial stripe
                # (data_disks >= 2), i.e. the fixed read-modify-write
                # sequence data read/write then parity read/write.
                unit = pba // su
                row = unit // dd
                lane = unit - row * dd
                dpba = row * su + offset
                if raid5:
                    parity = nd1 - row % nd
                    disk = (parity + 1 + lane) % nd
                    if vop.op is read_op:
                        done = _svc(disk, issue_time, dpba, n)
                        if done > completion:
                            completion = done
                    else:
                        # Data R+W then parity R+W, ``_svc`` inlined:
                        # the rewrite half of each pair starts at the
                        # read's completion and reuses the memoized
                        # distance-``n`` seek.  Identical per-disk
                        # accumulation order (one add per op), so every
                        # float matches the generic path bit-for-bit.
                        m = rmw_get(n)
                        if m is None:
                            frac = n / d_total
                            if frac > 1.0:
                                frac = 1.0
                            sk = smin + sdelta * sqrt(frac)
                            tr = n * blk / rate
                            m = (sk, tr, overhead + sk + rot + tr)
                            rmw[n] = m
                        seek_n, transfer, dur_n = m
                        end = dpba + n
                        two_n = n + n
                        dk = disk
                        while True:
                            busy = d_busy[dk]
                            start = busy if busy > issue_time else issue_time
                            dist = dpba - d_head[dk]
                            if dist < 0:
                                dist = -dist
                            if dist > 0:
                                if dist == n:
                                    d_seek[dk] += seek_n
                                    duration = dur_n
                                else:
                                    frac = dist / d_total
                                    if frac > 1.0:
                                        frac = 1.0
                                    seek = smin + sdelta * sqrt(frac)
                                    d_seek[dk] += seek
                                    duration = overhead + seek + rot + transfer
                                d_rot[dk] += rot
                            else:
                                duration = overhead + transfer
                            done = start + duration
                            start = done if done > issue_time else issue_time
                            done = start + dur_n
                            d_busy[dk] = done
                            d_head[dk] = end
                            d_ops[dk] += 2
                            d_blocks[dk] += two_n
                            t = d_busyt[dk] + duration
                            d_busyt[dk] = t + dur_n
                            d_seek[dk] += seek_n
                            d_rot[dk] += rot
                            d_xfer[dk] += transfer
                            d_xfer[dk] += transfer
                            if done > completion:
                                completion = done
                            if dk == parity:
                                break
                            dk = parity
                else:
                    done = _svc(lane % nd, issue_time, dpba, n)
                    if done > completion:
                        completion = done
            elif nd == 1:
                # Single spindle: ``_split`` merges the unit fragments
                # back into one contiguous disk op (disk PBA == volume
                # PBA), for reads and writes alike.
                done = _svc(0, issue_time, pba, n)
                if done > completion:
                    completion = done
            elif offset + n <= 2 * su and (pba // su) % dd != dd - 1:
                # Crosses exactly one stripe-unit boundary and the
                # second fragment stays in the same row: two data
                # fragments on adjacent lanes; a RAID-5 write pays
                # read-modify-write per fragment, then the merged
                # parity range(s) -- ``map_write``'s exact op order.
                unit = pba // su
                row = unit // dd
                lane = unit - row * dd
                n1 = su - offset
                n2 = n - n1
                dpba1 = row * su + offset
                dpba2 = row * su
                if raid5:
                    parity = nd1 - row % nd
                    disk1 = (parity + 1 + lane) % nd
                    disk2 = (parity + 2 + lane) % nd
                else:
                    parity = -1
                    disk1 = lane % nd
                    disk2 = (lane + 1) % nd
                if vop.op is read_op or not raid5:
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                else:
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                    # Parity ranges [(dpba1, n1), (dpba2, n2)] sort to
                    # [(dpba2, n2), (dpba1, n1)] and merge into one
                    # full-unit range iff they touch (offset <= n2;
                    # fragment 1 always ends at the unit boundary).
                    if offset <= n2:
                        done = _svc(parity, issue_time, dpba2, su)
                        if done > completion:
                            completion = done
                        done = _svc(parity, issue_time, dpba2, su)
                        if done > completion:
                            completion = done
                    else:
                        done = _svc(parity, issue_time, dpba2, n2)
                        if done > completion:
                            completion = done
                        done = _svc(parity, issue_time, dpba2, n2)
                        if done > completion:
                            completion = done
                        done = _svc(parity, issue_time, dpba1, n1)
                        if done > completion:
                            completion = done
                        done = _svc(parity, issue_time, dpba1, n1)
                        if done > completion:
                            completion = done
            elif offset + n <= 2 * su:
                # Crosses exactly one stripe-unit boundary from the
                # last data lane of its row into lane 0 of the next
                # row: two fragments in *different* parity rows.
                # ``map_write`` groups by parity row (sorted order),
                # and each row is a partial stripe (a fragment never
                # covers a whole row when data_disks >= 2), so a
                # RAID-5 write pays data RMW + parity RMW for row r,
                # then the same for row r+1.
                unit = pba // su
                row = unit // dd
                n1 = su - offset
                n2 = n - n1
                dpba1 = row * su + offset
                row2 = row + 1
                dpba2 = row2 * su
                if raid5:
                    p1 = nd1 - row % nd
                    disk1 = (p1 + nd1) % nd  # lane == dd-1 == nd-2
                    p2 = nd1 - row2 % nd
                    disk2 = (p2 + 1) % nd  # lane 0 of the next row
                else:
                    p1 = p2 = -1
                    disk1 = nd1  # lane == dd-1 == nd-1 on RAID-0
                    disk2 = 0
                if vop.op is read_op or not raid5:
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                else:
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(p1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(p1, issue_time, dpba1, n1)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                    done = _svc(disk2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                    done = _svc(p2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
                    done = _svc(p2, issue_time, dpba2, n2)
                    if done > completion:
                        completion = done
            else:
                for op in raid_map(vop):
                    done = _svc(op.disk_id, issue_time, op.pba, op.nblocks)
                    if done > completion:
                        completion = done
        if collect_warmup or measured_l[i]:
            req = requests[i]
            if req is None:
                # Zero-materialisation planning left no request object;
                # build the minimal one the collector reads (op /
                # nblocks / volume id -- it never touches fingerprints).
                req = raw(
                    times_l[i],
                    write_op if is_write_l[i] else read_op,
                    lbas_l[i],
                    nblocks_l[i],
                    None,
                    i,
                    vids_l[i],
                )
                requests[i] = req
            record(
                req,
                times_l[i],
                completion,
                plan.eliminated,
                plan.cache_hit_blocks,
                plan.deduped_blocks,
                cross[i],
            )
        if plan.background_ops:
            for vop in plan.background_ops:
                for op in raid_map(vop):
                    _svc(op.disk_id, issue_time, op.pba, op.nblocks)

    cursor = 0
    if not tick_times:
        # No epoch ticks: the event stream is pure in-order arrivals
        # until some plan carries a delay (then the generic heap loop
        # below takes over from the current position).
        while cursor < n:
            i = cursor
            if plan_cursor <= i:
                ensure_planned(i)
            plan = planned[i]
            assert plan is not None
            if plan.delay > 0:
                break
            cursor = i + 1
            _finish(i, times_l[i])
    while cursor < n or heap:
        if cursor < n and (not heap or times_l[cursor] <= heap[0][0]):
            i = cursor
            cursor += 1
            if plan_cursor <= i:
                ensure_planned(i)
            plan = planned[i]
            assert plan is not None
            now = times_l[i]
            if plan.delay > 0:
                heappush(heap, (now + plan.delay, seq, _FINISH, i))
                seq += 1
            else:
                _finish(i, now)
        else:
            t, _s, kind, payload = heappop(heap)
            if kind == _FINISH:
                _finish(payload, t)
            else:
                ensure_tick_planned(payload)
                ops = tick_ops[payload]
                if ops:
                    for vop in ops:
                        for op in raid_map(vop):
                            _svc(op.disk_id, t, op.pba, op.nblocks)
                nxt = t + interval_f
                if nxt <= last_arrival_f + interval_f:
                    heappush(heap, (nxt, seq, _TICK, payload + 1))
                    seq += 1
    # Drain remaining planning (ticks past the last arrival's window
    # were already popped above; anything left is warm-up-only traces
    # with no events -- impossible here since n > 0 -- or final ticks
    # whose planning fired inside the loop).
    ensure_planned(n - 1)
    # Flush the mirrored disk state back to the Disk objects.
    for d, disk in enumerate(disks):
        disk.head = d_head[d]
        disk.busy_until = d_busy[d]
        disk.ops_serviced = d_ops[d]
        disk.blocks_moved = d_blocks[d]
        disk.busy_time = d_busyt[d]
        disk.seek_time_total = d_seek[d]
        disk.rotation_time_total = d_rot[d]
        disk.transfer_time_total = d_xfer[d]
