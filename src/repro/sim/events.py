"""Event queue for the discrete-event engine.

A tiny, allocation-light priority queue of :class:`Event` records.
Ties on timestamp are broken by a monotonically increasing sequence
number so event ordering is deterministic and FIFO among simultaneous
events -- a requirement for reproducible simulations.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """Kinds of events the engine understands."""

    #: A user I/O request arrives at the storage node.
    REQUEST_ARRIVAL = "arrival"
    #: A member disk finished servicing a physical op.
    DISK_COMPLETE = "disk_complete"
    #: A scheme-internal delayed action (e.g. fingerprinting finished,
    #: iCache epoch boundary).
    CALLBACK = "callback"


class Event:
    """One scheduled event.

    ``payload`` is interpreted by the handler for the event kind; the
    queue itself never looks at it.  A ``__slots__`` class rather than
    a dataclass: one is allocated per scheduled event, which makes it
    part of the replay hot path.
    """

    __slots__ = ("time", "kind", "payload", "seq")

    def __init__(
        self, time: float, kind: EventKind, payload: Any = None, seq: int = -1
    ) -> None:
        self.time = time
        self.kind = kind
        self.payload = payload
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, seq={self.seq!r})"
        )


class EventQueue:
    """Deterministic min-heap of events keyed on ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> Event:
        """Schedule *event*; assigns its sequence number."""
        if event.time < 0:
            raise SimulationError(f"event scheduled at negative time {event.time}")
        event.seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Create and push an event in one call."""
        return self.push(Event(time=time, kind=kind, payload=payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        _, _, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
