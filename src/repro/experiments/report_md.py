"""EXPERIMENTS.md generator.

Runs every experiment of the paper at a chosen scale and renders the
paper-vs-measured record.  Regenerate with::

    python -m repro.experiments.report_md [scale]

The benches in ``benchmarks/`` assert the same shapes; this module
only *records* them with the paper's published values side by side.
"""

from __future__ import annotations

import sys
from typing import List

from repro.experiments import figures, runner
from repro.experiments.runner import DEFAULT_SCALE
from repro.metrics.report import improvement_pct

#: Paper numbers quoted in the text (Section IV).
PAPER_SELECT_VS_NATIVE = {  # overall response-time improvement, %
    "web-vm": 53.9,
    "homes": 21.2,
    "mail": 88.6,
}
PAPER_SELECT_WRITE_IMPROVEMENT = {"web-vm": 47.2, "homes": 20.2, "mail": 91.6}
PAPER_IDEDUP_WRITE_IMPROVEMENT = {"web-vm": 11.6, "homes": 1.7, "mail": 54.5}
PAPER_SELECT_READ_IMPROVEMENT = {"web-vm": 11.7, "homes": 4.3, "mail": 85.3}
PAPER_FULL_READ_IMPROVEMENT = {"web-vm": -22.1, "homes": -24.7, "mail": 44.2}
PAPER_NVRAM_MB = {"web-vm": 0.8, "homes": 0.3, "mail": 1.5}


def _section(title: str, body: List[str]) -> List[str]:
    return [f"## {title}", ""] + body + [""]


def build_report(scale: float = DEFAULT_SCALE) -> str:
    lines: List[str] = [
        "# EXPERIMENTS — paper vs measured",
        "",
        f"All measurements from this repository's simulator at generator "
        f"scale `{scale}` (regenerate: `python -m repro.experiments.report_md "
        f"{scale}`, or run `pytest benchmarks/ --benchmark-only`, which also "
        "asserts every shape below).  Absolute times are not comparable to "
        "the paper's hardware testbed; the *shapes* are the reproduction "
        "target (DESIGN.md §3).",
        "",
    ]

    # ---- Table I ------------------------------------------------------
    _rows, text = figures.table1_features()
    lines += _section(
        "Table I — feature comparison",
        ["Reproduced exactly (qualitative):", "", "```", text, "```"],
    )

    # ---- Table II -----------------------------------------------------
    _rows, text = figures.table2_characteristics(scale)
    lines += _section(
        "Table II — trace characteristics",
        [
            "Generator calibration vs the published characteristics "
            "(I/O counts scale with the generator scale):",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- Fig. 1 -------------------------------------------------------
    _data, text = figures.fig1_redundancy_by_size(scale)
    lines += _section(
        "Fig. 1 — I/O redundancy by request size",
        [
            "Paper shape: small writes dominate the request population and "
            "carry the most redundant requests; large requests are mostly "
            "partially redundant.  Measured:",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- Fig. 2 -------------------------------------------------------
    rows, text = figures.fig2_io_vs_capacity(scale)
    gap = sum(r["same_location_pct"] for r in rows) / len(rows)
    lines += _section(
        "Fig. 2 — I/O vs capacity redundancy",
        [
            "Paper: I/O redundancy exceeds capacity redundancy by 21.9 "
            f"points on average.  Measured average gap: **{gap:.1f} points** "
            "(same-location redundant writes).",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- Fig. 3 -------------------------------------------------------
    _rows, text = figures.fig3_partition_sweep(scale=scale)
    lines += _section(
        "Fig. 3 — fixed index/read partition sweep (mail, Full-Dedupe)",
        [
            "Paper shape: larger index cache -> faster writes, slower "
            "reads.  Measured (the sweep replays a calmer-load variant of "
            "the mail trace — at the main experiments' burst intensity, "
            "disk-queue coupling drowns the read-cache signal in our "
            "simulator; this substitution affects Fig. 3 only):",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- Figs. 8 & 9 --------------------------------------------------
    fig8, text8 = figures.fig8_overall_response(scale)
    fig9, text9 = figures.fig9_read_write_split(scale)
    matrix = runner.run_matrix(figures.TRACE_ORDER, figures.FIG8_SCHEMES, scale=scale)
    body = ["```", text8, "", text9, "```", "", "Headline comparisons:", ""]
    body.append(
        "| trace | Select-Dedupe vs Native, overall | paper | write RT cut "
        "(Select) | paper | write RT cut (iDedup) | paper |"
    )
    body.append("|---|---|---|---|---|---|---|")
    for trace in figures.TRACE_ORDER:
        native = matrix[(trace, "Native")].metrics
        select = matrix[(trace, "Select-Dedupe")].metrics
        idedup = matrix[(trace, "iDedup")].metrics
        overall = improvement_pct(
            native.overall_summary().mean, select.overall_summary().mean
        )
        wsel = improvement_pct(native.write_summary().mean, select.write_summary().mean)
        wid = improvement_pct(native.write_summary().mean, idedup.write_summary().mean)
        body.append(
            f"| {trace} | {overall:+.1f}% | +{PAPER_SELECT_VS_NATIVE[trace]}% "
            f"| {wsel:+.1f}% | +{PAPER_SELECT_WRITE_IMPROVEMENT[trace]}% "
            f"| {wid:+.1f}% | +{PAPER_IDEDUP_WRITE_IMPROVEMENT[trace]}% |"
        )
    body += [
        "",
        "Read-path record (paper: Full-Dedupe degrades web-vm/homes reads "
        "by 22.1%/24.7% and improves mail's by 44.2%; Select-Dedupe "
        "improves reads by 11.7%/4.3%/85.3%):",
        "",
        "| trace | Full-Dedupe read | paper | Select-Dedupe read | paper |",
        "|---|---|---|---|---|",
    ]
    for trace in figures.TRACE_ORDER:
        native = matrix[(trace, "Native")].metrics.read_summary().mean
        full = matrix[(trace, "Full-Dedupe")].metrics.read_summary().mean
        select = matrix[(trace, "Select-Dedupe")].metrics.read_summary().mean
        body.append(
            f"| {trace} | {improvement_pct(native, full):+.1f}% "
            f"| {PAPER_FULL_READ_IMPROVEMENT[trace]:+.1f}% "
            f"| {improvement_pct(native, select):+.1f}% "
            f"| +{PAPER_SELECT_READ_IMPROVEMENT[trace]}% |"
        )
    body += [
        "",
        "Deviations: (1) our relative gains on mail are smaller than the "
        "paper's -- hot-index detection tops out near 50% of mail's "
        "writes at this cache pressure, vs the 70.7% reported; (2) "
        "Full-Dedupe's mail *reads* do not improve here because its "
        "on-disk index lookups load the same spindles the reads use; (3) "
        "Select-Dedupe's reads on web-vm/homes sit a few percent *above* "
        "Native instead of a few percent below -- Native devotes its "
        "entire DRAM budget to the read cache, while Select-Dedupe gives "
        "half to the index, and in our simulator that cache handicap "
        "slightly outweighs the queue relief on the read-light traces.  "
        "Every cross-scheme ordering of Figs. 8-11 matches the paper.",
    ]
    lines += _section("Figs. 8 & 9 — response times (4-disk RAID-5)", body)

    # ---- Fig. 10 ------------------------------------------------------
    _data, text = figures.fig10_capacity(scale)
    lines += _section(
        "Fig. 10 — storage capacity used",
        [
            "Paper shape: Full-Dedupe saves most; Select-Dedupe saves at "
            "least as much as iDedup, clearly more on mail.  Measured:",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- Fig. 11 ------------------------------------------------------
    data, text = figures.fig11_write_reduction(scale)
    pod_total = sum(data[t]["POD"] for t in data) / len(data)
    sel_total = sum(data[t]["Select-Dedupe"] for t in data) / len(data)
    lines += _section(
        "Fig. 11 — removed write requests",
        [
            "Paper shape: Full-Dedupe removes most, iDedup fewest, POD "
            "slightly more than Select-Dedupe (iCache grows the index "
            f"during write bursts).  Measured means: POD {pod_total:.1f}% "
            f"vs Select-Dedupe {sel_total:.1f}%.",
            "",
            "```",
            text,
            "```",
        ],
    )

    # ---- NVRAM overhead -----------------------------------------------
    data, text = figures.nvram_overhead(scale)
    lines += _section(
        "Section IV-D.2 — Map-table NVRAM overhead",
        [
            "Paper: 0.8 / 0.3 / 1.5 MB peaks for web-vm / homes / mail at "
            "full trace volume; 20 B per entry.  Measured (at this scale) "
            "the ordering and magnitude class match:",
            "",
            "```",
            text,
            "```",
        ],
    )

    lines += _section(
        "Ablations (beyond the paper)",
        [
            "* `benchmarks/bench_ablation_threshold.py` — the Select-Dedupe "
            "category-3 threshold: threshold 1 dedupes scattered chunks and "
            "fragments reads; large thresholds converge to iDedup.",
            "* `benchmarks/bench_ablation_icache.py` — iCache epoch x step "
            "grid: longer epochs repartition less and perform best "
            "(default 4 s); every configuration stays within 25% of the "
            "fixed split while detecting at least as many duplicates.",
        ],
    )

    return "\n".join(lines)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SCALE
    report = build_report(scale)
    from pathlib import Path

    out = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    out.write_text(report + "\n")
    print(f"wrote {out} ({len(report.splitlines())} lines)")


if __name__ == "__main__":
    main()
