"""One function per table/figure of the paper's evaluation.

Every function returns ``(rows, rendered)`` where ``rows`` is the raw
data (asserted on by the benches) and ``rendered`` is a text table in
the paper's layout.  Absolute numbers differ from the paper (our
substrate is a simulator, not the authors' testbed); the benches
check the *shapes* listed in DESIGN.md section 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import runner
from repro.experiments.runner import DEFAULT_SCALE, PAPER_SCHEMES
from repro.metrics.report import normalize_to, render_table
from repro.sim.replay import ReplayResult
from repro.traces.stats import (
    io_vs_capacity_redundancy,
    redundancy_by_size,
    trace_characteristics,
)
from repro.traces.synthetic import paper_traces

#: Trace order used throughout the paper's figures.
TRACE_ORDER: Tuple[str, ...] = ("web-vm", "homes", "mail")

#: The four schemes of Figs. 8-10.
FIG8_SCHEMES: Tuple[str, ...] = ("Native", "Full-Dedupe", "iDedup", "Select-Dedupe")


# ----------------------------------------------------------------------
# Table I -- qualitative feature comparison
# ----------------------------------------------------------------------

def table1_features() -> Tuple[List[dict], str]:
    """Table I: POD vs the state-of-the-art schemes."""
    order = ("I/O-Dedup", "iDedup", "Post-Process", "POD")
    rows = []
    for name in order:
        cls = runner.SCHEME_CLASSES[name]
        row = {"scheme": name}
        row.update(cls.features)
        rows.append(row)
    table = render_table(
        "Table I: feature comparison",
        ["feature"] + list(order),
        [
            ["capacity saving"] + [r["capacity_saving"] for r in rows],
            ["performance enhancement"] + [r["performance_enhancement"] for r in rows],
            ["small-writes elimination"] + [r["small_writes_elimination"] for r in rows],
            ["large-writes elimination"] + [r["large_writes_elimination"] for r in rows],
            ["cache partitioning"] + [r["cache_partitioning"] for r in rows],
        ],
        note="the same four columns as the paper's Table I",
    )
    return rows, table


# ----------------------------------------------------------------------
# Table II -- trace characteristics
# ----------------------------------------------------------------------

def table2_characteristics(scale: float = DEFAULT_SCALE) -> Tuple[List[dict], str]:
    """Table II: write ratio / I/Os / mean request size per trace."""
    specs = paper_traces()
    paper = {  # the published Table II, for side-by-side comparison
        "web-vm": (69.8, 154_105, 14.8),
        "homes": (80.5, 64_819, 13.1),
        "mail": (78.5, 328_145, 40.8),
    }
    rows: List[dict] = []
    body = []
    for name in TRACE_ORDER:
        trace = runner.get_trace(specs[name], scale=scale)
        ch = trace_characteristics(trace)
        rows.append(
            {
                "trace": name,
                "write_ratio_pct": ch.write_ratio * 100.0,
                "io_count": ch.io_count,
                "mean_request_kb": ch.mean_request_kb,
            }
        )
        p = paper[name]
        body.append(
            [
                name,
                f"{ch.write_ratio * 100.0:.1f}% (paper {p[0]}%)",
                f"{ch.io_count} (paper {p[1]} at full scale)",
                f"{ch.mean_request_kb:.1f} KB (paper {p[2]} KB)",
            ]
        )
    table = render_table(
        "Table II: trace characteristics",
        ["trace", "write ratio", "I/Os", "mean request size"],
        body,
        note=f"measured day only, generator scale={scale}",
    )
    return rows, table


# ----------------------------------------------------------------------
# Fig. 1 -- redundancy by request size
# ----------------------------------------------------------------------

def fig1_redundancy_by_size(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, list], str]:
    """Fig. 1: I/O redundancy across request-size buckets, per trace."""
    specs = paper_traces()
    data: Dict[str, list] = {}
    blocks = []
    for name in TRACE_ORDER:
        trace = runner.get_trace(specs[name], scale=scale)
        rows = redundancy_by_size(trace)
        data[name] = rows
        body = [
            [
                f"<= {r.bucket_kb} KB" if r.bucket_kb != 64 else ">= 64 KB",
                r.total,
                r.fully_redundant,
                r.partially_redundant,
                f"{(r.redundant / r.total * 100.0) if r.total else 0.0:.1f}%",
            ]
            for r in rows
        ]
        blocks.append(
            render_table(
                f"Fig. 1 ({name}): write redundancy by request size",
                ["size", "total", "fully redundant", "partially redundant", "redundant %"],
                body,
            )
        )
    return data, "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Fig. 2 -- I/O vs capacity redundancy
# ----------------------------------------------------------------------

def fig2_io_vs_capacity(scale: float = DEFAULT_SCALE) -> Tuple[List[dict], str]:
    """Fig. 2: same-location vs different-location write redundancy."""
    specs = paper_traces()
    rows: List[dict] = []
    body = []
    for name in TRACE_ORDER:
        trace = runner.get_trace(specs[name], scale=scale)
        b = io_vs_capacity_redundancy(trace)
        rows.append(
            {
                "trace": name,
                "same_location_pct": b.same_location_pct,
                "different_location_pct": b.different_location_pct,
                "io_redundancy_pct": b.io_redundancy_pct,
                "capacity_redundancy_pct": b.capacity_redundancy_pct,
            }
        )
        body.append(
            [
                name,
                f"{b.same_location_pct:.1f}%",
                f"{b.different_location_pct:.1f}%",
                f"{b.io_redundancy_pct:.1f}%",
            ]
        )
    table = render_table(
        "Fig. 2: I/O redundancy vs capacity redundancy (% of write blocks)",
        ["trace", "same location", "different location (capacity)", "I/O redundancy (sum)"],
        body,
        note="paper reports the I/O-over-capacity gap averaging 21.9%",
    )
    return rows, table


# ----------------------------------------------------------------------
# Fig. 3 -- fixed-partition sweep
# ----------------------------------------------------------------------

def fig3_partition_sweep(
    trace_name: str = "mail",
    fractions: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    scale: float = DEFAULT_SCALE,
) -> Tuple[List[dict], str]:
    """Fig. 3: read/write response time vs index-cache share.

    Runs Full-Dedupe (the paper's 'deduplication-based storage
    system' for this motivation experiment) on the mail trace with a
    fixed partition at each index fraction.

    The sweep replays a *calmer* variant of the trace (longer
    inter-burst gaps, same request mix): Fig. 3 isolates the cache
    tradeoff, and at the main experiments' load level disk-queue
    coupling would drown the read-cache signal.  The substitution is
    recorded in EXPERIMENTS.md.
    """
    from dataclasses import replace as _replace

    from repro.traces.workload import BurstModel

    spec = paper_traces()[trace_name]
    calm = _replace(
        spec,
        name=f"{trace_name}-fig3",
        burst=BurstModel(
            mean_burst_size=spec.burst.mean_burst_size,
            intra_gap=spec.burst.intra_gap,
            inter_gap=max(spec.burst.inter_gap, 0.5),
        ),
    )
    rows: List[dict] = []
    body = []
    for fraction in fractions:
        result = runner.run_custom(
            calm, "Full-Dedupe", scale=scale, index_fraction=fraction
        )
        read = result.metrics.read_summary()
        write = result.metrics.write_summary()
        rows.append(
            {
                "index_fraction": fraction,
                "read_mean_ms": read.mean * 1e3,
                "write_mean_ms": write.mean * 1e3,
            }
        )
        body.append([f"{int(fraction * 100)}%", read.mean * 1e3, write.mean * 1e3])
    table = render_table(
        f"Fig. 3 ({trace_name}): response time vs index-cache share",
        ["index cache share", "read mean (ms)", "write mean (ms)"],
        body,
        note="larger index cache -> better writes, worse reads (Section II-B)",
    )
    return rows, table


# ----------------------------------------------------------------------
# Figs. 8-11 -- the main comparison
# ----------------------------------------------------------------------

def _matrix(
    scale: float, schemes: Iterable[str] = PAPER_SCHEMES
) -> Dict[Tuple[str, str], ReplayResult]:
    return runner.run_matrix(TRACE_ORDER, schemes, scale=scale)


def fig8_overall_response(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Fig. 8: overall response time normalized to Native (%)."""
    matrix = _matrix(scale, FIG8_SCHEMES)
    data: Dict[str, Dict[str, float]] = {}
    body = []
    for trace in TRACE_ORDER:
        means = {
            scheme: matrix[(trace, scheme)].metrics.overall_summary().mean
            for scheme in FIG8_SCHEMES
        }
        data[trace] = normalize_to(means, "Native")
        body.append([trace] + [data[trace][s] for s in FIG8_SCHEMES])
    table = render_table(
        "Fig. 8: overall response time, normalized to Native (%)",
        ["trace"] + list(FIG8_SCHEMES),
        body,
        note="4-disk RAID-5, 64KB stripes; fixed 50/50 cache split for dedup schemes",
    )
    return data, table


def fig9_read_write_split(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, Dict[str, Dict[str, float]]], str]:
    """Fig. 9: write (a) and read (b) response times, normalized."""
    matrix = _matrix(scale, FIG8_SCHEMES)
    data: Dict[str, Dict[str, Dict[str, float]]] = {"write": {}, "read": {}}
    blocks = []
    for kind, summary_of in (
        ("write", lambda r: r.metrics.write_summary().mean),
        ("read", lambda r: r.metrics.read_summary().mean),
    ):
        body = []
        for trace in TRACE_ORDER:
            means = {s: summary_of(matrix[(trace, s)]) for s in FIG8_SCHEMES}
            data[kind][trace] = normalize_to(means, "Native")
            body.append([trace] + [data[kind][trace][s] for s in FIG8_SCHEMES])
        blocks.append(
            render_table(
                f"Fig. 9{'a' if kind == 'write' else 'b'}: {kind} response time, "
                "normalized to Native (%)",
                ["trace"] + list(FIG8_SCHEMES),
                body,
            )
        )
    return data, "\n\n".join(blocks)


def fig10_capacity(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Fig. 10: storage capacity used, normalized to Native (%)."""
    matrix = _matrix(scale, FIG8_SCHEMES)
    data: Dict[str, Dict[str, float]] = {}
    body = []
    for trace in TRACE_ORDER:
        capacities = {
            scheme: float(matrix[(trace, scheme)].capacity_blocks)
            for scheme in FIG8_SCHEMES
        }
        data[trace] = normalize_to(capacities, "Native")
        body.append([trace] + [data[trace][s] for s in FIG8_SCHEMES])
    table = render_table(
        "Fig. 10: storage capacity used, normalized to Native (%)",
        ["trace"] + list(FIG8_SCHEMES),
        body,
    )
    return data, table


def fig11_write_reduction(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Fig. 11: % of write requests removed, incl. POD."""
    schemes = ("Full-Dedupe", "iDedup", "Select-Dedupe", "POD")
    matrix = _matrix(scale, schemes)
    data: Dict[str, Dict[str, float]] = {}
    body = []
    for trace in TRACE_ORDER:
        data[trace] = {s: matrix[(trace, s)].removed_write_pct for s in schemes}
        body.append([trace] + [data[trace][s] for s in schemes])
    table = render_table(
        "Fig. 11: removed write requests (%)",
        ["trace"] + list(schemes),
        body,
        note="paper: Select-Dedupe removes 70.7% of mail's writes",
    )
    return data, table


# ----------------------------------------------------------------------
# Section IV-D.2 -- NVRAM overhead
# ----------------------------------------------------------------------

def nvram_overhead(scale: float = DEFAULT_SCALE) -> Tuple[Dict[str, float], str]:
    """Map-table NVRAM peak footprint under POD, per trace."""
    matrix = _matrix(scale, ("POD",))
    data: Dict[str, float] = {}
    body = []
    paper_mb = {"web-vm": 0.8, "homes": 0.3, "mail": 1.5}
    for trace in TRACE_ORDER:
        peak = matrix[(trace, "POD")].scheme_stats["nvram_peak_bytes"]
        data[trace] = peak / 1e6
        body.append([trace, f"{peak / 1e6:.2f} MB", f"{paper_mb[trace]} MB (full scale)"])
    table = render_table(
        "Section IV-D.2: Map-table NVRAM peak (20 B/entry)",
        ["trace", "measured", "paper"],
        body,
    )
    return data, table
