"""Build-and-replay driver with a process-level result cache.

Figures 8, 9a, 9b, 10 and 11 are all views of the same fifteen
replays (3 traces x 5 schemes), so the runner memoises
:class:`~repro.sim.replay.ReplayResult` by the full run key; the
figure benches then share one matrix instead of re-simulating.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.baselines.registry import DEFAULT_REGISTRY
from repro.cluster.replay import ClusterConfig, replay_cluster
from repro.errors import ConfigError
from repro.obs.trace import TraceRecorder
from repro.sim.replay import ReplayConfig, ReplayResult, replay_trace, replay_traces
from repro.traces.format import Trace
from repro.traces.synthetic import (
    FP_FAMILY_STRIDE,
    TraceSpec,
    clone_tenants,
    generate_trace,
    paper_traces,
    salt_fingerprints,
)

#: Every scheme the evaluation compares, by report name.  Kept as a
#: module-level view for back compatibility; the source of truth is
#: :data:`repro.baselines.registry.DEFAULT_REGISTRY`.
SCHEME_CLASSES: Dict[str, Type[DedupScheme]] = DEFAULT_REGISTRY.classes()

#: The four schemes of Figs. 8-10 plus POD (Fig. 11), from the
#: registry's ``paper`` flags (registration order matches the legends).
PAPER_SCHEMES: Tuple[str, ...] = DEFAULT_REGISTRY.paper_schemes()

#: Default replay scale for benches: small enough to run a full
#: 3x5 matrix in seconds, large enough for stable shapes.
DEFAULT_SCALE: float = 0.25

_trace_cache: Dict[Tuple[str, float, Optional[int]], Trace] = {}
_run_cache: Dict[tuple, ReplayResult] = {}


def clear_run_cache() -> None:
    """Forget all memoised traces and replays (tests use this)."""
    _trace_cache.clear()
    _run_cache.clear()


def memoize_result(key: tuple, result: ReplayResult) -> None:
    """Install a replay result into the run cache under ``key``.

    Public seam for out-of-process executors (:mod:`repro.experiments.
    parallel`) that compute results elsewhere and want subsequent
    :func:`run_single` calls to hit the memo instead of re-simulating.
    """
    _run_cache[key] = result


def telemetry_armed(config: ReplayConfig) -> bool:
    """True when the config arms timeline/span/SLO telemetry or the
    leased-job subsystem.  Such runs bypass the memo like
    :func:`run_observed` does: the result carries per-run mutable
    state (sampler, tracer, job runtime summaries) that must be fresh
    for each caller."""
    return (
        config.timeline is not None
        or config.spans
        or config.slo is not None
        or config.jobs is not None
    )


def get_trace(spec: TraceSpec, scale: float = 1.0, seed: Optional[int] = None) -> Trace:
    """Generate (or fetch the memoised) trace for a spec."""
    key = (spec.name, scale, seed)
    if key not in _trace_cache:
        _trace_cache[key] = generate_trace(spec, seed=seed, scale=scale)
    return _trace_cache[key]


def scheme_config_for(
    spec: TraceSpec, scale: float = 1.0, **overrides
) -> SchemeConfig:
    """Per-trace scheme configuration (memory budgets of Section IV-A).

    The iCache epoch scales with the generator scale: trace duration
    and phase length grow proportionally with scale, and the epoch
    must keep integrating the same number of read/write phases per
    decision (see benchmarks/bench_ablation_icache.py).
    """
    scaled = spec.scaled(scale) if scale != 1.0 else spec
    params = dict(
        logical_blocks=scaled.logical_blocks,
        memory_bytes=scaled.memory_bytes,
        icache_epoch=max(1.0, 16.0 * scale),
    )
    params.update(overrides)
    return SchemeConfig(**params)


def resolve_scheme_name(scheme_name: str) -> str:
    """Map a user-typed scheme name to its canonical report name.

    Thin wrapper over :meth:`SchemeRegistry.resolve_name`; the lookup
    is case-insensitive over names and aliases (``pod`` -> ``POD``),
    so CLI users do not have to remember the paper's capitalisation.
    """
    return DEFAULT_REGISTRY.resolve_name(scheme_name)


def build_scheme(
    scheme_name: str, spec: TraceSpec, scale: float = 1.0, **overrides
) -> DedupScheme:
    """Instantiate a scheme configured for a trace."""
    return DEFAULT_REGISTRY.build(
        scheme_name, scheme_config_for(spec, scale, **overrides)
    )


def run_single(
    trace_name: str,
    scheme_name: str,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    replay_config: Optional[ReplayConfig] = None,
    batch_size: Optional[int] = None,
    **config_overrides,
) -> ReplayResult:
    """Replay one (trace, scheme) pair, memoised.

    ``config_overrides`` are :class:`SchemeConfig` fields (e.g.
    ``index_fraction=0.3`` for the Fig. 3 sweep).  ``batch_size``
    opts into the columnar batch driver (bit-identical to the object
    path, so it shares the memo key space with ``batch_size=None``
    runs of the same configuration only by accident -- the key keeps
    them separate to stay honest about what actually ran).
    """
    specs = paper_traces()
    if trace_name not in specs:
        raise ConfigError(f"unknown trace {trace_name!r}; have {sorted(specs)}")
    scheme_name = resolve_scheme_name(scheme_name)
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    key = (
        trace_name,
        scheme_name,
        scale,
        seed,
        replay_config,
        batch_size,
        tuple(sorted(config_overrides.items())),
    )
    bypass = telemetry_armed(replay_config)
    if not bypass and key in _run_cache:
        return _run_cache[key]
    spec = specs[trace_name]
    trace = get_trace(spec, scale=scale, seed=seed)
    scheme = build_scheme(scheme_name, spec, scale=scale, **config_overrides)
    result = replay_trace(trace, scheme, replay_config, batch_size=batch_size)
    if not bypass:
        _run_cache[key] = result
    return result


def run_observed(
    trace_name: str,
    scheme_name: str,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    replay_config: Optional[ReplayConfig] = None,
    recorder: Optional[TraceRecorder] = None,
    batch_size: Optional[int] = None,
    **config_overrides,
) -> ReplayResult:
    """Replay one (trace, scheme) pair with observability attached.

    Unlike :func:`run_single` this never consults or populates the
    memo cache: an instrumented run must actually *run* so the
    recorder sees the events and the result carries fresh per-replay
    state (epoch timeline, recorder, scheme stats).  The trace cache
    is still shared -- trace generation is deterministic in (spec,
    scale, seed) and observation does not perturb it.
    """
    specs = paper_traces()
    if trace_name not in specs:
        raise ConfigError(f"unknown trace {trace_name!r}; have {sorted(specs)}")
    scheme_name = resolve_scheme_name(scheme_name)
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    spec = specs[trace_name]
    trace = get_trace(spec, scale=scale, seed=seed)
    scheme = build_scheme(scheme_name, spec, scale=scale, **config_overrides)
    return replay_trace(
        trace, scheme, replay_config, recorder=recorder, batch_size=batch_size
    )


def run_custom(
    spec: TraceSpec,
    scheme_name: str,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    replay_config: Optional[ReplayConfig] = None,
    batch_size: Optional[int] = None,
    **config_overrides,
) -> ReplayResult:
    """Replay a non-preset trace spec (e.g. a figure-specific variant).

    Memoised by ``spec.name`` -- give variants distinct names.
    """
    scheme_name = resolve_scheme_name(scheme_name)
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    key = (
        "custom",
        spec.name,
        scheme_name,
        scale,
        seed,
        replay_config,
        batch_size,
        tuple(sorted(config_overrides.items())),
    )
    bypass = telemetry_armed(replay_config)
    if not bypass and key in _run_cache:
        return _run_cache[key]
    trace = get_trace(spec, scale=scale, seed=seed)
    scheme = build_scheme(scheme_name, spec, scale=scale, **config_overrides)
    result = replay_trace(trace, scheme, replay_config, batch_size=batch_size)
    if not bypass:
        _run_cache[key] = result
    return result


def multi_tenant_traces(
    trace_names: Sequence[str],
    copies: int = 2,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    divergence: float = 0.15,
    arrival_skew: float = 0.5,
) -> List[Trace]:
    """Expand trace names into the multi-tenant volume set.

    Each named base trace founds a *family* of ``copies`` tenant
    volumes (clones of the base image with per-tenant divergence and
    skewed arrival rates, :func:`clone_tenants`).  Distinct families
    model unrelated base images, so their fingerprint spaces are
    salted apart by :data:`FP_FAMILY_STRIDE` -- without the salt,
    every generator's fingerprints start at 1 and unrelated workloads
    would alias as cross-volume duplicates.
    """
    specs = paper_traces()
    volumes: List[Trace] = []
    for family, trace_name in enumerate(trace_names):
        if trace_name not in specs:
            raise ConfigError(
                f"unknown trace {trace_name!r}; have {sorted(specs)}"
            )
        base = get_trace(specs[trace_name], scale=scale, seed=seed)
        base = salt_fingerprints(base, family * FP_FAMILY_STRIDE)
        volumes.extend(
            clone_tenants(
                base,
                copies,
                divergence=divergence,
                arrival_skew=arrival_skew,
                seed=(seed if seed is not None else 0) + family,
            )
        )
    return volumes


def run_multi(
    trace_names: Sequence[str],
    scheme_name: str,
    copies: int = 2,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    divergence: float = 0.15,
    arrival_skew: float = 0.5,
    replay_config: Optional[ReplayConfig] = None,
    recorder: Optional[TraceRecorder] = None,
    batch_size: Optional[int] = None,
    **config_overrides,
) -> ReplayResult:
    """Replay a multi-volume tenant set through one shared dedup domain.

    The volumes share a single scheme instance: one Map-table, one
    fingerprint index, one allocator, one cache -- so duplicate content
    across tenants collapses to one physical copy (the paper's
    Section I cloud scenario).  The scheme is sized for the *sum* of
    the per-volume logical spaces and memory budgets; per-volume
    response times and dedup splits land in ``result.volumes``.

    Never memoised: multi-volume runs are interactive/instrumented by
    design and the tenant expansion is cheap relative to the replay.
    """
    scheme_name = resolve_scheme_name(scheme_name)
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    volumes = multi_tenant_traces(
        trace_names,
        copies=copies,
        scale=scale,
        seed=seed,
        divergence=divergence,
        arrival_skew=arrival_skew,
    )
    # Each tenant volume brings its base trace's memory budget; the
    # consolidated host pools them into one shared cache/index budget.
    specs = paper_traces()
    memory_bytes = copies * sum(
        (specs[n].scaled(scale) if scale != 1.0 else specs[n]).memory_bytes
        for n in trace_names
    )
    params = dict(
        logical_blocks=sum(t.logical_blocks for t in volumes),
        memory_bytes=memory_bytes,
        icache_epoch=max(1.0, 16.0 * scale),
    )
    params.update(config_overrides)
    scheme = DEFAULT_REGISTRY.build(scheme_name, SchemeConfig(**params))
    return replay_traces(
        volumes, scheme, replay_config, recorder=recorder, batch_size=batch_size
    )


def run_cluster(
    trace_names: Sequence[str],
    scheme_name: str,
    nodes: int = 2,
    copies: int = 2,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = None,
    divergence: float = 0.15,
    arrival_skew: float = 0.5,
    replay_config: Optional[ReplayConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    recorder: Optional[TraceRecorder] = None,
    **config_overrides,
) -> ReplayResult:
    """Replay the multi-tenant volume set across a sharded cluster.

    The tenant expansion is exactly :func:`multi_tenant_traces`; volumes
    are spread round-robin over ``nodes`` complete POD instances, each
    sized for the sum of its assigned volumes' logical spaces and
    memory budgets (the same family-level budgets :func:`run_multi`
    pools -- at ``nodes=1`` the single node gets the identical
    configuration, which is what pins the golden bit-identity test).

    Never memoised, like :func:`run_multi`.
    """
    scheme_name = resolve_scheme_name(scheme_name)
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    cluster_config = (
        cluster_config if cluster_config is not None else ClusterConfig()
    )
    volumes = multi_tenant_traces(
        trace_names,
        copies=copies,
        scale=scale,
        seed=seed,
        divergence=divergence,
        arrival_skew=arrival_skew,
    )
    if nodes < 1:
        raise ConfigError(f"cluster needs at least one node, got {nodes}")
    if nodes > len(volumes):
        raise ConfigError(
            f"{nodes} nodes but only {len(volumes)} tenant volumes; "
            "every node must own at least one volume"
        )
    # Volume ``v`` descends from base trace family ``v // copies``
    # (multi_tenant_traces emits tenants family-major), and carries
    # that family's per-tenant memory budget.
    specs = paper_traces()
    family_budget = [
        (specs[n].scaled(scale) if scale != 1.0 else specs[n]).memory_bytes
        for n in trace_names
    ]
    assignment = [vid % nodes for vid in range(len(volumes))]
    schemes = []
    for node in range(nodes):
        vids = [vid for vid, owner in enumerate(assignment) if owner == node]
        params = dict(
            logical_blocks=sum(volumes[v].logical_blocks for v in vids),
            memory_bytes=sum(family_budget[v // copies] for v in vids),
            icache_epoch=max(1.0, 16.0 * scale),
        )
        params.update(config_overrides)
        schemes.append(DEFAULT_REGISTRY.build(scheme_name, SchemeConfig(**params)))
    return replay_cluster(
        volumes,
        schemes,
        cluster_config,
        replay_config,
        assignment=assignment,
        recorder=recorder,
    )


def run_matrix(
    trace_names: Optional[Iterable[str]] = None,
    scheme_names: Optional[Iterable[str]] = None,
    scale: float = DEFAULT_SCALE,
    **kwargs,
) -> Dict[Tuple[str, str], ReplayResult]:
    """Replay every (trace, scheme) combination."""
    traces = list(trace_names) if trace_names is not None else sorted(paper_traces())
    schemes = list(scheme_names) if scheme_names is not None else list(PAPER_SCHEMES)
    return {
        (t, s): run_single(t, s, scale=scale, **kwargs)
        for t in traces
        for s in schemes
    }
