"""Experiment drivers: the paper's evaluation, runnable end-to-end.

* :mod:`repro.experiments.runner` -- build (trace, scheme, array),
  replay, and memoise results so every figure bench shares one run
  matrix.
* :mod:`repro.experiments.figures` -- one function per table/figure
  of the paper, returning the rows and a rendered text table.
"""

from __future__ import annotations

from repro.experiments.runner import (
    SCHEME_CLASSES,
    build_scheme,
    clear_run_cache,
    multi_tenant_traces,
    run_matrix,
    run_multi,
    run_single,
)
from repro.experiments import figures

__all__ = [
    "SCHEME_CLASSES",
    "build_scheme",
    "run_single",
    "run_multi",
    "multi_tenant_traces",
    "run_matrix",
    "clear_run_cache",
    "figures",
]
