"""Machine-readable export of every figure's data.

The benches print human-readable tables; this module writes the same
data as CSV (one file per figure) and a combined JSON document, so the
figures can be re-plotted with any tool::

    python -m repro.experiments.export out_dir --scale 0.25
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.experiments import figures
from repro.experiments.runner import DEFAULT_SCALE


def _write_csv(path: Path, fieldnames: List[str], rows: List[dict]) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def export_all(out_dir: Path, scale: float = DEFAULT_SCALE) -> Dict[str, object]:
    """Regenerate every figure and write CSV + JSON under ``out_dir``.

    Returns the combined data document (also written as
    ``figures.json``).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    doc: Dict[str, object] = {"scale": scale}

    rows, _ = figures.table1_features()
    doc["table1"] = rows
    _write_csv(out_dir / "table1_features.csv", list(rows[0].keys()), rows)

    rows, _ = figures.table2_characteristics(scale)
    doc["table2"] = rows
    _write_csv(out_dir / "table2_characteristics.csv", list(rows[0].keys()), rows)

    data, _ = figures.fig1_redundancy_by_size(scale)
    fig1_rows = [
        {
            "trace": name,
            "bucket_kb": r.bucket_kb,
            "total": r.total,
            "fully_redundant": r.fully_redundant,
            "partially_redundant": r.partially_redundant,
        }
        for name, rs in data.items()
        for r in rs
    ]
    doc["fig1"] = fig1_rows
    _write_csv(out_dir / "fig1_redundancy_by_size.csv", list(fig1_rows[0].keys()), fig1_rows)

    rows, _ = figures.fig2_io_vs_capacity(scale)
    doc["fig2"] = rows
    _write_csv(out_dir / "fig2_io_vs_capacity.csv", list(rows[0].keys()), rows)

    rows, _ = figures.fig3_partition_sweep(scale=scale)
    doc["fig3"] = rows
    _write_csv(out_dir / "fig3_partition_sweep.csv", list(rows[0].keys()), rows)

    data, _ = figures.fig8_overall_response(scale)
    fig8_rows = [
        {"trace": trace, "scheme": scheme, "normalized_pct": value}
        for trace, by_scheme in data.items()
        for scheme, value in by_scheme.items()
    ]
    doc["fig8"] = fig8_rows
    _write_csv(out_dir / "fig8_overall_response.csv", list(fig8_rows[0].keys()), fig8_rows)

    data, _ = figures.fig9_read_write_split(scale)
    fig9_rows = [
        {"direction": direction, "trace": trace, "scheme": scheme, "normalized_pct": value}
        for direction, by_trace in data.items()
        for trace, by_scheme in by_trace.items()
        for scheme, value in by_scheme.items()
    ]
    doc["fig9"] = fig9_rows
    _write_csv(out_dir / "fig9_read_write_split.csv", list(fig9_rows[0].keys()), fig9_rows)

    data, _ = figures.fig10_capacity(scale)
    fig10_rows = [
        {"trace": trace, "scheme": scheme, "normalized_pct": value}
        for trace, by_scheme in data.items()
        for scheme, value in by_scheme.items()
    ]
    doc["fig10"] = fig10_rows
    _write_csv(out_dir / "fig10_capacity.csv", list(fig10_rows[0].keys()), fig10_rows)

    data, _ = figures.fig11_write_reduction(scale)
    fig11_rows = [
        {"trace": trace, "scheme": scheme, "removed_pct": value}
        for trace, by_scheme in data.items()
        for scheme, value in by_scheme.items()
    ]
    doc["fig11"] = fig11_rows
    _write_csv(out_dir / "fig11_write_reduction.csv", list(fig11_rows[0].keys()), fig11_rows)

    data, _ = figures.nvram_overhead(scale)
    nvram_rows = [{"trace": trace, "peak_mb": value} for trace, value in data.items()]
    doc["nvram"] = nvram_rows
    _write_csv(out_dir / "nvram_overhead.csv", list(nvram_rows[0].keys()), nvram_rows)

    (out_dir / "figures.json").write_text(json.dumps(doc, indent=2, default=float))
    return doc


def main() -> None:  # pragma: no cover - thin CLI shim
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures_out")
    scale = DEFAULT_SCALE
    if "--scale" in sys.argv:
        scale = float(sys.argv[sys.argv.index("--scale") + 1])
    export_all(out, scale)
    print(f"wrote {out}/ (CSV per figure + figures.json) at scale {scale}")


if __name__ == "__main__":  # pragma: no cover
    main()
