"""Parallel experiment execution.

A full-scale reproduction run is 15+ independent replays (3 traces x
5+ schemes), each single-threaded and seconds-to-minutes long -- an
embarrassingly parallel workload.  :func:`run_matrix_parallel` fans
the (trace, scheme) grid out over a process pool and folds the results
back into the in-process memo cache, so the figure drivers can be
called afterwards without re-simulating.

Traces are shipped to workers as :class:`~repro.traces.columnar.
ColumnarTrace` payloads: flat NumPy column buffers plus the interned
fingerprint pool.  Pickling a column payload is orders of magnitude
cheaper than pickling a deep list of per-record objects, and the
master generates (and memoises) each trace exactly once instead of
every worker regenerating it.

Determinism is preserved: the column round-trip is lossless and the
columnar batch driver is bit-identical to the object path (both pinned
by golden tests), so the parallel matrix is bit-identical to the
serial one at any worker count (asserted by the worker-count
invariance test).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.baselines.base import SchemeConfig
from repro.baselines.registry import DEFAULT_REGISTRY
from repro.sim.replay import ReplayConfig, ReplayResult
from repro.traces.columnar import ColumnarTrace
from repro.traces.synthetic import paper_traces

#: One fully serialised job: the trace as a columnar payload (flat
#: NumPy buffers -- cheap to pickle), the resolved scheme name, its
#: full configuration, the replay configuration and the batch size.
Job = Tuple[Dict[str, Any], str, SchemeConfig, ReplayConfig, Optional[int]]


def _run_job(job: Job) -> ReplayResult:
    """Worker entry point (module-level for picklability).

    Rebuilds the columnar trace from its shipped columns and replays
    it exactly as :func:`repro.experiments.runner.run_single` would:
    through the batch driver when a batch size is given, otherwise via
    the lossless ``to_trace`` materialisation onto the object path.
    """
    from repro.sim.replay import replay_trace

    payload, scheme_name, scheme_config, replay_config, batch_size = job
    ctrace = ColumnarTrace.from_payload(payload)
    scheme = DEFAULT_REGISTRY.build(scheme_name, scheme_config)
    return replay_trace(
        ctrace, scheme, replay_config, batch_size=batch_size
    )


def run_matrix_parallel(
    trace_names: Optional[Iterable[str]] = None,
    scheme_names: Optional[Iterable[str]] = None,
    scale: float = 0.25,
    seed: Optional[int] = None,
    replay_config: Optional[ReplayConfig] = None,
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    **config_overrides: Any,
) -> Dict[Tuple[str, str], ReplayResult]:
    """Replay every (trace, scheme) pair on a process pool.

    Results are also inserted into :mod:`repro.experiments.runner`'s
    memo cache under the same keys ``run_single`` would use, so
    subsequent figure calls at the same scale reuse them.
    """
    from repro.experiments import runner

    traces = (
        list(trace_names) if trace_names is not None else sorted(paper_traces())
    )
    schemes = [
        runner.resolve_scheme_name(s)
        for s in (
            list(scheme_names)
            if scheme_names is not None
            else list(DEFAULT_REGISTRY.paper_schemes())
        )
    ]
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    overrides = tuple(sorted(config_overrides.items()))
    specs = paper_traces()
    jobs: List[Job] = []
    for t in traces:
        trace = runner.get_trace(specs[t], scale=scale, seed=seed)
        payload = ColumnarTrace.from_trace(trace).payload()
        config = runner.scheme_config_for(specs[t], scale, **config_overrides)
        for s in schemes:
            jobs.append((payload, s, config, replay_config, batch_size))

    workers = max_workers or min(len(jobs), os.cpu_count() or 1)
    out: Dict[Tuple[str, str], ReplayResult] = {}
    if workers <= 1:
        results = list(map(_run_job, jobs))
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = list(executor.map(_run_job, jobs))
    pairs = [(t, s) for t in traces for s in schemes]
    for (trace_name, scheme_name), result in zip(pairs, results):
        out[(trace_name, scheme_name)] = result
        cache_key = (
            trace_name,
            scheme_name,
            scale,
            seed,
            replay_config,
            batch_size,
            overrides,
        )
        runner.memoize_result(cache_key, result)
    return out
