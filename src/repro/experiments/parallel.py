"""Parallel experiment execution.

A full-scale reproduction run is 15+ independent replays (3 traces x
5+ schemes), each single-threaded and seconds-to-minutes long -- an
embarrassingly parallel workload.  :func:`run_matrix_parallel` fans
the (trace, scheme) grid out over a process pool and folds the results
back into the in-process memo cache, so the figure drivers can be
called afterwards without re-simulating.

Determinism is preserved: every job is fully specified by
``(trace, scheme, scale, seed, replay config, overrides)`` and traces
are regenerated per worker from the same seed, so the parallel matrix
is bit-identical to the serial one (asserted by the integration
tests).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional, Tuple

from repro.baselines.registry import DEFAULT_REGISTRY
from repro.sim.replay import ReplayConfig, ReplayResult
from repro.traces.synthetic import paper_traces

#: One fully serialised job: everything a worker needs.
Job = Tuple[str, str, float, Optional[int], ReplayConfig, tuple]


def _run_job(job: Job) -> ReplayResult:
    """Worker entry point (module-level for picklability)."""
    from repro.experiments import runner

    trace_name, scheme_name, scale, seed, replay_config, overrides = job
    return runner.run_single(
        trace_name,
        scheme_name,
        scale=scale,
        seed=seed,
        replay_config=replay_config,
        **dict(overrides),
    )


def run_matrix_parallel(
    trace_names: Optional[Iterable[str]] = None,
    scheme_names: Optional[Iterable[str]] = None,
    scale: float = 0.25,
    seed: Optional[int] = None,
    replay_config: Optional[ReplayConfig] = None,
    max_workers: Optional[int] = None,
    **config_overrides,
) -> Dict[Tuple[str, str], ReplayResult]:
    """Replay every (trace, scheme) pair on a process pool.

    Results are also inserted into :mod:`repro.experiments.runner`'s
    memo cache under the same keys ``run_single`` would use, so
    subsequent figure calls at the same scale reuse them.
    """
    from repro.experiments import runner

    traces = (
        list(trace_names) if trace_names is not None else sorted(paper_traces())
    )
    schemes = (
        list(scheme_names)
        if scheme_names is not None
        else list(DEFAULT_REGISTRY.paper_schemes())
    )
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    overrides = tuple(sorted(config_overrides.items()))
    jobs: list = [
        (t, s, scale, seed, replay_config, overrides) for t in traces for s in schemes
    ]

    workers = max_workers or min(len(jobs), os.cpu_count() or 1)
    out: Dict[Tuple[str, str], ReplayResult] = {}
    if workers <= 1:
        results = list(map(_run_job, jobs))
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = list(executor.map(_run_job, jobs))
    for job, result in zip(jobs, results):
        trace_name, scheme_name, *_ = job
        out[(trace_name, scheme_name)] = result
        cache_key = (
            trace_name,
            scheme_name,
            scale,
            seed,
            replay_config,
            overrides,
        )
        runner.memoize_result(cache_key, result)
    return out
