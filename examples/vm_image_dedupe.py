#!/usr/bin/env python
"""Deduplicating real byte content: cloned VM images.

The paper motivates POD with Cloud VM platforms, where images are
"mostly identical but differ in a few data blocks" (Section III-A).
This example builds three synthetic VM images as real byte buffers (a
shared base image plus per-VM modifications), chunks and fingerprints
them with the library's content-hashing API, and writes them through
POD -- showing both the write-traffic elimination and the capacity
saving, then verifying every image reads back intact.

Run:  python examples/vm_image_dedupe.py
"""

import hashlib

import numpy as np

from repro import POD, SchemeConfig
from repro.constants import BLOCK_SIZE
from repro.dedup.fingerprint import fingerprints_of
from repro.sim.request import IORequest

IMAGE_BLOCKS = 256  # 1 MiB images
N_VMS = 3


def make_base_image(rng: np.random.Generator) -> bytes:
    """A base OS image: mostly structured, compressible-ish bytes."""
    return rng.integers(0, 256, size=IMAGE_BLOCKS * BLOCK_SIZE, dtype=np.uint8).tobytes()


def clone_with_changes(base: bytes, rng: np.random.Generator, changed_blocks: int) -> bytes:
    """Clone an image and rewrite a few random blocks (per-VM state)."""
    image = bytearray(base)
    for block in rng.choice(IMAGE_BLOCKS, size=changed_blocks, replace=False):
        start = int(block) * BLOCK_SIZE
        image[start : start + BLOCK_SIZE] = rng.integers(
            0, 256, size=BLOCK_SIZE, dtype=np.uint8
        ).tobytes()
    return bytes(image)


def main() -> None:
    rng = np.random.default_rng(7)
    base = make_base_image(rng)
    images = [clone_with_changes(base, rng, changed_blocks=8 * (i + 1)) for i in range(N_VMS)]

    pod = POD(
        SchemeConfig(
            logical_blocks=IMAGE_BLOCKS * (N_VMS + 1),
            memory_bytes=512 * 1024,
        )
    )

    # Store the base image, then each clone, as block-level writes
    # carrying content fingerprints.
    now = 0.0
    layouts = {}
    for idx, image in enumerate([base] + images):
        lba = idx * IMAGE_BLOCKS
        layouts[idx] = (lba, image)
        fps = fingerprints_of(image)
        # Write in 64 KB requests, like a hypervisor provisioning copy.
        for off in range(0, IMAGE_BLOCKS, 16):
            now += 1e-3
            req = IORequest.write(time=now, lba=lba + off, fingerprints=fps[off : off + 16])
            pod.process(req, now)

    stats = pod.stats()
    total_blocks = IMAGE_BLOCKS * (N_VMS + 1)
    print(f"stored {N_VMS + 1} images of {IMAGE_BLOCKS} blocks each "
          f"({total_blocks * BLOCK_SIZE // 1024} KiB logical)")
    print(f"write blocks deduplicated : {stats['write_blocks_deduped']} / {stats['write_blocks']}")
    print(f"physical capacity used    : {pod.capacity_blocks()} blocks "
          f"({pod.capacity_blocks() / total_blocks * 100:.1f}% of logical)")
    print(f"map-table NVRAM           : {pod.nvram.peak_bytes / 1024:.1f} KiB")

    # Integrity: every image must read back as its own bytes, found by
    # comparing per-block fingerprints through the dedup indirection.
    for idx, (lba, image) in layouts.items():
        fps = fingerprints_of(image)
        for block in range(IMAGE_BLOCKS):
            pba = pod.map_table.translate(lba + block)
            stored = pod.content.read(pba)
            assert stored == fps[block], f"image {idx} block {block} corrupted!"
    print(f"verified: all {(N_VMS + 1) * IMAGE_BLOCKS} blocks read back correctly")

    digest = hashlib.sha1(base[: 4 * BLOCK_SIZE]).hexdigest()[:12]
    print(f"(base image prefix digest {digest} -- deterministic run)")


if __name__ == "__main__":
    main()
