#!/usr/bin/env python
"""SSD-assisted restore (SAR): fixing dedup's read amplification.

Section I of the POD paper measures that restores of deduplicated VM
images run 2.9x-4.2x slower than undeduplicated ones; the authors'
companion system SAR (reference [18]) parks the fragmented
deduplicated blocks on an SSD. This example stores a set of cloned
VM images under three schemes and times a full restore of the last
clone:

* Native        -- contiguous layout, the baseline restore speed;
* Full-Dedupe   -- maximal space saving, badly fragmented restore;
* SAR           -- Select-Dedupe + SSD staging: the space saving of
                   selective dedup at (almost) Native restore speed.

Run:  python examples/ssd_assisted_restore.py
"""

import numpy as np

from repro import Native, FullDedupe, SchemeConfig, replay_trace
from repro.core.sar import SARDedupe
from repro.metrics.report import render_table
from repro.sim.replay import ReplayConfig
from repro.sim.request import OpType
from repro.storage.ssd import SsdParams
from repro.traces.format import Trace, TraceRecord

IMAGE_BLOCKS = 1024  # 4 MiB images
CLONES = 4


def build_trace(rng: np.random.Generator) -> Trace:
    """A base image, then clones that duplicate scattered parts of it,
    then a cold sequential restore of the last clone."""
    records, t, fp = [], 0.0, 1

    base_fps = tuple(range(fp, fp + IMAGE_BLOCKS))
    fp += IMAGE_BLOCKS
    for off in range(0, IMAGE_BLOCKS, 16):
        t += 1e-3
        records.append(TraceRecord(t, OpType.WRITE, off, 16, base_fps[off : off + 16]))

    clone_lba = 0
    for clone in range(1, CLONES + 1):
        clone_lba = clone * IMAGE_BLOCKS
        for off in range(0, IMAGE_BLOCKS, 16):
            if (off // 16) % 2 == 0:  # half duplicated, scattered donors
                start = int(rng.integers(0, IMAGE_BLOCKS - 16))
                chunk = base_fps[start : start + 16]
            else:
                chunk = tuple(range(fp, fp + 16))
                fp += 16
            t += 1e-3
            records.append(TraceRecord(t, OpType.WRITE, clone_lba + off, 16, chunk))

    t += 30.0  # idle: queues drain before the restore
    for off in range(0, IMAGE_BLOCKS, 64):
        t += 1e-6
        records.append(TraceRecord(t, OpType.READ, clone_lba + off, 64))

    return Trace(
        name="sar-restore",
        records=records,
        logical_blocks=(CLONES + 1) * IMAGE_BLOCKS,
    )


def main() -> None:
    trace = build_trace(np.random.default_rng(5))
    rows = []
    base_time = None
    for cls in (Native, FullDedupe, SARDedupe):
        extra = {"ssd_bytes": 16 * 1024 * 1024} if cls is SARDedupe else {}
        scheme = cls(
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=256 * 1024,
                **extra,
            )
        )
        config = ReplayConfig(
            collect_warmup=True,
            ssd_params=SsdParams() if cls is SARDedupe else None,
        )
        result = replay_trace(trace, scheme, config)
        restore_ms = result.metrics.read_summary().mean * 1e3
        if base_time is None:
            base_time = restore_ms
        rows.append(
            [
                scheme.name,
                restore_ms,
                f"{restore_ms / base_time:.2f}x",
                result.capacity_blocks,
                scheme.stats().get("ssd_served_blocks", 0),
            ]
        )
    print(
        render_table(
            "Restore of a deduplicated VM clone",
            ["scheme", "restore read mean (ms)", "vs Native", "capacity (blocks)", "SSD-served blocks"],
            rows,
            note="the paper reports dedup restores 2.9x-4.2x slower; SAR removes the penalty",
        )
    )


if __name__ == "__main__":
    main()
