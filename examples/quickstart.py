#!/usr/bin/env python
"""Quickstart: deduplicate a small workload with POD.

Builds a tiny hand-written workload (a burst of redundant writes
followed by reads), replays it through POD and through the Native
system on a simulated 4-disk RAID-5, and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro import POD, Native, SchemeConfig, replay_trace
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord


def build_workload() -> Trace:
    """A mini primary-storage day: unique writes, duplicate writes
    (small and large), then re-reads of the hot data."""
    records = []
    t = 0.0

    # A "file" of 8 unique blocks at LBA 0.
    records.append(TraceRecord(t, OpType.WRITE, 0, 8, tuple(range(100, 108))))

    # A VM clone writes the same content elsewhere (large full dup).
    t += 0.01
    records.append(TraceRecord(t, OpType.WRITE, 64, 8, tuple(range(100, 108))))

    # An application log keeps re-writing the same 4 KB block -- the
    # small fully redundant writes iDedup ignores and POD eliminates.
    for i in range(20):
        t += 0.002
        records.append(TraceRecord(t, OpType.WRITE, 128, 1, (500,)))

    # Fresh data mixed with a couple of scattered duplicates: POD
    # deliberately does NOT deduplicate this one (category 2).
    t += 0.01
    records.append(TraceRecord(t, OpType.WRITE, 200, 4, (100, 900, 104, 901)))

    # Read everything back.
    for lba, n in ((0, 8), (64, 8), (128, 1), (200, 4)):
        t += 0.005
        records.append(TraceRecord(t, OpType.READ, lba, n))

    return Trace(name="quickstart", records=records, logical_blocks=1024)


def main() -> None:
    trace = build_workload()
    config = SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=64 * 1024)

    print(f"workload: {len(trace)} requests over {trace.logical_blocks} logical blocks\n")
    for scheme in (Native(config), POD(config)):
        result = replay_trace(trace, scheme)
        s = result.summary()
        print(f"{scheme.name}:")
        print(f"  mean response time : {s['mean_response'] * 1e3:8.3f} ms")
        print(f"  write requests removed : {result.write_requests_removed} of {result.writes_total}"
              f" ({result.removed_write_pct:.1f}%)")
        print(f"  capacity used : {result.capacity_blocks} blocks")
        print(f"  map-table NVRAM : {scheme.nvram.peak_bytes} bytes")
        print()


if __name__ == "__main__":
    main()
