#!/usr/bin/env python
"""Where does the latency go?  Per-size and per-phase breakdowns.

Replays the homes trace under Native and POD with the detailed
collector, then shows two decompositions the paper's discussion
reasons about:

* response time by request size -- POD's elimination of small
  redundant writes shows up directly in the small buckets;
* response time over simulated time -- burst-driven queueing peaks
  and how much POD flattens them.

Run:  python examples/latency_breakdown.py [scale]
"""

import sys

from repro.experiments.runner import build_scheme, get_trace
from repro.metrics.analysis import (
    DetailedCollector,
    latency_by_size,
    latency_timeseries,
    slowdown_profile,
)
from repro.metrics.report import render_table
from repro.sim.replay import replay_trace
from repro.sim.request import OpType
from repro.traces.synthetic import paper_traces

TRACE = "homes"


def run(scheme_name: str, scale: float) -> DetailedCollector:
    spec = paper_traces()[TRACE]
    scheme = build_scheme(scheme_name, spec, scale=scale)
    collector = DetailedCollector()
    replay_trace(get_trace(spec, scale=scale), scheme, collector=collector)
    return collector


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    collectors = {name: run(name, scale) for name in ("Native", "POD")}

    # -- by size ---------------------------------------------------------
    rows = []
    native_sizes = latency_by_size(collectors["Native"], op=OpType.WRITE)
    pod_sizes = latency_by_size(collectors["POD"], op=OpType.WRITE)
    for kb in sorted(set(native_sizes) | set(pod_sizes)):
        n_count, n_mean = native_sizes.get(kb, (0, 0.0))
        _p_count, p_mean = pod_sizes.get(kb, (0, 0.0))
        rows.append(
            [
                f"<= {kb} KB" if kb != 64 else ">= 64 KB",
                n_count,
                n_mean * 1e3,
                p_mean * 1e3,
                f"{(1 - p_mean / n_mean) * 100:+.1f}%" if n_mean else "-",
            ]
        )
    print(
        render_table(
            f"write latency by request size ({TRACE}, scale {scale})",
            ["size", "writes", "Native mean (ms)", "POD mean (ms)", "POD saves"],
            rows,
            note="small buckets carry POD's eliminated redundant writes",
        )
    )

    # -- over time --------------------------------------------------------
    print("\nwindowed mean response (each bar 2 ms of latency):")
    native_ts = dict(
        (start, mean) for start, _c, mean in latency_timeseries(collectors["Native"], window=20.0)
    )
    pod_ts = dict(
        (start, mean) for start, _c, mean in latency_timeseries(collectors["POD"], window=20.0)
    )
    for start in sorted(native_ts)[:18]:
        n = native_ts.get(start, 0.0) * 1e3
        p = pod_ts.get(start, 0.0) * 1e3
        print(f"  t={start:6.0f}s  Native {'#' * int(n / 2):<30s}{n:6.1f} ms")
        print(f"            POD    {'#' * int(p / 2):<30s}{p:6.1f} ms")

    for name, collector in collectors.items():
        profile = slowdown_profile(collector)
        print(f"\n{name}: queue-pressure slowdowns mean={profile.mean:.1f} "
              f"median={profile.median:.1f} p95={profile.p95:.1f}")


if __name__ == "__main__":
    main()
