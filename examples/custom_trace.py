#!/usr/bin/env python
"""Working with trace files: generate, save, reload, replay.

Shows the full trace workflow a downstream user needs to evaluate
their own workloads: generate (or hand-build) a trace, persist it in
the line-oriented text format, reload it, analyse it (Table-II-style
characteristics and redundancy profile), and replay it under a chosen
scheme and array geometry.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import SelectDedupe, SchemeConfig, replay_trace
from repro.sim.replay import ReplayConfig
from repro.storage.raid import RaidLevel
from repro.traces import (
    WEB_VM,
    generate_trace,
    io_vs_capacity_redundancy,
    load_trace,
    save_trace,
    trace_characteristics,
)


def main() -> None:
    # 1. Generate a small web-vm-like trace.
    trace = generate_trace(WEB_VM, scale=0.03)
    print(f"generated {trace.name}: {len(trace)} requests "
          f"({trace.warmup_count} warm-up)")

    # 2. Save and reload it (the file is plain text, one request per line).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my-workload.trace"
        save_trace(trace, path)
        print(f"saved to {path.name}: {path.stat().st_size / 1024:.0f} KiB")
        trace = load_trace(path)

    # 3. Analyse it.
    ch = trace_characteristics(trace)
    red = io_vs_capacity_redundancy(trace)
    print(f"write ratio {ch.write_ratio * 100:.1f}%, "
          f"mean request {ch.mean_request_kb:.1f} KB")
    print(f"I/O redundancy {red.io_redundancy_pct:.1f}% "
          f"(capacity redundancy {red.capacity_redundancy_pct:.1f}%)")

    # 4. Replay under Select-Dedupe on two array geometries.
    for config in (
        ReplayConfig(),  # the paper's 4-disk RAID-5
        ReplayConfig(raid_level=RaidLevel.RAID0, ndisks=4),
    ):
        scheme = SelectDedupe(
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=128 * 1024,
            )
        )
        result = replay_trace(trace, scheme, config)
        print(f"{config.raid_level.name}: mean "
              f"{result.metrics.overall_summary().mean * 1e3:.2f} ms, "
              f"writes removed {result.removed_write_pct:.1f}%")


if __name__ == "__main__":
    main()
