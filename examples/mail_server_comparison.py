#!/usr/bin/env python
"""The paper's headline experiment, on one trace: an email server.

Generates the synthetic mail workload (the trace with the most fully
redundant writes -- Select-Dedupe removes ~70% of its writes in the
paper), replays it through all five schemes on a 4-disk RAID-5, and
prints a Figure-8/9/10/11-style comparison table.

Run:  python examples/mail_server_comparison.py [scale]
(default scale 0.1 ~ a few seconds; 1.0 = the full calibrated trace)
"""

import sys

from repro.experiments.runner import PAPER_SCHEMES, run_single
from repro.metrics.report import improvement_pct, render_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1

    results = {name: run_single("mail", name, scale=scale) for name in PAPER_SCHEMES}
    native = results["Native"]
    native_mean = native.metrics.overall_summary().mean

    rows = []
    for name, result in results.items():
        overall = result.metrics.overall_summary().mean
        rows.append(
            [
                name,
                overall * 1e3,
                result.metrics.read_summary().mean * 1e3,
                result.metrics.write_summary().mean * 1e3,
                f"{improvement_pct(native_mean, overall):+.1f}%",
                f"{result.removed_write_pct:.1f}%",
                f"{result.capacity_blocks / native.capacity_blocks * 100:.1f}%",
            ]
        )

    print(
        render_table(
            f"mail trace, scale={scale}, 4-disk RAID-5 (64 KB stripes)",
            [
                "scheme",
                "mean (ms)",
                "read (ms)",
                "write (ms)",
                "vs Native",
                "writes removed",
                "capacity",
            ],
            rows,
            note="paper: Select-Dedupe removes 70.7% of mail's writes and cuts "
            "its write response time by 91.6%",
        )
    )


if __name__ == "__main__":
    main()
