#!/usr/bin/env python
"""Watching iCache adapt to read/write burstiness.

Drives POD with an artificial workload that alternates long
write-intensive and read-intensive phases (Section II-B's premise),
then plots -- in plain ASCII -- how the Swap Module moves DRAM between
the index cache and the read cache, phase by phase.

The workload is built so both caches are genuinely under pressure:
write phases duplicate content from a window larger than the index
cache (so a bigger index detects more duplicates), and read phases
hammer a hot set about the size of the read cache (so a bigger read
cache converts misses into hits).

Run:  python examples/adaptive_cache_demo.py
"""

import numpy as np

from repro import POD, SchemeConfig
from repro.sim.request import IORequest

PHASES = 10
REQUESTS_PER_PHASE = 2500
EPOCH = 0.3
MEMORY = 256 * 1024  # 50/50 start: 4096 index entries / 32 read blocks


def main() -> None:
    pod = POD(
        SchemeConfig(
            logical_blocks=64 * 1024,
            memory_bytes=MEMORY,
            icache_epoch=EPOCH,
            icache_step=0.08,
        )
    )
    rng = np.random.default_rng(11)

    now = 0.0
    next_epoch = EPOCH
    segments = []  # (lba, fps) written so far
    next_lba = 0
    fp_counter = 1

    def tick(dt: float) -> float:
        nonlocal now, next_epoch
        now += dt
        while now >= next_epoch:
            pod.on_epoch(next_epoch)
            next_epoch += EPOCH
        return now

    for phase in range(PHASES):
        writing = phase % 2 == 0
        for _ in range(REQUESTS_PER_PHASE):
            t = tick(0.8e-3)
            if writing or not segments:
                n = int(rng.integers(1, 4))
                # Duplicate from a *wide* window (more fingerprints
                # than the index cache holds) or write fresh data.
                if segments and rng.random() < 0.6:
                    window = segments[-6000:]
                    lba0, fps = window[int(rng.integers(0, len(window)))]
                    n = min(n, len(fps))
                    fps = fps[:n]
                else:
                    fps = tuple(range(fp_counter, fp_counter + n))
                    fp_counter += n
                lba = next_lba
                next_lba = (next_lba + n) % (pod.regions.logical_blocks - 64)
                segments.append((lba, tuple(fps)))
                pod.process(IORequest.write(time=t, lba=lba, fingerprints=fps), t)
            else:
                # Hot-set reads: ~the size of the read cache.
                hot = segments[-60:]
                lba, fps = hot[int(rng.integers(0, len(hot)))]
                pod.process(IORequest.read(time=t, lba=lba, nblocks=len(fps)), t)

    print("index-cache share over time (each row = one epoch; W/R = phase type):")
    phase_len_s = REQUESTS_PER_PHASE * 0.8e-3
    shares = {"W": [], "R": []}
    for when, index_bytes, _read_bytes in pod.cache.partition_history:
        share = index_bytes / MEMORY
        phase = min(PHASES - 1, int(when / phase_len_s))
        kind = "W" if phase % 2 == 0 else "R"
        shares[kind].append(share)
        bar = "#" * int(share * 40)
        print(f"  t={when:6.2f}s [{kind}] {bar:<40s} {share * 100:5.1f}%")

    print(f"\nrepartitions: {pod.cache.repartitions}, "
          f"swapped: {pod.cache.total_swapped_bytes / 1024:.0f} KiB")
    mean_w = float(np.mean(shares["W"])) if shares["W"] else 0.0
    mean_r = float(np.mean(shares["R"])) if shares["R"] else 0.0
    print(f"mean index share in write phases: {mean_w * 100:.1f}%")
    print(f"mean index share in read phases : {mean_r * 100:.1f}%")
    print("expected shape: a larger index share during write phases than read phases.")


if __name__ == "__main__":
    main()
