"""CI smoke: the columnar batch driver must beat the object path.

The full performance story lives in bench_replay_throughput.py and the
committed BENCH_replay.json trajectory (emit_bench.py); this file is
the cheap regression tripwire CI runs on every push.  The measured
advantage on the no-dedup fast path is ~6x (see BENCH_replay.json);
the assertion here demands 2x, low enough that a noisy shared runner
cannot flake it, high enough that losing the columnar fast path (a
silent fallback to materialised planning) fails loudly.

Bit-identity is separately pinned by tests/sim/test_batch_replay.py;
this bench only re-checks the headline metric so a speedup obtained by
diverging results can never pass.

Runnable two ways::

    PYTHONPATH=src python benchmarks/bench_batch_smoke.py
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_smoke.py -q
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.baselines.base import SchemeConfig
from repro.baselines.native import Native
from repro.sim.batch import DEFAULT_BATCH_SIZE
from repro.sim.replay import ReplayResult, replay_trace
from repro.traces.columnar import ColumnarTrace
from repro.traces.format import Trace
from repro.traces.synthetic import WEB_VM, generate_trace

REPEATS = 3
MIN_SPEEDUP = 2.0
TRACE = generate_trace(WEB_VM, scale=0.05, seed=1234)
CTRACE = ColumnarTrace.from_trace(TRACE)


def _replay(
    trace: Union[Trace, ColumnarTrace], batch_size: Optional[int]
) -> ReplayResult:
    scheme = Native(
        SchemeConfig(logical_blocks=TRACE.logical_blocks, memory_bytes=256 * 1024)
    )
    return replay_trace(trace, scheme, batch_size=batch_size)


def _best(trace: Union[Trace, ColumnarTrace], batch_size: Optional[int]) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _replay(trace, batch_size)
        best = min(best, time.perf_counter() - t0)
    return best


def test_columnar_beats_object() -> None:
    obj = _best(TRACE, None)
    col = _best(CTRACE, DEFAULT_BATCH_SIZE)
    speedup = obj / col
    n = len(TRACE.records)
    print(
        f"object {n / obj:9.0f} req/s  columnar {n / col:9.0f} req/s  "
        f"speedup {speedup:5.2f}x (floor {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar driver only {speedup:.2f}x over the object path "
        f"(floor {MIN_SPEEDUP}x) -- did the fast path silently fall back?"
    )


if __name__ == "__main__":
    test_columnar_beats_object()
