"""Ablation: iCache epoch length and repartition step.

DESIGN.md calls out two iCache tunables the paper leaves implicit (the
"predefined interval" and how much space moves per decision).  This
bench shows POD is robust across a reasonable range and that the
adaptive cache does, in fact, repartition.
"""

from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table

EPOCHS = (0.25, 1.0, 4.0)
STEPS = (0.02, 0.05, 0.15)


def run_sweep(scale):
    rows = []
    for epoch in EPOCHS:
        for step in STEPS:
            result = runner.run_single(
                "mail",
                "POD",
                scale=scale,
                icache_epoch=epoch,
                icache_step=step,
            )
            rows.append(
                {
                    "epoch_s": epoch,
                    "step": step,
                    "mean_ms": result.metrics.overall_summary().mean * 1e3,
                    "removed_pct": result.removed_write_pct,
                    "repartitions": result.scheme_stats["cache_repartitions"],
                    "swapped_mb": result.scheme_stats["cache_total_swapped_bytes"] / 1e6,
                }
            )
    return rows


def test_ablation_icache(benchmark, scale):
    rows = benchmark(run_sweep, scale)
    text = render_table(
        "Ablation: iCache epoch x step (mail, POD)",
        ["epoch (s)", "step", "mean (ms)", "removed %", "repartitions", "swapped (MB)"],
        [
            [r["epoch_s"], r["step"], r["mean_ms"], r["removed_pct"], r["repartitions"], r["swapped_mb"]]
            for r in rows
        ],
    )
    emit("ablation_icache", text)

    fixed = runner.run_single("mail", "Select-Dedupe", scale=scale)
    fixed_mean = fixed.metrics.overall_summary().mean * 1e3

    # The adaptive cache actually adapts...
    assert all(r["repartitions"] > 0 for r in rows)
    # ... shorter epochs repartition at least as often as longer ones
    # at the same step size.
    for step in STEPS:
        by_epoch = [r for r in rows if r["step"] == step]
        assert by_epoch[0]["repartitions"] >= by_epoch[-1]["repartitions"]
    # POD stays within a sane band of the fixed split across the whole
    # grid (no pathological configuration), and the best configuration
    # comes within a few percent of it on this trace while removing
    # more writes (mail is Select-Dedupe's best case for a fixed 50/50
    # split; POD's wins show up on the mixed traces and in Fig. 11).
    assert all(r["mean_ms"] < fixed_mean * 1.25 for r in rows)
    assert any(r["mean_ms"] <= fixed_mean * 1.06 for r in rows)
    assert any(r["removed_pct"] >= fixed.removed_write_pct for r in rows)
