"""Wall-clock budget for the dataflow tier over the whole repository.

The ``lint-flow`` CI job runs ``repro lint --flow src tests`` on every
push; the analysis (symbol table + call graph + fixpoint summaries +
per-file abstract interpretation) must stay cheap enough to sit in the
inner loop.  Budget: the full-repo run completes in under 30 seconds
(it takes ~3 s today -- the bound is a regression tripwire, not a
target).

Runnable two ways::

    PYTHONPATH=src python benchmarks/bench_lint_flow.py
    PYTHONPATH=src python -m pytest benchmarks/bench_lint_flow.py -q
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.lint import lint_paths

REPO = Path(__file__).resolve().parent.parent
MAX_SECONDS = 30.0


def _run() -> "tuple[float, int]":
    t0 = time.perf_counter()
    report = lint_paths(
        [str(REPO / "src"), str(REPO / "tests")],
        flow=True,
        baseline=REPO / ".pod-baseline.json",
    )
    return time.perf_counter() - t0, report.files_checked


def test_full_repo_flow_analysis_under_budget() -> None:
    elapsed, files = _run()
    assert files > 100, f"expected a full-repo run, saw {files} files"
    assert elapsed < MAX_SECONDS, (
        f"flow analysis over {files} files took {elapsed:.1f}s "
        f"(budget {MAX_SECONDS:.0f}s)"
    )


def main() -> None:
    elapsed, files = _run()
    print(f"repro lint --flow src tests: {files} files in {elapsed:.2f}s "
          f"(budget {MAX_SECONDS:.0f}s)")


if __name__ == "__main__":
    main()
