"""Fig. 1: distribution of I/O redundancy among request sizes.

Paper shape: small writes dominate the request population *and* carry
the most redundant requests; large requests are mostly partially
redundant (for the mixed traces).
"""

from conftest import emit

from repro.experiments import figures


def test_fig1_redundancy_by_size(benchmark, scale):
    data, text = benchmark(figures.fig1_redundancy_by_size, scale)
    emit("fig1_redundancy_by_size", text)

    for name, rows in data.items():
        totals = [r.total for r in rows]
        redundant = [r.redundant for r in rows]
        # 4 KB bucket has the most requests and (essentially) the most
        # redundant ones -- on mail, which is redundant at every size,
        # the biggest bucket can tie it within a few percent.
        assert totals[0] == max(totals), name
        assert redundant[0] >= 0.9 * max(redundant), name
        # every bucket shows some redundancy (the traces are far from
        # unique-only at any size)
        assert all(r.redundant > 0 for r in rows), name

    # Large requests are mostly partially redundant on the two
    # mixed-structure traces (Section II-A).
    for name in ("web-vm", "homes"):
        big = data[name][-1]
        assert big.partially_redundant > big.fully_redundant, name

    # mail is the fully-redundant-rich trace at every size.
    for row in data["mail"]:
        assert row.fully_redundant >= row.partially_redundant
