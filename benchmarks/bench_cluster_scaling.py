"""Cluster scaling: response time and dedup traffic vs node count and
network latency.

Beyond the paper (its testbed is one node), but the natural question
for the Section I cloud scenario: what happens to POD's performance
when the consolidated tenant set is sharded across 1/2/4/8 complete
POD instances connected by a real network?

Shape contracts (deliberately conservative -- per-run response times
depend on queueing details we do not want to over-pin):

* one node never does remote lookups; remote lookups per write request
  are non-decreasing in node count (a bigger share of the fingerprint
  directory lives elsewhere);
* per-node accounting sums to cluster totals at every size;
* adding spindles helps the bottleneck: the busiest disk at 8 nodes is
  strictly less busy than at 1 node;
* at fixed membership, mean and p99 response times are non-decreasing
  in network latency, while the remote-lookup count is latency-
  invariant (the fabric changes *when*, never *what*).
"""

from conftest import emit

from repro.cluster import ClusterConfig, Consistency, DirectoryConfig, NetworkModel
from repro.cluster.directory import required
from repro.experiments import runner
from repro.metrics.report import render_table

TRACES = ["web-vm", "mail"]
COPIES = 4  # 8 tenant volumes -> supports up to 8 nodes
SEED = 11
NODE_COUNTS = (1, 2, 4, 8)
LATENCIES = (10e-6, 200e-6, 2e-3)
#: Replicated-directory sweep: (replication, consistency) pairs on a
#: fixed 4-node cluster.  quorum(2) == quorum(3) == 2, so the R=3/all
#: row is what exposes the third replica's wire cost.
REPLICATIONS = (
    (1, Consistency.QUORUM),
    (2, Consistency.QUORUM),
    (3, Consistency.QUORUM),
    (3, Consistency.ALL),
)


def _row(result, nodes):
    overall = result.metrics.overall_summary()
    bottleneck = max(d["busy_time"] for d in result.utilisation.values())
    cluster = result.cluster_stats
    writes = sum(n["writes_total"] for n in result.nodes) if result.nodes else None
    return {
        "nodes": nodes,
        "mean_ms": overall.mean * 1e3,
        "p99_ms": overall.p99 * 1e3,
        "bottleneck_busy_s": bottleneck,
        "throughput_rps": overall.count / bottleneck,
        "remote_lookups": 0 if cluster is None else cluster["remote_lookups"],
        "remote_share": (
            0.0
            if cluster is None or not writes
            else cluster["remote_lookups"] / writes
        ),
        "result": result,
    }


def run_node_sweep(scale):
    rows = []
    for nodes in NODE_COUNTS:
        result = runner.run_cluster(
            TRACES, "POD", nodes=nodes, copies=COPIES, scale=scale, seed=SEED
        )
        rows.append(_row(result, nodes))
    return rows


def run_latency_sweep(scale):
    rows = []
    for latency in LATENCIES:
        result = runner.run_cluster(
            TRACES,
            "POD",
            nodes=4,
            copies=COPIES,
            scale=scale,
            seed=SEED,
            cluster_config=ClusterConfig(net=NetworkModel(latency=latency)),
        )
        overall = result.metrics.overall_summary()
        rows.append(
            {
                "latency_us": latency * 1e6,
                "mean_ms": overall.mean * 1e3,
                "p99_ms": overall.p99 * 1e3,
                "remote_lookups": result.cluster_stats["remote_lookups"],
            }
        )
    return rows


def test_cluster_node_scaling(benchmark, scale):
    rows = benchmark(run_node_sweep, scale)
    text = render_table(
        "Cluster scaling: POD across 1/2/4/8 nodes (web-vm+mail x4 tenants)",
        ["nodes", "mean (ms)", "p99 (ms)", "tput (req/s)", "remote lkp", "lkp/write"],
        [
            [
                r["nodes"],
                r["mean_ms"],
                r["p99_ms"],
                r["throughput_rps"],
                r["remote_lookups"],
                r["remote_share"],
            ]
            for r in rows
        ],
        note="sharding the directory trades remote lookups for spindles",
    )
    emit("cluster_node_scaling", text)

    by = {r["nodes"]: r for r in rows}
    # one node is the single-node replay: nothing is remote
    assert by[1]["remote_lookups"] == 0
    # remote share of write traffic grows (weakly) with node count
    shares = [by[n]["remote_share"] for n in NODE_COUNTS]
    assert all(b >= a for a, b in zip(shares, shares[1:]))
    assert by[8]["remote_lookups"] > by[2]["remote_lookups"] > 0
    # more arrays relieve the bottleneck spindle
    assert by[8]["bottleneck_busy_s"] < by[1]["bottleneck_busy_s"]
    assert by[8]["throughput_rps"] > by[1]["throughput_rps"]
    # accounting conservation at every cluster size
    for nodes in NODE_COUNTS[1:]:
        result = by[nodes]["result"]
        cluster = result.cluster_stats
        for key in ("remote_lookups", "remote_duplicate_blocks"):
            assert sum(n[key] for n in result.nodes) == cluster[key]
        assert (
            sum(n["capacity_blocks"] for n in result.nodes)
            == result.capacity_blocks
        )


def run_replication_sweep(scale):
    rows = []
    baseline = runner.run_cluster(
        TRACES, "POD", nodes=4, copies=COPIES, scale=scale, seed=SEED
    )
    for replication, level in REPLICATIONS:
        result = runner.run_cluster(
            TRACES,
            "POD",
            nodes=4,
            copies=COPIES,
            scale=scale,
            seed=SEED,
            cluster_config=ClusterConfig(
                directory=DirectoryConfig(
                    replication=replication, consistency=level
                )
            ),
        )
        overall = result.metrics.overall_summary()
        d = result.cluster_stats["directory"]
        rows.append(
            {
                "replication": replication,
                "consistency": level.value,
                "need": required(level, replication),
                "mean_ms": overall.mean * 1e3,
                "p99_ms": overall.p99 * 1e3,
                "bytes_moved": result.cluster_stats["fabric"]["bytes_moved"],
                "entries": sum(d["entries"].values()),
                "registrations": d["registrations"],
                "remote_dup": result.cluster_stats["remote_duplicate_blocks"],
            }
        )
    return baseline, rows


def test_cluster_replication_sweep(benchmark, scale):
    baseline, rows = benchmark(run_replication_sweep, scale)
    text = render_table(
        "Replicated directory: R x consistency sweep (4 nodes)",
        ["R", "level", "ack", "mean (ms)", "p99 (ms)", "fabric bytes", "entries"],
        [
            [
                r["replication"],
                r["consistency"],
                r["need"],
                r["mean_ms"],
                r["p99_ms"],
                r["bytes_moved"],
                r["entries"],
            ]
            for r in rows
        ],
        note="replication buys kill tolerance with wire bytes, never dedup",
    )
    emit("cluster_replication_sweep", text)

    overall = baseline.metrics.overall_summary()
    # R=1 armed is the legacy sharded directory, bit for bit
    assert rows[0]["mean_ms"] == overall.mean * 1e3
    assert rows[0]["p99_ms"] == overall.p99 * 1e3
    # entry placement is exactly "required acks" copies per first write
    for r in rows:
        assert r["entries"] == r["need"] * r["registrations"]
    # consistency changes wire cost, never what dedup finds
    assert len({r["remote_dup"] for r in rows}) == 1
    # wire bytes grow with the ack count and nothing else
    by_need = sorted(rows, key=lambda r: r["need"])
    bytes_by_need = [r["bytes_moved"] for r in by_need]
    assert all(b >= a for a, b in zip(bytes_by_need, bytes_by_need[1:]))
    assert by_need[-1]["bytes_moved"] > by_need[0]["bytes_moved"]


def test_cluster_latency_sensitivity(benchmark, scale):
    rows = benchmark(run_latency_sweep, scale)
    text = render_table(
        "Cluster latency sensitivity: 4 nodes, fabric latency sweep",
        ["latency (us)", "mean (ms)", "p99 (ms)", "remote lkp"],
        [
            [r["latency_us"], r["mean_ms"], r["p99_ms"], r["remote_lookups"]]
            for r in rows
        ],
        note="the fabric changes when lookups resolve, never what they find",
    )
    emit("cluster_latency_sensitivity", text)

    means = [r["mean_ms"] for r in rows]
    p99s = [r["p99_ms"] for r in rows]
    assert all(b >= a for a, b in zip(means, means[1:]))
    # The p99 tail is dominated by disk queueing, and a slower fabric
    # perturbs arrival phasing enough to move it a fraction of a
    # percent either way -- so the tail contract is "never materially
    # better", not strict monotonicity.
    assert all(b >= 0.98 * a for a, b in zip(p99s, p99s[1:]))
    # the slowest fabric clearly hurts
    assert means[-1] > means[0]
    # ... but routing outcomes are latency-invariant
    assert len({r["remote_lookups"] for r in rows}) == 1
