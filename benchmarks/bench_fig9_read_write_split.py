"""Fig. 9: write (a) and read (b) response times, normalized to Native.

Paper shapes:

* (a) Select-Dedupe cuts write latency sharply on every trace (47.2%
  / 20.2% / 91.6%), far more than iDedup (11.6% / 1.7% / 54.5%);
  Full-Dedupe *increases* homes' write latency (+10.1%) despite
  removing the most writes.
* (b) Full-Dedupe degrades reads on web-vm and homes (read
  amplification); Select-Dedupe never degrades reads materially and
  helps most on mail.
"""

from conftest import emit

from repro.experiments import figures


def test_fig9_read_write_split(benchmark, scale):
    data, text = benchmark(figures.fig9_read_write_split, scale)
    emit("fig9_read_write_split", text)

    write, read = data["write"], data["read"]

    for trace in ("web-vm", "homes", "mail"):
        # (a) writes: Select-Dedupe below Native and below iDedup.
        assert write[trace]["Select-Dedupe"] < 85.0, trace
        assert write[trace]["Select-Dedupe"] < write[trace]["iDedup"], trace

    # (a) Full-Dedupe's write latency on homes is no better than
    # Native's (the paper measures +10.1%).
    assert write["homes"]["Full-Dedupe"] > 95.0
    # (a) the mail write gain is dramatic.
    assert write["mail"]["Select-Dedupe"] < 45.0

    # (b) reads: Full-Dedupe amplification hurts homes clearly.
    assert read["homes"]["Full-Dedupe"] > 110.0
    # (b) Select-Dedupe never materially degrades reads...
    for trace in ("web-vm", "homes", "mail"):
        assert read[trace]["Select-Dedupe"] < 115.0, trace
        # ... and always reads no worse than Full-Dedupe.
        assert read[trace]["Select-Dedupe"] <= read[trace]["Full-Dedupe"] * 1.05, trace
    # (b) the mail read-path gain from queue relief is large.
    assert read["mail"]["Select-Dedupe"] < 90.0
