"""Section IV-D.2: Map-table NVRAM overhead.

Paper: 20 bytes per Map-table entry; peak NVRAM use of 0.8 / 0.3 /
1.5 MB for web-vm / homes / mail.  Shape: small (single-digit MB at
full scale), and mail > web-vm > homes -- the ordering follows how
many redundant writes each trace deduplicates.
"""

from conftest import emit

from repro.experiments import figures


def test_overhead_nvram(benchmark, scale):
    data, text = benchmark(figures.nvram_overhead, scale)
    emit("overhead_nvram", text)

    # Footprints are tiny: well under 16 MB even before descaling.
    for trace, mb in data.items():
        assert 0.0 < mb < 16.0, trace

    # Ordering follows the deduplication volume (paper: mail 1.5 MB >
    # web-vm 0.8 MB > homes 0.3 MB).
    assert data["mail"] > data["web-vm"] > data["homes"]
