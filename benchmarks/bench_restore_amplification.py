"""Restore read amplification (Section I's motivating measurement).

"Our preliminary evaluations on the VM disk images reveal that the
restore (read) times with deduplication are much higher than those
without deduplication, by an average of 2.9x and up to 4.2x."

The bench builds VM-image-like data whose blocks partially duplicate a
base image *scattered across the store*, writes it through Native
(contiguous layout), Full-Dedupe (deduplicates everything, fragmenting
the clone) and Select-Dedupe (bypasses the scattered partial
redundancy), then measures a full sequential restore (read-back) of
the clone with cold caches.

Expected shape: Full-Dedupe's restore pays a multi-x amplification in
the paper's 2-5x band; Select-Dedupe's restore stays near Native's.
"""

import numpy as np
import pytest
from conftest import emit

from repro.baselines.base import SchemeConfig
from repro.baselines.full_dedupe import FullDedupe
from repro.baselines.native import Native
from repro.core.sar import SARDedupe
from repro.core.select_dedupe import SelectDedupe
from repro.metrics.report import render_table
from repro.sim.replay import ReplayConfig, replay_trace
from repro.sim.request import OpType
from repro.storage.ssd import SsdParams
from repro.traces.format import Trace, TraceRecord

IMAGE_BLOCKS = 2048  # 8 MiB clone image
BASE_IMAGES = 6      # scattered donors written before the clone


def build_restore_trace(rng: np.random.Generator) -> Trace:
    """Base images, interleaved churn, a part-duplicate clone, then a
    full sequential restore of the clone."""
    records = []
    t = 0.0
    fp = 1

    # Base images: contiguous, unique content.
    bases = []
    lba = 0
    for _ in range(BASE_IMAGES):
        fps = tuple(range(fp, fp + IMAGE_BLOCKS))
        fp += IMAGE_BLOCKS
        for off in range(0, IMAGE_BLOCKS, 16):
            t += 1e-3
            records.append(
                TraceRecord(t, OpType.WRITE, lba + off, 16, fps[off : off + 16])
            )
        bases.append((lba, fps))
        lba += IMAGE_BLOCKS

    # The clone: every second 16-block run duplicates a random run of
    # a random base image (so the duplicates are scattered across the
    # store), the rest is fresh data.
    clone_lba = lba
    clone_fps = []
    for off in range(0, IMAGE_BLOCKS, 16):
        if (off // 16) % 2 == 0:
            b_lba, b_fps = bases[int(rng.integers(0, BASE_IMAGES))]
            start = int(rng.integers(0, IMAGE_BLOCKS - 16))
            chunk = b_fps[start : start + 16]
        else:
            chunk = tuple(range(fp, fp + 16))
            fp += 16
        clone_fps.extend(chunk)
        t += 1e-3
        records.append(TraceRecord(t, OpType.WRITE, clone_lba + off, 16, chunk))

    # The restore: read the whole clone sequentially, cold.
    t += 60.0  # long idle gap: queues drained, timing isolated
    for off in range(0, IMAGE_BLOCKS, 64):
        t += 1e-6
        records.append(TraceRecord(t, OpType.READ, clone_lba + off, 64))

    return Trace(
        name="restore",
        records=records,
        logical_blocks=clone_lba + IMAGE_BLOCKS,
        warmup_count=0,
    )


def restore_time(trace: Trace, cls) -> float:
    extra = {"ssd_bytes": 16 * 1024 * 1024} if cls is SARDedupe else {}
    scheme = cls(
        SchemeConfig(
            logical_blocks=trace.logical_blocks,
            memory_bytes=64 * 1024,  # tiny: restores are cold reads
            **extra,
        )
    )
    config = ReplayConfig(
        collect_warmup=True,
        ssd_params=SsdParams() if cls is SARDedupe else None,
    )
    result = replay_trace(trace, scheme, config)
    return result.metrics.read_summary().mean


def run_experiment(_ignored=None):
    rng = np.random.default_rng(99)
    trace = build_restore_trace(rng)
    return {
        cls.name: restore_time(trace, cls)
        for cls in (Native, FullDedupe, SelectDedupe, SARDedupe)
    }


def test_restore_amplification(benchmark):
    times = benchmark(run_experiment)
    amp_full = times["Full-Dedupe"] / times["Native"]
    amp_select = times["Select-Dedupe"] / times["Native"]
    text = render_table(
        "Restore read amplification (Section I)",
        ["scheme", "restore read mean (ms)", "vs Native"],
        [
            [name, value * 1e3, f"{value / times['Native']:.2f}x"]
            for name, value in times.items()
        ],
        note="paper: dedup restores average 2.9x slower, up to 4.2x",
    )
    emit("restore_amplification", text)

    # Full deduplication fragments the clone: multi-x amplification in
    # the paper's reported band.
    assert 1.5 <= amp_full <= 6.0
    # Select-Dedupe deduplicates only the *large sequential* runs
    # (category 3, 64 KB granularity here), so its restore pays at
    # most a mild fragmentation cost -- far below Full-Dedupe's.
    assert amp_select <= 2.0
    assert amp_select < amp_full / 1.8
    # SAR stages the remapped blocks on the SSD: the residual
    # fragmentation cost disappears (reference [18]'s claim).
    amp_sar = times["SAR"] / times["Native"]
    assert amp_sar <= min(amp_select, 1.2)
