"""Table II: characteristics of the three (synthetic) traces."""

import pytest
from conftest import emit

from repro.experiments import figures

#: Published Table II values: (write ratio, mean request KB).
PAPER = {"web-vm": (0.698, 14.8), "homes": (0.805, 13.1), "mail": (0.785, 40.8)}


def test_table2_trace_characteristics(benchmark, scale):
    rows, text = benchmark(figures.table2_characteristics, scale)
    emit("table2_trace_characteristics", text)

    by_name = {r["trace"]: r for r in rows}
    for name, (ratio, size_kb) in PAPER.items():
        row = by_name[name]
        assert row["write_ratio_pct"] / 100.0 == pytest.approx(ratio, abs=0.06)
        assert row["mean_request_kb"] == pytest.approx(size_kb, rel=0.25)

    # Relative volumes match the paper: mail >> web-vm > homes.
    assert by_name["mail"]["io_count"] > by_name["web-vm"]["io_count"] > by_name["homes"]["io_count"]
