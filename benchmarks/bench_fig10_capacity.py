"""Fig. 10: storage capacity used, normalized to Native.

Paper shapes: Full-Dedupe saves the most capacity (it deduplicates
everything); Select-Dedupe achieves comparable or better savings than
iDedup -- clearly better on mail, where small redundant writes (which
iDedup ignores) are a large share of the data.
"""

from conftest import emit

from repro.experiments import figures


def test_fig10_capacity(benchmark, scale):
    data, text = benchmark(figures.fig10_capacity, scale)
    emit("fig10_capacity", text)

    for trace in ("web-vm", "homes", "mail"):
        vals = data[trace]
        # Full-Dedupe saves the most.
        assert vals["Full-Dedupe"] == min(vals.values()), trace
        # Every dedup scheme uses at most Native's capacity.
        for scheme in ("Full-Dedupe", "iDedup", "Select-Dedupe"):
            assert vals[scheme] <= 100.0 + 1e-9, (trace, scheme)
        # Select-Dedupe saves at least as much as iDedup.
        assert vals["Select-Dedupe"] <= vals["iDedup"] + 1.0, trace

    # ... and clearly more on mail (paper: "especially for the mail
    # trace").
    assert data["mail"]["Select-Dedupe"] < data["mail"]["iDedup"] - 5.0
    # mail's savings are substantial in absolute terms.
    assert data["mail"]["Select-Dedupe"] < 75.0
