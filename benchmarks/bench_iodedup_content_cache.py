"""Extension: I/O-Deduplication's content-addressed read cache.

Koller & Rangaswami (FAST'10) -- the first row of Table I -- improve
*read* performance by caching block *content* instead of block
addresses: every LBA holding the same bytes shares one cache entry, so
the effective cache grows by the workload's duplication factor.  The
scheme never eliminates writes (Table I: no capacity saving, no write
elimination).

The bench replays web-vm (the most read-heavy trace) and checks the
profile: more read-cache hits than Native from the same DRAM, no
writes removed, capacity unchanged.
"""

from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table

TRACE = "web-vm"


def run_pair(scale):
    rows = {}
    for scheme in ("Native", "I/O-Dedup"):
        result = runner.run_single(TRACE, scheme, scale=scale)
        stats = result.scheme_stats
        rows[scheme] = {
            "read_hit_blocks": stats["read_cache_hit_blocks"],
            "read_blocks": stats["read_blocks"],
            "read_mean_ms": result.metrics.read_summary().mean * 1e3,
            "removed_pct": result.removed_write_pct,
            "capacity": result.capacity_blocks,
        }
    return rows


def test_iodedup_content_cache(benchmark, scale):
    rows = benchmark(run_pair, scale)
    text = render_table(
        f"I/O-Dedup content-addressed caching ({TRACE})",
        ["scheme", "read hit blocks", "read blocks", "read mean (ms)", "removed %", "capacity"],
        [
            [name, r["read_hit_blocks"], r["read_blocks"], r["read_mean_ms"], r["removed_pct"], r["capacity"]]
            for name, r in rows.items()
        ],
        note="content addressing stretches the same DRAM across duplicate blocks",
    )
    emit("iodedup_content_cache", text)

    native, iod = rows["Native"], rows["I/O-Dedup"]
    # Hit-ratio comparison must account for the DRAM handicap: Native
    # gives ALL memory to the read cache, I/O-Dedup only half (the
    # other half holds the content metadata).  Content addressing must
    # claw back at least half of Native's hits from half the space.
    assert iod["read_hit_blocks"] >= native["read_hit_blocks"] * 0.5
    # Table I policy profile: no write elimination, no capacity saving.
    assert iod["removed_pct"] == 0.0
    assert iod["capacity"] == native["capacity"]