"""Ablation: disk queue discipline (analytic FCFS / event FCFS / C-LOOK).

The paper replays against Linux's block layer, which runs an elevator;
our default engine serves FCFS.  This ablation quantifies how much the
discipline matters to the headline comparison: C-LOOK shortens seeks
under queue build-up for *every* scheme, so the Native-vs-POD gap --
which comes from eliminated writes, not from seek ordering -- must
survive the change.  The event-driven FCFS column doubles as an
engine validation: it must match the analytic fast path exactly.
"""

import pytest
from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table
from repro.sim.replay import ReplayConfig
from repro.storage.scheduler import SchedulingPolicy

MODES = (
    ("analytic FCFS", None),
    ("event FCFS", SchedulingPolicy.FCFS),
    ("C-LOOK", SchedulingPolicy.CLOOK),
)
SCHEMES = ("Native", "Select-Dedupe")


def run_grid(scale):
    rows = []
    for scheme in SCHEMES:
        for label, policy in MODES:
            result = runner.run_single(
                "mail",
                scheme,
                scale=scale,
                replay_config=ReplayConfig(scheduler=policy),
            )
            rows.append(
                {
                    "scheme": scheme,
                    "mode": label,
                    "mean_ms": result.metrics.overall_summary().mean * 1e3,
                }
            )
    return rows


def test_ablation_scheduling(benchmark, scale):
    rows = benchmark(run_grid, scale)
    text = render_table(
        "Ablation: disk scheduling discipline (mail)",
        ["scheme", "discipline", "mean (ms)"],
        [[r["scheme"], r["mode"], r["mean_ms"]] for r in rows],
        note="the dedup advantage must survive the elevator",
    )
    emit("ablation_scheduling", text)

    by = {(r["scheme"], r["mode"]): r["mean_ms"] for r in rows}
    # Engine validation: event-driven FCFS == analytic FCFS.
    for scheme in SCHEMES:
        assert by[(scheme, "event FCFS")] == pytest.approx(
            by[(scheme, "analytic FCFS")], rel=1e-6
        )
    # The elevator helps (or at worst is neutral) for everyone.
    for scheme in SCHEMES:
        assert by[(scheme, "C-LOOK")] <= by[(scheme, "event FCFS")] * 1.02
    # ... and the dedup win survives it.
    assert by[("Select-Dedupe", "C-LOOK")] < by[("Native", "C-LOOK")] * 0.7
