"""Table I: qualitative feature comparison of the schemes."""

from conftest import emit

from repro.experiments import figures


def test_table1_features(benchmark):
    rows, text = benchmark(figures.table1_features)
    emit("table1_features", text)

    by_name = {r["scheme"]: r for r in rows}
    # The paper's Table I, row by row.
    assert by_name["POD"]["capacity_saving"] is True
    assert by_name["POD"]["performance_enhancement"] is True
    assert by_name["POD"]["small_writes_elimination"] is True
    assert by_name["POD"]["large_writes_elimination"] is True
    assert by_name["POD"]["cache_partitioning"] == "dynamic/adaptive"

    assert by_name["iDedup"]["capacity_saving"] is True
    assert by_name["iDedup"]["small_writes_elimination"] is False
    assert by_name["iDedup"]["large_writes_elimination"] is True

    assert by_name["I/O-Dedup"]["capacity_saving"] is False
    assert by_name["I/O-Dedup"]["performance_enhancement"] is True

    assert by_name["Post-Process"]["capacity_saving"] is True
    assert by_name["Post-Process"]["performance_enhancement"] is False
    assert by_name["Post-Process"]["small_writes_elimination"] is False

    # Only POD partitions the cache dynamically.
    for name, row in by_name.items():
        if name != "POD":
            assert row["cache_partitioning"] != "dynamic/adaptive"
