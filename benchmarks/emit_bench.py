"""Emit the committed replay-throughput trajectory (BENCH_replay.json).

Measures object-path vs columnar-batch replay throughput on fixed
(trace, scheme) pairs and appends one run record -- git revision,
requests/sec for both paths, speedup, and a bit-identity verdict -- to
``BENCH_replay.json`` at the repo root.  The file is committed: each
PR that touches replay performance appends a run, building a
trajectory reviewers can diff instead of re-measuring.

Method: every number is the best of ``--trials`` runs (min wall time;
single-core CI boxes jitter 20%+, and the minimum is the least noisy
location estimate of machine capability).  The columnar variant
replays a pre-interned ColumnarTrace -- conversion is load-time cost,
like parsing.  Bit-identity is asserted on the full result fingerprint
(metrics, scheme stats, utilisation), not just sampled fields.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [--trials 3] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.baselines.base import SchemeConfig
from repro.experiments.runner import SCHEME_CLASSES
from repro.sim.batch import DEFAULT_BATCH_SIZE
from repro.sim.replay import ReplayResult, replay_trace
from repro.traces.columnar import ColumnarTrace
from repro.traces.format import Trace
from repro.traces.synthetic import HOMES, WEB_VM, generate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_replay.json"

#: The fixed measurement grid: (trace name, generator spec, scale,
#: scheme).  Small enough to run in CI, large enough that per-run
#: wall times sit well above timer resolution.
GRID = [
    ("web-vm", WEB_VM, 0.2, "Native"),
    ("homes", HOMES, 1.0, "Native"),
    ("web-vm", WEB_VM, 0.2, "POD"),
]


def _git_rev() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT, text=True
        ).strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def _fingerprint(result: ReplayResult) -> str:
    return json.dumps(
        {
            "summary": result.metrics.as_dict(),
            "stats": result.scheme_stats,
            "util": result.utilisation,
            "capacity": result.capacity_blocks,
            "epochs": result.epoch_timeline,
        },
        sort_keys=True,
        default=str,
    )


def _replay(
    trace: Any, logical_blocks: int, scheme_name: str, batch_size: Optional[int]
) -> ReplayResult:
    scheme = SCHEME_CLASSES[scheme_name](
        SchemeConfig(logical_blocks=logical_blocks, memory_bytes=256 * 1024)
    )
    return replay_trace(trace, scheme, batch_size=batch_size)


def _best_rate(
    trace: Any,
    logical_blocks: int,
    requests: int,
    scheme_name: str,
    batch_size: Optional[int],
    trials: int,
) -> float:
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        _replay(trace, logical_blocks, scheme_name, batch_size)
        best = min(best, time.perf_counter() - t0)
    return requests / best


def measure(trials: int) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    for trace_name, spec, scale, scheme_name in GRID:
        trace: Trace = generate_trace(spec, scale=scale)
        ctrace = ColumnarTrace.from_trace(trace)
        n = len(trace.records)
        logical = trace.logical_blocks
        identical = _fingerprint(
            _replay(trace, logical, scheme_name, None)
        ) == _fingerprint(_replay(ctrace, logical, scheme_name, DEFAULT_BATCH_SIZE))
        obj = _best_rate(trace, logical, n, scheme_name, None, trials)
        col = _best_rate(
            ctrace, logical, n, scheme_name, DEFAULT_BATCH_SIZE, trials
        )
        entry = {
            "trace": trace_name,
            "scale": scale,
            "scheme": scheme_name,
            "requests": n,
            "batch_size": DEFAULT_BATCH_SIZE,
            "object_req_per_s": round(obj, 1),
            "columnar_req_per_s": round(col, 1),
            "speedup": round(col / obj, 2),
            "bit_identical": identical,
        }
        entries.append(entry)
        print(
            f"{trace_name:8s} {scheme_name:8s} object {obj:9.0f} req/s  "
            f"columnar {col:9.0f} req/s  speedup {col / obj:5.2f}x  "
            f"bit-identical {identical}"
        )
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print, but do not rewrite the trajectory file",
    )
    args = parser.parse_args()

    entries = measure(args.trials)
    run = {
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "trials": args.trials,
        "entries": entries,
    }
    if args.dry_run:
        print(json.dumps(run, indent=2))
        return 0

    trajectory: Dict[str, Any] = {"runs": []}
    if args.out.exists():
        trajectory = json.loads(args.out.read_text())
    trajectory.setdefault("runs", []).append(run)
    args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {args.out} ({len(trajectory['runs'])} runs)")
    if not all(e["bit_identical"] for e in entries):
        print("FAIL: columnar path diverged from the object path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
