"""Cost of the observability layer on the hot replay path.

The design contract (docs/observability.md): with tracing *off* every
instrumentation site costs one attribute read plus one integer
compare, so an un-instrumented replay and a replay with an attached
``OFF``-level recorder must run at the same speed -- the assertion
here allows <5% median slowdown.  The baseline replay includes every
telemetry hook site (sampler/tracer pointer guards), so the off-path
contract covers the timeline/span/SLO instrumentation too.  A second
(informational, printed) set of measurements shows what REQUEST/
CHUNK-level recording and armed timeline+span+SLO telemetry cost,
which is allowed to be expensive: you only pay for what you watch.

Runnable two ways::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

from __future__ import annotations

import statistics
import time

from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.jobs import JobsConfig, ScrubberSpec
from repro.obs import TraceLevel, TraceRecorder
from repro.obs.slo import SloObjective, SloPolicy
from repro.obs.timeline import TimelineConfig
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace

#: Replay repeats per configuration; medians of 5 are stable enough
#: for a 5% bound while keeping CI under a minute.
REPEATS = 5
TRACE = generate_trace(WEB_VM, scale=0.05, seed=1234)
MAX_OFF_OVERHEAD = 0.05


def _scheme() -> POD:
    return POD(
        SchemeConfig(logical_blocks=TRACE.logical_blocks, memory_bytes=256 * 1024)
    )


#: Armed-telemetry configuration for the informational measurement:
#: 1 s windows, span tracing, and a small latency SLO all at once.
TELEMETRY = ReplayConfig(
    timeline=TimelineConfig(window=1.0),
    spans=True,
    slo=SloPolicy(objectives=(
        SloObjective(name="wr", metric="latency", threshold=0.02,
                     op="write", target=0.9),
    )),
)

#: Armed leased-jobs configuration for the informational measurement:
#: two workers plus a capped background scrub pass.  The jobs-*off*
#: path has zero cost by construction (``config.jobs is None`` is the
#: only new branch on the baseline replay, covered by the <5% off-path
#: contract below); this row shows what running the subsystem costs.
JOBS = ReplayConfig(
    jobs=JobsConfig(scrub=ScrubberSpec(region_blocks=4096, interval=0.05,
                                       regions=50)),
)


def _time_replay(recorder, config: ReplayConfig = ReplayConfig()) -> float:
    scheme = _scheme()
    t0 = time.perf_counter()
    replay_trace(TRACE, scheme, config, recorder=recorder)
    return time.perf_counter() - t0


def _median_runtime(
    make_recorder, config: ReplayConfig = ReplayConfig()
) -> float:
    return statistics.median(
        _time_replay(make_recorder(), config) for _ in range(REPEATS)
    )


def measure() -> dict:
    """Median replay wall times for: no recorder, OFF recorder, and
    (informational) REQUEST / CHUNK recorders."""
    # Warm-up run: JIT-free Python still benefits from warmed caches
    # (allocator arenas, branch-predictable dict layouts).
    _time_replay(None)
    out = {
        "baseline": _median_runtime(lambda: None),
        "off": _median_runtime(lambda: TraceRecorder(level=TraceLevel.OFF)),
        "request": _median_runtime(lambda: TraceRecorder(level=TraceLevel.REQUEST)),
        "chunk": _median_runtime(lambda: TraceRecorder(level=TraceLevel.CHUNK)),
        "telemetry": _median_runtime(lambda: None, TELEMETRY),
        "jobs": _median_runtime(lambda: None, JOBS),
    }
    out["off_overhead"] = out["off"] / out["baseline"] - 1.0
    return out


def test_tracing_off_overhead_below_5pct():
    m = measure()
    assert m["off_overhead"] < MAX_OFF_OVERHEAD, (
        f"OFF-level recorder costs {m['off_overhead'] * 100:.1f}% "
        f"(baseline {m['baseline'] * 1e3:.1f} ms, off {m['off'] * 1e3:.1f} ms); "
        f"the contract is <{MAX_OFF_OVERHEAD * 100:.0f}%"
    )


def main() -> None:  # pragma: no cover - manual entry point
    m = measure()
    print(f"requests per replay : {len(TRACE)}")
    print(f"baseline (no rec)   : {m['baseline'] * 1e3:8.1f} ms")
    print(f"recorder level off  : {m['off'] * 1e3:8.1f} ms "
          f"({m['off_overhead'] * +100:+.1f}%)")
    print(f"recorder level req  : {m['request'] * 1e3:8.1f} ms "
          f"({(m['request'] / m['baseline'] - 1) * 100:+.1f}%)")
    print(f"recorder level chunk: {m['chunk'] * 1e3:8.1f} ms "
          f"({(m['chunk'] / m['baseline'] - 1) * 100:+.1f}%)")
    print(f"timeline+spans+slo  : {m['telemetry'] * 1e3:8.1f} ms "
          f"({(m['telemetry'] / m['baseline'] - 1) * 100:+.1f}%)")
    print(f"leased jobs + scrub : {m['jobs'] * 1e3:8.1f} ms "
          f"({(m['jobs'] / m['baseline'] - 1) * 100:+.1f}%)")
    status = "OK" if m["off_overhead"] < MAX_OFF_OVERHEAD else "FAIL"
    print(f"off-level contract (<{MAX_OFF_OVERHEAD * 100:.0f}%): {status}")


if __name__ == "__main__":  # pragma: no cover
    main()
