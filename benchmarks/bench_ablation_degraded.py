"""Ablation: deduplication under a degraded RAID-5 array.

Beyond the paper, but squarely in its lineage (the authors' IDO work
targets RAID reconstruction): with one member disk failed, every read
touching it fans out to all survivors and every write of its data
costs reconstruct-writes -- so removing redundant writes pays *more*
in degraded mode.  The bench checks that (a) degraded mode hurts
everyone, and (b) Select-Dedupe's relative advantage over Native does
not shrink when the array is degraded.
"""

from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table
from repro.sim.replay import ReplayConfig

SCHEMES = ("Native", "Select-Dedupe")


def run_grid(scale):
    rows = []
    for scheme in SCHEMES:
        for label, config in (
            ("healthy", ReplayConfig()),
            ("degraded", ReplayConfig(failed_disk=1)),
        ):
            result = runner.run_single("web-vm", scheme, scale=scale, replay_config=config)
            rows.append(
                {
                    "scheme": scheme,
                    "mode": label,
                    "mean_ms": result.metrics.overall_summary().mean * 1e3,
                    "read_ms": result.metrics.read_summary().mean * 1e3,
                }
            )
    return rows


def test_ablation_degraded(benchmark, scale):
    rows = benchmark(run_grid, scale)
    text = render_table(
        "Ablation: degraded RAID-5 (web-vm, disk 1 failed)",
        ["scheme", "array", "mean (ms)", "read (ms)"],
        [[r["scheme"], r["mode"], r["mean_ms"], r["read_ms"]] for r in rows],
        note="write elimination pays more when every lost-disk access fans out",
    )
    emit("ablation_degraded", text)

    by = {(r["scheme"], r["mode"]): r["mean_ms"] for r in rows}
    # degraded mode hurts everyone
    for scheme in SCHEMES:
        assert by[(scheme, "degraded")] > by[(scheme, "healthy")]
    # ... and the dedup advantage does not shrink
    healthy_ratio = by[("Select-Dedupe", "healthy")] / by[("Native", "healthy")]
    degraded_ratio = by[("Select-Dedupe", "degraded")] / by[("Native", "degraded")]
    assert degraded_ratio <= healthy_ratio * 1.1
