"""Shared infrastructure for the per-figure benches.

Every bench regenerates one table or figure of the paper, asserts its
qualitative *shape* (who wins, by roughly what factor -- see DESIGN.md
section 3) and records the rendered rows under ``benchmarks/out/`` so
EXPERIMENTS.md can be assembled from one bench run.

The replay scale is controlled with ``REPRO_BENCH_SCALE`` (default
0.25: a full 3x5 scheme/trace matrix in well under a minute).  All
replays are memoised process-wide, so the figure benches share one
matrix instead of re-simulating per bench.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Default replay scale for benches.
DEFAULT_SCALE = 0.25


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_SCALE)))


def emit(name: str, text: str) -> None:
    """Record a rendered figure both to stdout and to out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
