"""Micro-benchmarks of the hot substrate operations.

These measure the simulator's own cost (not the paper's results):
cache ops, disk service-time math, RAID mapping, categorisation and
trace generation throughput.  They exist to keep the replay engine
fast enough that the full-scale experiments stay tractable.
"""

import numpy as np

from repro.cache.arc import ARCache
from repro.cache.lru import LRUCache
from repro.core.categorize import categorize_write
from repro.sim.request import OpType
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.volume import VolumeOp, coalesce_extents
from repro.traces.synthetic import WEB_VM, generate_trace


def test_lru_put_get(benchmark):
    cache = LRUCache(64 * 1024, default_entry_size=32)

    def work():
        for i in range(1000):
            cache.put(i % 3000, i)
            cache.get((i * 7) % 3000)

    benchmark(work)


def test_arc_mixed(benchmark):
    cache = ARCache(1024)
    keys = np.random.default_rng(0).integers(0, 4000, size=1000)

    def work():
        for k in keys:
            if cache.get(int(k)) is None:
                cache.put(int(k), k)

    benchmark(work)


def test_disk_service(benchmark):
    disk = Disk(DiskParams())
    pbas = np.random.default_rng(0).integers(0, 4_000_000, size=1000)

    def work():
        for pba in pbas:
            disk.service(0.0, int(pba), 4)

    benchmark(work)


def test_raid5_map_write(benchmark):
    raid = RaidArray(RaidGeometry(RaidLevel.RAID5, 4))
    extents = [
        VolumeOp(OpType.WRITE, int(s), int(l))
        for s, l in zip(
            np.random.default_rng(0).integers(0, 100_000, size=500),
            np.random.default_rng(1).integers(1, 64, size=500),
        )
    ]

    def work():
        for op in extents:
            raid.map_write(op)

    benchmark(work)


def test_categorize_mixed(benchmark):
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(500):
        n = int(rng.integers(1, 17))
        dups = [int(p) if rng.random() < 0.5 else None for p in rng.integers(0, 500, size=n)]
        requests.append(dups)

    def work():
        for dups in requests:
            categorize_write(dups)

    benchmark(work)


def test_coalesce(benchmark):
    rng = np.random.default_rng(0)
    batches = [list(rng.integers(0, 10_000, size=64)) for _ in range(200)]

    def work():
        for pbas in batches:
            coalesce_extents(pbas)

    benchmark(work)


def test_trace_generation(benchmark):
    benchmark(generate_trace, WEB_VM, 123, 0.02)
