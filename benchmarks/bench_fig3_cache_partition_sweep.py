"""Fig. 3: read/write response time vs index-cache share.

Paper shape (Section II-B, mail trace, fixed partitions): a larger
index cache improves write latency (fewer in-disk index lookups) and
degrades read latency (smaller read cache), and vice versa -- the
motivation for iCache's dynamic repartitioning.
"""

import numpy as np
from conftest import emit

from repro.experiments import figures

FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8)


def test_fig3_cache_partition_sweep(benchmark, scale):
    rows, text = benchmark(
        figures.fig3_partition_sweep, "mail", FRACTIONS, scale
    )
    emit("fig3_cache_partition_sweep", text)

    fracs = [r["index_fraction"] for r in rows]
    writes = [r["write_mean_ms"] for r in rows]
    reads = [r["read_mean_ms"] for r in rows]

    # Write latency trends *down* as the index share grows; read
    # latency trends *up*.  Assert the trend via the endpoints and a
    # rank correlation rather than strict monotonicity (queueing noise).
    assert writes[-1] < writes[0]
    assert reads[-1] > reads[0]
    assert np.corrcoef(fracs, writes)[0, 1] < 0
    assert np.corrcoef(fracs, reads)[0, 1] > 0
