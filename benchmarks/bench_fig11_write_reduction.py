"""Fig. 11: percentage of write requests removed from the I/O path.

Paper shapes: Full-Dedupe removes the most write requests (full index,
everything redundant goes); iDedup removes the fewest (large-only);
POD and Select-Dedupe sit in between, removing a large share thanks to
the small fully redundant writes; POD removes slightly more than
Select-Dedupe because iCache grows the index during write bursts.
The paper's headline number: Select-Dedupe removes 70.7% of mail's
write requests (Full-Dedupe stands higher, iDedup far lower).
"""

from conftest import emit

from repro.experiments import figures


def test_fig11_write_reduction(benchmark, scale):
    data, text = benchmark(figures.fig11_write_reduction, scale)
    emit("fig11_write_reduction", text)

    for trace in ("web-vm", "homes", "mail"):
        vals = data[trace]
        # Ordering: Full >= POD >= Select-Dedupe >> iDedup.
        assert vals["Full-Dedupe"] >= vals["POD"] - 1.0, trace
        assert vals["POD"] >= vals["Select-Dedupe"] - 1.5, trace
        assert vals["Select-Dedupe"] > vals["iDedup"] + 10.0, trace
        # iDedup removes only a small fraction (large writes only).
        assert vals["iDedup"] < 20.0, trace

    # Aggregate: POD detects more duplicates than the fixed split.
    pod_total = sum(data[t]["POD"] for t in data)
    select_total = sum(data[t]["Select-Dedupe"] for t in data)
    assert pod_total >= select_total

    # mail: the fully-redundant-rich trace loses around half or more
    # of its write requests under Select-Dedupe (paper: 70.7%).
    assert data["mail"]["Select-Dedupe"] > 40.0
    assert data["mail"]["Full-Dedupe"] > 60.0
