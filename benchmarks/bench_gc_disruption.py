"""GC disruption: online leased refcount GC vs stop-the-world sweep.

casstor reclaims dedup space in a "cleanup time" window: foreground
I/O drains while the directory is swept.  The replicated directory
replaces that with a leased :class:`~repro.cluster.directory.gc.GcJob`
that consumes decrement intents in small paced batches.  This bench
runs the same trace, same directory, same per-intent processing cost
under both modes and compares the *worst per-window foreground p99* --
the disruption metric that matters for tail SLOs.

Shape contracts:

* the stop-the-world sweep really stalls foreground arrivals, and both
  modes reclaim directory entries;
* the online GC's worst p99 window is strictly better than the
  stop-the-world run's worst window (the acceptance criterion for the
  replicated-directory PR);
* whole-run mean response is no worse online (the paced background
  work never beats foreground I/O to the fabric).
"""

from conftest import emit

from repro.cluster import ClusterConfig, DirectoryConfig, GcSpec
from repro.experiments import runner
from repro.jobs import JobsConfig
from repro.metrics.report import render_table
from repro.obs.timeline import TimelineConfig
from repro.sim.replay import ReplayConfig

TRACES = ["web-vm", "mail"]
COPIES = 2
SEED = 11
NODES = 2
#: Same per-intent directory processing cost in both modes: online it
#: paces the background job, stop-the-world it stalls the foreground.
ENTRY_COST = 1e-3
WINDOWS = 64


def _trace_end(scale):
    volumes = runner.multi_tenant_traces(
        TRACES, copies=COPIES, scale=scale, seed=SEED
    )
    return max(rec.time for t in volumes for rec in t.records)


def _run(scale, mode, t_end):
    gc = GcSpec(
        start=0.5 * t_end,
        interval=t_end / 256,
        batch=64,
        entry_cost=ENTRY_COST,
        mode=mode,
    )
    jobs = JobsConfig() if mode == "online" else None
    return runner.run_cluster(
        TRACES,
        "POD",
        nodes=NODES,
        copies=COPIES,
        scale=scale,
        seed=SEED,
        cluster_config=ClusterConfig(
            directory=DirectoryConfig(replication=2, gc=gc)
        ),
        replay_config=ReplayConfig(
            jobs=jobs, timeline=TimelineConfig(window=t_end / WINDOWS)
        ),
    )


def _worst_window_p99(result):
    worst = 0.0
    for doc in result.timeline.window_docs():
        if doc["requests"] == 0:
            continue
        worst = max(
            worst, doc["read_latency"]["p99"], doc["write_latency"]["p99"]
        )
    return worst


def run_modes(scale):
    t_end = _trace_end(scale)
    rows = []
    for mode in ("online", "stw"):
        result = _run(scale, mode, t_end)
        overall = result.metrics.overall_summary()
        gc = result.cluster_stats["directory"]["gc"]
        rows.append(
            {
                "mode": mode,
                "mean_ms": overall.mean * 1e3,
                "p99_ms": overall.p99 * 1e3,
                "worst_window_p99_ms": _worst_window_p99(result) * 1e3,
                "reclaimed": gc["gc_reclaimed_blocks"],
                "live_skips": gc["gc_live_skips"],
                "stalled": gc.get("stw_stalled_requests", 0),
            }
        )
    return rows


def test_gc_disruption(benchmark, scale):
    rows = benchmark(run_modes, scale)
    text = render_table(
        "Refcount GC disruption: online leased job vs stop-the-world sweep",
        [
            "mode", "mean (ms)", "p99 (ms)", "worst win p99 (ms)",
            "reclaimed", "stalled req",
        ],
        [
            [
                r["mode"],
                r["mean_ms"],
                r["p99_ms"],
                r["worst_window_p99_ms"],
                r["reclaimed"],
                r["stalled"],
            ]
            for r in rows
        ],
        note="same per-intent cost; only *when* it is paid differs",
    )
    emit("gc_disruption", text)

    online, stw = rows
    assert online["mode"] == "online" and stw["mode"] == "stw"
    # both modes reclaim, and neither ever collects a live block
    assert online["reclaimed"] > 0 and stw["reclaimed"] > 0
    assert online["live_skips"] == 0 and stw["live_skips"] == 0
    # the sweep really does stall the foreground
    assert stw["stalled"] > 0
    # the acceptance criterion: online's worst window beats the
    # stop-the-world run's cleanup-time window outright
    assert online["worst_window_p99_ms"] < stw["worst_window_p99_ms"]
    # and the whole-run mean is no worse online
    assert online["mean_ms"] <= stw["mean_ms"]
