"""Scale sensitivity: does iCache matter more with larger data sets?

Section IV-C: "It is arguable that with a larger data set the iCache
will be much more effective ... making cache allocation all the more
important for and sensitive to performance gains."  This bench runs
POD against the fixed-partition Select-Dedupe at increasing generator
scales (footprint, request count and DRAM all grow proportionally) and
records the write-removal gap.
"""

from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table

SCALES = (0.05, 0.15, 0.35)
TRACE = "web-vm"


def run_sweep(_ignored=None):
    rows = []
    for s in SCALES:
        select = runner.run_single(TRACE, "Select-Dedupe", scale=s)
        pod = runner.run_single(TRACE, "POD", scale=s)
        rows.append(
            {
                "scale": s,
                "select_removed": select.removed_write_pct,
                "pod_removed": pod.removed_write_pct,
                "gap_pp": pod.removed_write_pct - select.removed_write_pct,
                "select_mean_ms": select.metrics.overall_summary().mean * 1e3,
                "pod_mean_ms": pod.metrics.overall_summary().mean * 1e3,
            }
        )
    return rows


def test_scale_sensitivity(benchmark):
    rows = benchmark(run_sweep)
    text = render_table(
        f"Scale sensitivity: POD vs fixed split ({TRACE})",
        ["scale", "Select removed %", "POD removed %", "gap (pp)", "Select mean (ms)", "POD mean (ms)"],
        [
            [r["scale"], r["select_removed"], r["pod_removed"], r["gap_pp"], r["select_mean_ms"], r["pod_mean_ms"]]
            for r in rows
        ],
        note="Section IV-C expects the adaptive cache to keep paying off as the data set grows",
    )
    emit("scale_sensitivity", text)

    # POD detects at least as many duplicates at every scale...
    assert all(r["gap_pp"] > -1.0 for r in rows)
    # ... and clearly more at the largest one.
    assert rows[-1]["gap_pp"] > 0.5
    # The adaptive cache never costs more than a few percent overall.
    assert all(r["pod_mean_ms"] <= r["select_mean_ms"] * 1.1 for r in rows)
