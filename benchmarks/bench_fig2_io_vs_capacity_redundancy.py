"""Fig. 2: I/O redundancy vs capacity redundancy.

Paper shape: I/O redundancy (same-location + different-location
duplicates) is noticeably higher than capacity redundancy alone --
the gap averages ~22 percentage points across the traces, caused by
temporally local re-writes of the same blocks.
"""

from conftest import emit

from repro.experiments import figures


def test_fig2_io_vs_capacity_redundancy(benchmark, scale):
    rows, text = benchmark(figures.fig2_io_vs_capacity, scale)
    emit("fig2_io_vs_capacity_redundancy", text)

    gaps = []
    for row in rows:
        assert row["io_redundancy_pct"] > row["capacity_redundancy_pct"], row["trace"]
        gaps.append(row["same_location_pct"])

    # The average same-location share is substantial (paper: 21.9pp).
    mean_gap = sum(gaps) / len(gaps)
    assert 8.0 <= mean_gap <= 35.0

    # mail carries the most I/O redundancy overall.
    by_name = {r["trace"]: r for r in rows}
    assert by_name["mail"]["io_redundancy_pct"] == max(
        r["io_redundancy_pct"] for r in rows
    )
    # every trace shows moderate-to-high redundancy (30%+ for mail,
    # 20%+ elsewhere)
    assert by_name["mail"]["io_redundancy_pct"] > 40.0
    assert all(r["io_redundancy_pct"] > 20.0 for r in rows)
