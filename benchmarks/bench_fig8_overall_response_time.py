"""Fig. 8: overall response time normalized to Native, 4-disk RAID-5.

Paper shapes:

* Select-Dedupe improves on Native on every trace (paper: 53.9% /
  21.2% / 88.6% for web-vm / homes / mail), the gain being largest on
  mail and smallest on homes;
* iDedup improves only slightly (capacity-oriented dedup does not buy
  performance);
* Full-Dedupe *degrades* homes (read amplification + on-disk index
  lookups beat its queue relief on scattered-partial redundancy).
"""

from conftest import emit

from repro.experiments import figures


def test_fig8_overall_response_time(benchmark, scale):
    data, text = benchmark(figures.fig8_overall_response, scale)
    emit("fig8_overall_response_time", text)

    for trace in ("web-vm", "homes", "mail"):
        vals = data[trace]
        # Select-Dedupe beats Native everywhere.
        assert vals["Select-Dedupe"] < 90.0, trace
        # ... and beats iDedup everywhere (paper: by 58.8% on average).
        assert vals["Select-Dedupe"] < vals["iDedup"], trace
        # iDedup is within a whisker of Native either way.
        assert 80.0 < vals["iDedup"] < 115.0, trace

    # Largest gain on mail, smallest on homes... mail must halve.
    assert data["mail"]["Select-Dedupe"] < 55.0
    # Full-Dedupe degrades homes but helps mail.
    assert data["homes"]["Full-Dedupe"] > 95.0
    assert data["mail"]["Full-Dedupe"] < 70.0
    # Select-Dedupe always at least matches Full-Dedupe.
    for trace in ("web-vm", "homes", "mail"):
        assert data[trace]["Select-Dedupe"] <= data[trace]["Full-Dedupe"] * 1.02, trace
