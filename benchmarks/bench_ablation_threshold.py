"""Ablation: the Select-Dedupe category-3 threshold.

The paper fixes the threshold at 3 chunks without a sweep; this
ablation shows why a small-but-not-one value is the right design
point:

* threshold 1 deduplicates isolated scattered chunks -- maximal write
  reduction but it fragments reads (category 2 effectively vanishes);
* large thresholds approach iDedup's behaviour and lose the
  partially-sequential savings.
"""

from conftest import emit

from repro.experiments import runner
from repro.metrics.report import render_table

THRESHOLDS = (1, 2, 3, 6, 12)


def run_sweep(scale):
    rows = []
    for threshold in THRESHOLDS:
        result = runner.run_single(
            "homes", "Select-Dedupe", scale=scale, select_threshold=threshold
        )
        rows.append(
            {
                "threshold": threshold,
                "removed_pct": result.removed_write_pct,
                "read_mean_ms": result.metrics.read_summary().mean * 1e3,
                "write_mean_ms": result.metrics.write_summary().mean * 1e3,
                "read_extents": result.scheme_stats["read_extents"],
            }
        )
    return rows


def test_ablation_select_threshold(benchmark, scale):
    rows = benchmark(run_sweep, scale)
    text = render_table(
        "Ablation: Select-Dedupe threshold (homes)",
        ["threshold", "removed %", "read mean (ms)", "write mean (ms)", "read extents"],
        [
            [r["threshold"], r["removed_pct"], r["read_mean_ms"], r["write_mean_ms"], r["read_extents"]]
            for r in rows
        ],
        note="threshold 1 dedupes scattered chunks and fragments reads",
    )
    emit("ablation_threshold", text)

    by_threshold = {r["threshold"]: r for r in rows}
    # Write reduction decreases monotonically with the threshold.
    removed = [r["removed_pct"] for r in rows]
    assert all(a >= b - 0.5 for a, b in zip(removed, removed[1:]))
    # threshold 1 fragments reads: strictly more read extents issued
    # than the paper's threshold 3.
    assert by_threshold[1]["read_extents"] > by_threshold[3]["read_extents"]
    # ... and its read latency is no better.
    assert by_threshold[1]["read_mean_ms"] >= by_threshold[3]["read_mean_ms"] * 0.95
