"""End-to-end replay throughput per scheme: object vs columnar.

Measures how many trace requests per second the simulator sustains
for each scheme -- the practical limit on full-scale reproduction
runs.  Dedup schemes are usually *faster* to simulate than Native
because eliminated writes issue no disk ops.

Each scheme is benchmarked twice: through the classic object event
loop (``batch_size=None``) and through the columnar batch driver
(``repro.sim.batch``).  The columnar variant replays a pre-interned
:class:`~repro.traces.columnar.ColumnarTrace` -- column conversion is
a load-time cost, like parsing, and the committed BENCH_replay.json
trajectory (see emit_bench.py) reports both paths the same way.  The
two paths are bit-identical (tests/sim/test_batch_replay.py); only the
wall clock differs.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.experiments.runner import SCHEME_CLASSES
from repro.sim.batch import DEFAULT_BATCH_SIZE
from repro.sim.replay import replay_trace
from repro.traces.columnar import ColumnarTrace
from repro.traces.synthetic import WEB_VM, generate_trace

TRACE = generate_trace(WEB_VM, scale=0.03)
CTRACE = ColumnarTrace.from_trace(TRACE)


def _scheme(scheme_name):
    return SCHEME_CLASSES[scheme_name](
        SchemeConfig(logical_blocks=TRACE.logical_blocks, memory_bytes=256 * 1024)
    )


@pytest.mark.parametrize("scheme_name", list(SCHEME_CLASSES))
def test_replay_throughput(benchmark, scheme_name):
    def run():
        return replay_trace(TRACE, _scheme(scheme_name))

    result = benchmark(run)
    assert result.metrics.requests > 0


@pytest.mark.parametrize("scheme_name", list(SCHEME_CLASSES))
def test_replay_throughput_columnar(benchmark, scheme_name):
    def run():
        return replay_trace(
            CTRACE, _scheme(scheme_name), batch_size=DEFAULT_BATCH_SIZE
        )

    result = benchmark(run)
    assert result.metrics.requests > 0
