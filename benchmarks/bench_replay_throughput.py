"""End-to-end replay throughput per scheme.

Measures how many trace requests per second the simulator sustains
for each scheme -- the practical limit on full-scale reproduction
runs.  Dedup schemes are usually *faster* to simulate than Native
because eliminated writes issue no disk ops.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.experiments.runner import SCHEME_CLASSES
from repro.sim.replay import replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace

TRACE = generate_trace(WEB_VM, scale=0.03)


@pytest.mark.parametrize("scheme_name", list(SCHEME_CLASSES))
def test_replay_throughput(benchmark, scheme_name):
    def run():
        scheme = SCHEME_CLASSES[scheme_name](
            SchemeConfig(logical_blocks=TRACE.logical_blocks, memory_bytes=256 * 1024)
        )
        return replay_trace(TRACE, scheme)

    result = benchmark(run)
    assert result.metrics.requests > 0
