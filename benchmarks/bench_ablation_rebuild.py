"""Ablation: capacity-aware RAID-5 rebuild, with and without dedup.

A capacity-aware rebuild (skip rows holding no live data -- what a
TRIM-aware or FS-integrated rebuild does) finishes faster the less
of the array is live.  Deduplication reduces the *live block count*
(Fig. 10), but with POD's in-place home layout the freed blocks stay
scattered inside otherwise-live rows, so at row granularity the
recovery win is limited -- an honest negative result this bench
records alongside the mechanism's correctness.  (A log-structured
physical layout would compact the freed space and convert Fig. 10's
savings into proportionally faster rebuilds.)
"""

import math

from conftest import emit

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.experiments.runner import build_scheme, get_trace
from repro.metrics.report import render_table
from repro.sim.engine import Simulator
from repro.sim.replay import ReplayConfig, _size_disks, replay_trace
from repro.storage.disk import Disk
from repro.storage.raid import RaidArray
from repro.storage.rebuild import RebuildController
from repro.traces.synthetic import paper_traces

TRACE = "web-vm"
BATCH_ROWS = 8


def offline_rebuild_time(raid, params, controller) -> float:
    """Rebuild with no foreground traffic; returns the makespan."""
    disks = [Disk(params, disk_id=i) for i in range(raid.geometry.ndisks)]
    sim = Simulator(disks, raid)
    done = 0.0
    while not controller.done:
        batch = controller.next_batch(BATCH_ROWS)
        if batch:
            done = sim.service_disk_ops(done, batch)
    return done


def run_experiment(scale):
    spec = paper_traces()[TRACE]
    trace = get_trace(spec, scale=scale)
    config = ReplayConfig()
    geometry = config.geometry()

    rows = []
    for scheme_name in ("Native", "POD"):
        scheme = build_scheme(scheme_name, spec, scale=scale)
        replay_trace(trace, scheme, config)
        params = _size_disks(scheme.regions.total_blocks, config)
        # rebuild only the rows the volume actually occupies
        row_blocks = geometry.data_disks * BLOCKS_PER_STRIPE_UNIT
        disk_rows = math.ceil(scheme.regions.total_blocks / row_blocks)
        raid = RaidArray(geometry)
        live = scheme.map_table.live_pbas(scheme.written_lbas)

        oblivious = RebuildController(raid, 1, disk_rows)
        aware = RebuildController(raid, 1, disk_rows, live_pbas=live)
        rows.append(
            {
                "scheme": scheme_name,
                "live_blocks": len(live),
                "t_oblivious": offline_rebuild_time(raid, params, oblivious),
                "t_aware": offline_rebuild_time(raid, params, aware),
                "rows_skipped": aware.rows_skipped,
            }
        )
    return rows


def test_ablation_rebuild(benchmark, scale):
    rows = benchmark(run_experiment, scale)
    text = render_table(
        f"Ablation: capacity-aware RAID-5 rebuild ({TRACE})",
        ["after scheme", "live blocks", "rebuild all (s)", "rebuild live (s)", "rows skipped"],
        [
            [r["scheme"], r["live_blocks"], r["t_oblivious"], r["t_aware"], r["rows_skipped"]]
            for r in rows
        ],
        note="in-place layout: dedup frees blocks inside live rows, so "
        "row-granular recovery gains little (see module docstring)",
    )
    emit("ablation_rebuild", text)

    native, pod = rows
    # The oblivious rebuild does not care about content.
    assert pod["t_oblivious"] == native["t_oblivious"]
    # Dedup holds fewer live blocks (Fig. 10's saving)...
    assert pod["live_blocks"] < native["live_blocks"]
    # ... and capacity awareness never slows a rebuild down.
    for r in rows:
        assert r["t_aware"] <= r["t_oblivious"]
    # The honest row-granularity result: POD's rebuild is at parity
    # with Native's (freed blocks hide inside live rows), never worse
    # by more than scheduling noise.
    assert pod["t_aware"] <= native["t_aware"] * 1.05
