#!/usr/bin/env python
"""Full-scale reproduction run.

Replays the complete calibrated traces (scale 1.0: the paper's request
counts -- 154k/65k/328k measured requests plus equal warm-up) through
every scheme, in parallel across CPU cores, then regenerates
EXPERIMENTS.md and the CSV export at full scale.

Expect tens of minutes on a laptop-class machine; pass a smaller scale
to trade fidelity for time::

    python scripts/run_full_scale.py [scale] [out_dir]
"""

import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.export import export_all
from repro.experiments.parallel import run_matrix_parallel
from repro.experiments.report_md import build_report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("full_scale_out")

    t0 = time.time()
    print(f"running the 3x5 matrix at scale {scale} on all cores ...")
    matrix = run_matrix_parallel(scale=scale)
    print(f"matrix done in {time.time() - t0:.0f}s")

    for (trace, scheme), result in sorted(matrix.items()):
        s = result.summary()
        print(
            f"  {trace:7s} {scheme:14s} mean={s['mean_response'] * 1e3:8.2f} ms "
            f"removed={result.removed_write_pct:5.1f}% capacity={result.capacity_blocks}"
        )

    print("\nregenerating figures, EXPERIMENTS.md and CSV export ...")
    report = build_report(scale)
    (out_dir / "EXPERIMENTS.md").parent.mkdir(parents=True, exist_ok=True)
    (out_dir / "EXPERIMENTS.md").write_text(report + "\n")
    export_all(out_dir / "figures", scale)

    _, fig8 = figures.fig8_overall_response(scale)
    _, fig11 = figures.fig11_write_reduction(scale)
    print()
    print(fig8)
    print()
    print(fig11)
    print(f"\nall outputs under {out_dir}/ ({time.time() - t0:.0f}s total)")


if __name__ == "__main__":
    main()
