"""Cluster-layer leased jobs: rebuild, migration and per-node scrub.

Mirrors the CI jobs smoke: a two-node cluster where node 1 loses a
member disk while one of its surviving spindles sits in a 40x
fail-slow window.  With jobs armed the rebuild runs as a leased job,
the window expires its lease mid-step, and the recovery sweep +
epoch-fenced re-claim carry it to completion with a clean step ledger
and clean per-node content oracles.
"""

import dataclasses

from repro.cluster.rebalance import RebalanceSpec
from repro.cluster.replay import ClusterConfig
from repro.experiments.runner import run_cluster
from repro.faults import FailSlowSpec, NodeFailureSpec
from repro.jobs import JobsConfig, LeasePolicy, ScrubberSpec
from repro.sim.replay import ReplayConfig

JOBS = JobsConfig(
    workers=2,
    lease=LeasePolicy(
        duration=0.3, poll_interval=0.02, sweep_interval=0.1,
        max_retries=4, backoff=0.02,
    ),
)


def _run(cluster_config, jobs=JOBS):
    return run_cluster(
        ["web-vm", "mail"],
        "select-dedupe",
        nodes=2,
        copies=2,
        scale=0.02,
        seed=1,
        replay_config=ReplayConfig(jobs=jobs),
        cluster_config=cluster_config,
    )


class TestClusterStaleLeaseRecovery:
    def test_fail_slow_window_forces_epoch_fenced_reclaim(self):
        result = _run(
            ClusterConfig(
                node_failure=NodeFailureSpec(
                    node=1, time=8.0, rows_per_batch=64, interval=0.02
                ),
                fail_slow=(
                    FailSlowSpec(disk=4, start=8.0, end=12.0, multiplier=40.0),
                ),
                verify_content=True,
            )
        )
        jobs = result.jobs_stats
        assert jobs is not None
        counters = jobs["counters"]
        assert counters["stale_leases_detected"] > 0
        assert counters["stale_lease_reclaims"] == counters["stale_leases_detected"]

        rebuilds = [j for j in jobs["jobs"] if j["kind"] == "rebuild"]
        assert len(rebuilds) == 1
        assert rebuilds[0]["state"] == "done"
        assert rebuilds[0]["epoch"] > 1
        # step ledger clean: no row batch lost or double-applied
        assert jobs["oracle"]["violations"] == []
        # node failure completed through the leased path
        assert result.cluster_stats["node_failure"]["done"]
        # per-node content oracles saw nothing wrong
        for node_oracle in result.cluster_stats["oracle"]:
            assert node_oracle["mismatches"] == 0

    def test_fail_slow_disk_out_of_range_rejected(self):
        import pytest

        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            _run(
                ClusterConfig(
                    fail_slow=(
                        FailSlowSpec(disk=99, start=1.0, end=2.0, multiplier=4.0),
                    )
                )
            )


class TestClusterJobsRoster:
    def test_rebalance_and_scrub_run_as_leased_jobs(self):
        jobs = dataclasses.replace(
            JOBS,
            scrub=ScrubberSpec(start=0.5, region_blocks=4096, interval=0.02,
                               regions=20),
        )
        result = _run(
            ClusterConfig(
                rebalance=RebalanceSpec(time=6.0, add_nodes=1,
                                        entries_per_batch=256, interval=0.01),
                verify_content=True,
            ),
            jobs=jobs,
        )
        roster = result.jobs_stats["jobs"]
        kinds = sorted(j["kind"] for j in roster)
        # one migration + one scrubber per original node
        assert kinds == ["migrate", "scrub", "scrub"]
        assert all(j["state"] == "done" for j in roster)
        assert result.jobs_stats["oracle"]["violations"] == []
        migrated = [j for j in roster if j["kind"] == "migrate"][0]
        assert migrated["detail"]["entries_migrated"] > 0

    def test_cluster_jobs_off_unchanged(self):
        baseline = _run(ClusterConfig(verify_content=True), jobs=None)
        assert baseline.jobs_stats is None
        assert baseline.cluster_stats is not None
