"""Cluster replay integration: golden one-node bit-identity, multi-node
determinism, accounting conservation, and live-rebalance safety.

The three load-bearing contracts of the cluster subsystem:

1. **One-node identity.**  ``replay_cluster`` with a single node and no
   cluster features is the same replay as ``replay_traces`` -- summary,
   scheme stats and the full run report must match byte for byte.
2. **Determinism.**  The same seed and configuration reproduce a
   multi-node run report byte-for-byte (the cluster layer introduces
   no hidden entropy: routing, the fabric and migration pacing are all
   pure functions of their inputs).
3. **Conservation.**  Per-node breakdowns sum to the cluster totals,
   and live rebalancing never breaks POD invariants or serves a wrong
   read (content oracle per node).
"""

import json

import pytest

from repro.cluster import ClusterConfig, NetworkModel, RebalanceSpec
from repro.errors import ConfigError
from repro.experiments import runner
from repro.obs.report import build_run_report
from repro.sim.replay import ReplayConfig

SCALE = 0.05
SEED = 7


def _report_bytes(result, **kwargs):
    """Canonical byte serialisation of a run report (fixed clock)."""
    report = build_run_report(
        result, seed=SEED, scale=SCALE, clock=lambda: 0.0, **kwargs
    )
    return json.dumps(report, sort_keys=True).encode()


class TestGoldenOneNode:
    """N=1 cluster replay is *the* single-node replay, bit for bit."""

    def test_summary_and_stats_identical_to_run_multi(self):
        multi = runner.run_multi(
            ["web-vm"], "POD", copies=2, scale=SCALE, seed=SEED
        )
        one = runner.run_cluster(
            ["web-vm"], "POD", nodes=1, copies=2, scale=SCALE, seed=SEED
        )
        # exact == on floats is deliberate: bit-identity, not closeness.
        assert one.summary() == multi.summary()
        assert one.scheme_stats == multi.scheme_stats
        assert one.capacity_blocks == multi.capacity_blocks
        assert one.utilisation == multi.utilisation
        assert one.epoch_timeline == multi.epoch_timeline
        # no cluster decoration on the plain one-node path
        assert one.nodes == []
        assert one.cluster_stats is None

    def test_report_byte_identical_to_run_multi(self):
        multi = runner.run_multi(
            ["web-vm", "mail"], "POD", copies=2, scale=SCALE, seed=SEED
        )
        one = runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=1, copies=2, scale=SCALE, seed=SEED
        )
        assert _report_bytes(one) == _report_bytes(multi)


class TestMultiNodeDeterminism:
    def test_same_seed_reproduces_report_bytes(self):
        a = runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=2, copies=2, scale=SCALE, seed=SEED
        )
        b = runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=2, copies=2, scale=SCALE, seed=SEED
        )
        assert _report_bytes(a) == _report_bytes(b)

    def test_network_latency_is_actually_charged(self):
        """A slower fabric must not speed anything up; remote lookups
        must pay for it in mean response time."""
        fast = runner.run_cluster(
            ["web-vm"], "POD", nodes=2, copies=2, scale=SCALE, seed=SEED,
            cluster_config=ClusterConfig(net=NetworkModel(latency=1e-6)),
        )
        slow = runner.run_cluster(
            ["web-vm"], "POD", nodes=2, copies=2, scale=SCALE, seed=SEED,
            cluster_config=ClusterConfig(net=NetworkModel(latency=5e-3)),
        )
        f, s = fast.summary(), slow.summary()
        assert s["mean_response"] > f["mean_response"]
        assert s["cluster"]["remote_lookups"] == f["cluster"]["remote_lookups"]


class TestAccountingConservation:
    @pytest.fixture(scope="class")
    def two_node(self):
        return runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=2, copies=2, scale=SCALE, seed=SEED
        )

    def test_node_sections_present(self, two_node):
        assert len(two_node.nodes) == 2
        assert [n["node_id"] for n in two_node.nodes] == [0, 1]
        assert two_node.cluster_stats is not None
        assert two_node.cluster_stats["nodes"] == 2

    def test_per_node_sums_equal_cluster_totals(self, two_node):
        cluster = two_node.cluster_stats
        for key in ("remote_lookups", "remote_duplicate_blocks", "rebalance_misses"):
            assert sum(n[key] for n in two_node.nodes) == cluster[key]
        assert (
            sum(n["capacity_blocks"] for n in two_node.nodes)
            == two_node.capacity_blocks
        )
        # node counters are whole-run; the headline excludes warm-up
        assert (
            sum(n["writes_total"] for n in two_node.nodes) >= two_node.writes_total
        )

    def test_every_request_served_exactly_once(self, two_node):
        volumes = runner.multi_tenant_traces(
            ["web-vm", "mail"], copies=2, scale=SCALE, seed=SEED
        )
        total = sum(len(t.records) for t in volumes)
        assert sum(n["requests_served"] for n in two_node.nodes) == total

    def test_cross_node_duplicates_detected(self, two_node):
        """Tenant clones land on different nodes (round-robin), so the
        shared golden image shows up as remote duplicates."""
        cluster = two_node.cluster_stats
        assert cluster["remote_lookups"] > 0
        assert cluster["remote_duplicate_blocks"] > 0
        assert cluster["fabric"]["rpcs"] > 0
        assert cluster["fabric"]["bytes_moved"] > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            runner.run_cluster(
                ["web-vm"], "POD", nodes=0, copies=2, scale=SCALE, seed=SEED
            )
        with pytest.raises(ConfigError):
            runner.run_cluster(
                ["web-vm"], "POD", nodes=5, copies=2, scale=SCALE, seed=SEED
            )


class TestLiveRebalance:
    @pytest.fixture(scope="class")
    def rebalanced(self):
        volumes = runner.multi_tenant_traces(
            ["web-vm", "mail"], copies=2, scale=SCALE, seed=SEED
        )
        t_end = max(rec.time for t in volumes for rec in t.records)
        return runner.run_cluster(
            ["web-vm", "mail"],
            "POD",
            nodes=2,
            copies=2,
            scale=SCALE,
            seed=SEED,
            cluster_config=ClusterConfig(
                rebalance=RebalanceSpec(
                    time=0.25 * t_end, add_nodes=1, entries_per_batch=64
                ),
                verify_content=True,
            ),
            replay_config=ReplayConfig(check_invariants=True, sanitize_every=500),
        )

    def test_migration_ran_and_drained(self, rebalanced):
        rb = rebalanced.cluster_stats["rebalance"]
        assert rb["add_nodes"] == 1
        assert rb["entries_total"] > 0
        assert rb["entries_migrated"] == rb["entries_total"]
        assert rb["entries_remaining"] == 0
        # ring gained the directory-only member
        assert rebalanced.cluster_stats["ring_members"] == [0, 1, 2]
        assert "2" in rebalanced.cluster_stats["shard_entries"]

    def test_invariants_clean_during_rebalance(self, rebalanced):
        assert rebalanced.sanitizer is not None
        assert rebalanced.sanitizer.summary()["violations_found"] == 0

    def test_no_wrong_reads(self, rebalanced):
        oracle = rebalanced.cluster_stats["oracle"]
        assert [o["node"] for o in oracle] == [0, 1]
        for o in oracle:
            assert o["mismatches"] == 0
            assert o["reads_checked"] > 0

    def test_rebalance_misses_are_the_only_dedup_cost(self, rebalanced):
        """Misses during the in-flight window are counted, never fatal."""
        cluster = rebalanced.cluster_stats
        assert cluster["rebalance_misses"] >= 0
        assert sum(
            n["rebalance_misses"] for n in rebalanced.nodes
        ) == cluster["rebalance_misses"]
