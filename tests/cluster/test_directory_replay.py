"""Replicated-directory replay integration.

The contracts this file pins:

1. **Golden bit-identity.**  With ``directory=None`` (and at R=1, GC
   off) the cluster replay must stay byte-identical to the
   pre-directory code path -- the default report's sha256 is committed
   in ``golden_cluster_report.sha256`` and checked here.
2. **Armed R=1 equivalence.**  Arming the directory at R=1 changes the
   bookkeeping machinery but not a single replay decision: metrics and
   shard contents match the legacy path exactly.
3. **Kill under quorum.**  Killing a metadata node mid-run degrades
   nothing user-visible: the run completes, divergence is healed by
   read repair, online GC reclaims dead entries, and the content
   oracle plus the job step ledger stay clean.
4. **Stop-the-world baseline.**  ``mode="stw"`` really stalls
   foreground arrivals -- the disruption the online GC exists to avoid.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterConfig,
    Consistency,
    DirectoryConfig,
    GcSpec,
    KillSpec,
    RebalanceSpec,
)
from repro.errors import ClusterError, ConfigError
from repro.experiments import runner
from repro.jobs import JobsConfig
from repro.obs.report import build_run_report
from repro.sim.replay import ReplayConfig

SCALE = 0.05
SEED = 7
GOLDEN = Path(__file__).with_name("golden_cluster_report.sha256")


def _report_sha(result):
    report = build_run_report(result, seed=SEED, scale=SCALE, clock=lambda: 0.0)
    return hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()


def _run(nodes=2, cluster_config=None, replay_config=None, scale=SCALE):
    return runner.run_cluster(
        ["web-vm", "mail"],
        "POD",
        nodes=nodes,
        copies=2,
        scale=scale,
        seed=SEED,
        cluster_config=cluster_config,
        replay_config=replay_config,
    )


def _trace_end(scale=SCALE):
    volumes = runner.multi_tenant_traces(
        ["web-vm", "mail"], copies=2, scale=scale, seed=SEED
    )
    return max(rec.time for t in volumes for rec in t.records)


class TestGoldenBitIdentity:
    def test_default_report_matches_committed_sha(self):
        """The R=1/GC-off default replay is pinned byte for byte.  If
        this fails, the directory feature gate leaked into the legacy
        path -- do NOT regenerate the golden without understanding why.
        """
        assert _report_sha(_run()) == GOLDEN.read_text().strip()


class TestArmedR1Equivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        legacy = _run()
        armed = _run(
            cluster_config=ClusterConfig(
                directory=DirectoryConfig(replication=1)
            )
        )
        return legacy, armed

    def test_metrics_identical(self, pair):
        legacy, armed = pair
        ls, as_ = legacy.summary(), armed.summary()
        for key in ("mean_response", "p99_response", "makespan", "requests"):
            assert ls[key] == as_[key]
        for key in ("remote_lookups", "remote_duplicate_blocks"):
            assert ls["cluster"][key] == as_["cluster"][key]
        assert (
            legacy.cluster_stats["shard_entries"]
            == armed.cluster_stats["shard_entries"]
        )

    def test_node_sections_identical_modulo_directory(self, pair):
        legacy, armed = pair
        for ln, an in zip(legacy.nodes, armed.nodes):
            an = dict(an)
            assert an.pop("directory", None) is not None
            assert ln == an

    def test_directory_section_present_only_when_armed(self, pair):
        legacy, armed = pair
        assert "directory" not in legacy.cluster_stats
        d = armed.cluster_stats["directory"]
        assert d["replication"] == 1
        assert d["read_repairs"] == 0  # single copy: nothing to diverge


class TestKillUnderQuorum:
    @pytest.fixture(scope="class")
    def killed(self):
        t_end = _trace_end()
        return _run(
            nodes=3,
            cluster_config=ClusterConfig(
                directory=DirectoryConfig(
                    replication=3,
                    consistency=Consistency.QUORUM,
                    gc=GcSpec(start=0.1 * t_end, interval=0.02, batch=64),
                    kill=KillSpec(node=1, time=0.25 * t_end),
                ),
                verify_content=True,
            ),
            replay_config=ReplayConfig(jobs=JobsConfig()),
        )

    def test_run_completes_and_heals_by_read_repair(self, killed):
        d = killed.cluster_stats["directory"]
        assert d["down_members"] == [1] and d["kills"] == 1
        assert d["read_repairs"] > 0
        assert d["repair_pushes"] >= d["read_repairs"]
        assert d["unavailable_lookups"] == 0  # quorum survives one kill
        assert killed.nodes[1]["directory"]["down"] is True
        # the killed node's data plane kept serving I/O
        assert killed.nodes[1]["requests_served"] > 0

    def test_gc_reclaimed_without_collecting_live_blocks(self, killed):
        gc = killed.cluster_stats["directory"]["gc"]
        assert gc["gc_reclaimed_blocks"] > 0
        assert gc["gc_live_skips"] == 0
        assert gc["decrements_applied"] > 0
        assert gc["journal_records"] > 0
        assert gc["gc_rounds"] > 0

    def test_job_ledger_and_oracle_clean(self, killed):
        jobs = killed.jobs_stats
        assert jobs["oracle"]["violations"] == []
        roster = [j for j in jobs["jobs"] if j["kind"] == "gc"]
        assert len(roster) == 1 and roster[0]["state"] == "done"
        detail = roster[0]["detail"]
        assert detail["rounds_done"] == detail["rounds_total"]
        assert roster[0]["steps_committed"] == detail["rounds_total"]
        for o in killed.cluster_stats["oracle"]:
            assert o["mismatches"] == 0 and o["reads_checked"] > 0

    def test_remote_references_upgraded(self, killed):
        d = killed.cluster_stats["directory"]
        assert d["remote_refs_registered"] > 0
        assert d["registrations"] > 0 and d["lookups"] > d["registrations"]

    def test_deterministic(self, killed):
        t_end = _trace_end()
        again = _run(
            nodes=3,
            cluster_config=ClusterConfig(
                directory=DirectoryConfig(
                    replication=3,
                    consistency=Consistency.QUORUM,
                    gc=GcSpec(start=0.1 * t_end, interval=0.02, batch=64),
                    kill=KillSpec(node=1, time=0.25 * t_end),
                ),
                verify_content=True,
            ),
            replay_config=ReplayConfig(jobs=JobsConfig()),
        )
        assert again.cluster_stats["directory"] == killed.cluster_stats[
            "directory"
        ]
        assert again.summary() == killed.summary()


class TestStopTheWorldBaseline:
    def test_sweep_stalls_foreground_arrivals(self):
        t_end = _trace_end(scale=0.02)
        result = _run(
            scale=0.02,
            cluster_config=ClusterConfig(
                directory=DirectoryConfig(
                    replication=2,
                    gc=GcSpec(
                        start=0.5 * t_end, entry_cost=2e-3, mode="stw"
                    ),
                )
            ),
        )
        gc = result.cluster_stats["directory"]["gc"]
        assert gc["mode"] == "stw"
        assert gc["stw_processed_intents"] > 0
        assert gc["stw_stalled_requests"] > 0


class TestValidation:
    def test_directory_plus_rebalance_rejected(self):
        with pytest.raises(ConfigError):
            _run(
                cluster_config=ClusterConfig(
                    directory=DirectoryConfig(replication=2),
                    rebalance=RebalanceSpec(time=1.0, add_nodes=1),
                )
            )

    def test_replication_exceeding_cluster_rejected(self):
        with pytest.raises(ClusterError):
            _run(
                nodes=2,
                cluster_config=ClusterConfig(
                    directory=DirectoryConfig(replication=3)
                ),
            )

    def test_kill_of_unknown_node_rejected(self):
        with pytest.raises(ClusterError):
            _run(
                nodes=2,
                cluster_config=ClusterConfig(
                    directory=DirectoryConfig(
                        replication=2, kill=KillSpec(node=5, time=1.0)
                    )
                ),
            )

    def test_online_gc_without_jobs_rejected(self):
        with pytest.raises(ConfigError):
            _run(
                cluster_config=ClusterConfig(
                    directory=DirectoryConfig(replication=2, gc=GcSpec())
                )
            )
