"""Unit tests for the network cost model and per-link fabric."""

import pytest

from repro.cluster.netmodel import NetworkFabric, NetworkModel
from repro.errors import ClusterError


class TestNetworkModel:
    def test_defaults_valid(self):
        m = NetworkModel()
        assert m.latency > 0 and m.bandwidth > 0

    def test_validation(self):
        with pytest.raises(ClusterError):
            NetworkModel(latency=-1e-6)
        with pytest.raises(ClusterError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ClusterError):
            NetworkModel(lookup_bytes=0)
        with pytest.raises(ClusterError):
            NetworkModel(entry_bytes=-1)

    def test_frozen(self):
        m = NetworkModel()
        with pytest.raises(Exception):
            m.latency = 1.0  # type: ignore[misc]


class TestFabric:
    def test_loopback_is_free(self):
        """src == dst completes at ``now`` and records nothing -- this
        is what pins the one-node cluster to the single-node replay."""
        f = NetworkFabric(NetworkModel())
        assert f.round_trip(1.5, 0, 0, 10**9) == 1.5
        assert f.rpcs == 0 and f.bytes_moved == 0
        assert f.summary()["links_used"] == 0

    def test_single_rpc_cost(self):
        m = NetworkModel(latency=1e-4, bandwidth=1e9)
        f = NetworkFabric(m)
        done = f.round_trip(0.0, 0, 1, 1000)
        assert done == pytest.approx(1000 / 1e9 + 2 * 1e-4)
        assert f.rpcs == 1
        assert f.bytes_moved == 1000
        assert f.last_queue_wait == 0.0

    def test_same_link_queues(self):
        m = NetworkModel(latency=0.0, bandwidth=1000.0)  # 1 byte / ms
        f = NetworkFabric(m)
        first = f.round_trip(0.0, 0, 1, 500)  # busy until 0.5
        second = f.round_trip(0.0, 0, 1, 500)  # queued behind the first
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)
        assert f.last_queue_wait == pytest.approx(0.5)
        assert f.queue_wait_total == pytest.approx(0.5)
        assert f.busy_time_total == pytest.approx(1.0)

    def test_directed_links_independent(self):
        """Full duplex: a->b traffic does not delay b->a."""
        m = NetworkModel(latency=0.0, bandwidth=1000.0)
        f = NetworkFabric(m)
        f.round_trip(0.0, 0, 1, 500)
        back = f.round_trip(0.0, 1, 0, 500)
        assert back == pytest.approx(0.5)
        assert f.queue_wait_total == 0.0
        assert f.summary()["links_used"] == 2

    def test_distinct_links_independent(self):
        m = NetworkModel(latency=0.0, bandwidth=1000.0)
        f = NetworkFabric(m)
        f.round_trip(0.0, 0, 1, 500)
        other = f.round_trip(0.0, 0, 2, 500)
        assert other == pytest.approx(0.5)

    def test_rejects_empty_payload(self):
        f = NetworkFabric(NetworkModel())
        with pytest.raises(ClusterError):
            f.round_trip(0.0, 0, 1, 0)

    def test_summary_keys(self):
        f = NetworkFabric(NetworkModel())
        f.round_trip(0.0, 0, 1, 64)
        s = f.summary()
        assert set(s) == {
            "rpcs",
            "bytes_moved",
            "queue_wait_total",
            "busy_time_total",
            "links_used",
        }
        assert s["rpcs"] == 1 and s["bytes_moved"] == 64
