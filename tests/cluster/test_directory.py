"""Unit tests for the replicated fingerprint directory.

Covers the quorum arithmetic, every :meth:`lookup_register` outcome
(register / duplicate / read repair / degraded / unavailable), the
overwrite -> decrement-intent -> GC pipeline with its fencing and
journaling, and the leased :class:`GcJob` driving it.
"""

import pytest

from repro.cluster.directory import (
    Consistency,
    DirectoryConfig,
    GcJob,
    GcSpec,
    KillSpec,
    RefcountGc,
    ReplicatedDirectory,
    required,
)
from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError, ConfigError


def make_directory(nnodes=3, replication=3, consistency=Consistency.QUORUM):
    router = FingerprintRouter(list(range(nnodes)), vnodes=32)
    config = DirectoryConfig(replication=replication, consistency=consistency)
    return ReplicatedDirectory(router, nnodes, config)


class TestConsistencyMath:
    @pytest.mark.parametrize(
        "level,r,want",
        [
            (Consistency.ONE, 1, 1),
            (Consistency.ONE, 5, 1),
            (Consistency.QUORUM, 1, 1),
            (Consistency.QUORUM, 2, 2),
            (Consistency.QUORUM, 3, 2),
            (Consistency.QUORUM, 4, 3),
            (Consistency.QUORUM, 5, 3),
            (Consistency.ALL, 1, 1),
            (Consistency.ALL, 4, 4),
        ],
    )
    def test_required(self, level, r, want):
        assert required(level, r) == want

    def test_required_rejects_bad_replication(self):
        with pytest.raises(ClusterError):
            required(Consistency.QUORUM, 0)

    def test_quorum_overlap(self):
        """Any two quorums intersect -- the property that makes
        read-repair sufficient for convergence."""
        for r in range(1, 8):
            q = required(Consistency.QUORUM, r)
            assert 2 * q > r


class TestConfigValidation:
    def test_kill_spec_rejects_negatives(self):
        with pytest.raises(ClusterError):
            KillSpec(node=-1, time=0.0)
        with pytest.raises(ClusterError):
            KillSpec(node=0, time=-1.0)

    def test_directory_config_rejects_bad_replication(self):
        with pytest.raises(ClusterError):
            DirectoryConfig(replication=0)

    def test_directory_config_rejects_non_enum_consistency(self):
        with pytest.raises(ClusterError):
            DirectoryConfig(consistency="quorum")  # the string, not the enum

    def test_replication_cannot_exceed_cluster(self):
        with pytest.raises(ClusterError):
            make_directory(nnodes=2, replication=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": -1.0},
            {"interval": 0.0},
            {"batch": 0},
            {"rounds": 0},
            {"entry_cost": -1e-6},
            {"mode": "offline"},
        ],
    )
    def test_gc_spec_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            GcSpec(**kwargs)


class TestLookupRegister:
    def test_miss_registers_on_contacted_quorum(self):
        d = make_directory()
        fp = 42
        res = d.lookup_register(fp, origin=0, new_holder=True)
        assert res.registered and res.writer is None and not res.remote_dup
        assert res.contacted == d.placer.replicas(fp)[:2]  # quorum of 3
        holders = [m for m in d.tables if fp in d.tables[m]]
        assert sorted(holders) == sorted(res.contacted)
        assert d.registrations == 1 and d.live_counts[fp] == 1

    def test_duplicate_same_origin_not_remote(self):
        d = make_directory()
        fp = 42
        first = d.lookup_register(fp, origin=0, new_holder=True)
        res = d.lookup_register(fp, origin=0, new_holder=True)
        assert not res.registered and not res.remote_dup
        assert res.writer == 0
        assert d.tables[first.contacted[0]][fp].refs == 2
        assert d.live_counts[fp] == 2

    def test_duplicate_other_origin_is_remote_reference(self):
        d = make_directory()
        fp = 42
        d.lookup_register(fp, origin=0, new_holder=True)
        res = d.lookup_register(fp, origin=1, new_holder=True)
        assert res.remote_dup and res.writer == 0
        assert d.remote_refs_registered == 1

    def test_kill_shifts_window_and_triggers_read_repair(self):
        d = make_directory()
        fp = 42
        first = d.lookup_register(fp, origin=0, new_holder=True)
        stale = d.placer.replicas(fp)[2]  # uncontacted under quorum
        assert fp not in d.tables[stale]
        d.kill(first.contacted[0])
        res = d.lookup_register(fp, origin=1, new_holder=True)
        assert res.repairs == [stale]
        assert d.read_repairs == 1 and d.repair_pushes == 1
        assert d.repairs_received[stale] == 1
        repaired = d.tables[stale][fp]
        assert repaired.writer == 0  # winner: the true first writer
        assert res.writer == 0 and res.remote_dup

    def test_degraded_below_quorum_still_answers(self):
        d = make_directory()
        fp = 42
        reps = d.placer.replicas(fp)
        d.lookup_register(fp, origin=0, new_holder=True)
        d.kill(reps[0])
        d.kill(reps[1])
        res = d.lookup_register(fp, origin=0, new_holder=True)
        assert res.degraded and not res.unavailable
        assert res.contacted == [reps[2]]
        assert d.degraded_lookups == 1

    def test_all_replicas_dead_is_miss_as_unique(self):
        d = make_directory()
        fp = 42
        d.lookup_register(fp, origin=0, new_holder=True)
        for m in d.placer.replicas(fp):
            d.kill(m)
        res = d.lookup_register(fp, origin=1, new_holder=True)
        assert res.unavailable and res.writer is None
        assert not res.registered  # nothing recorded anywhere
        assert d.unavailable_lookups == 1
        # the truth counter still advanced: the block does hold content
        assert d.live_counts[fp] == 2

    def test_kill_is_idempotent_and_validated(self):
        d = make_directory()
        d.kill(1)
        d.kill(1)
        assert d.kills == 1 and d.down == {1}
        with pytest.raises(ClusterError):
            d.kill(99)

    def test_summary_shape(self):
        d = make_directory()
        d.lookup_register(7, origin=0, new_holder=True)
        s = d.summary()
        assert s["replication"] == 3 and s["consistency"] == "quorum"
        assert s["registrations"] == 1 and s["lookups"] == 1
        assert set(s["entries"]) == {"0", "1", "2"}
        m = d.member_summary(0)
        assert set(m) == {
            "entries", "refs", "lookups_served", "repairs_received", "down",
        }


class TestRefcountGc:
    def test_overwrite_queues_intent_and_drops_truth(self):
        d = make_directory()
        d.lookup_register(7, origin=0, new_holder=True)
        d.note_overwrite(7)
        assert 7 not in d.live_counts
        assert d.pending_decrements == 1

    def test_drain_reclaims_only_dead_content(self):
        d = make_directory()
        gc = RefcountGc(d)
        d.lookup_register(7, origin=0, new_holder=True)
        d.lookup_register(7, origin=1, new_holder=True)  # refs=2, live=2
        d.note_overwrite(7)  # live=1
        assert gc.drain_all() == 1
        assert gc.decrements_applied == 1 and gc.reclaimed_blocks == 0
        assert d.tables[d.placer.replicas(7)[0]][7].refs == 1
        d.note_overwrite(7)  # live=0
        assert gc.drain_all() == 1
        assert gc.reclaimed_blocks == 1
        assert all(7 not in d.tables[m] for m in d.tables)

    def test_live_block_never_collected(self):
        d = make_directory()
        gc = RefcountGc(d)
        d.lookup_register(7, origin=0, new_holder=True)
        d.lookup_register(7, origin=1, new_holder=True)  # refs=2, live=2
        d.note_overwrite(7)  # live=1, one honest intent
        # A divergent double-queue (the failure GC must survive): refs
        # would drain to zero while a live block still holds the content.
        d.decrement_intents.append(7)
        gc.drain_all()
        assert gc.live_skips == 1 and gc.reclaimed_blocks == 0
        assert 7 in d.tables[d.placer.replicas(7)[0]]  # entry survived

    def test_orphan_decrement_counted(self):
        d = make_directory()
        gc = RefcountGc(d)
        d.note_overwrite(999)  # fingerprint never registered
        gc.drain_all()
        assert gc.orphan_decrements == 1 and gc.decrements_applied == 0

    def test_plan_commit_fencing(self):
        d = make_directory()
        gc = RefcountGc(d)
        d.lookup_register(7, origin=0, new_holder=True)
        d.note_overwrite(7)
        with pytest.raises(ClusterError):
            gc.plan_decrements(1, 4)  # stale plan cursor
        fps, end = gc.plan_decrements(0, 4)
        assert fps == [7] and end == 1
        with pytest.raises(ClusterError):
            gc.commit_decrements(1, 2)  # stale commit cursor
        with pytest.raises(ClusterError):
            gc.commit_decrements(0, 99)  # out of bounds
        gc.commit_decrements(0, end)
        assert gc.cursor == 1 and gc.pending == 0
        with pytest.raises(ClusterError):
            gc.commit_decrements(0, 1)  # replayed commit rejected

    def test_plan_links_primary_pushes_to_peers(self):
        d = make_directory()
        fp = 7
        links = RefcountGc(d).plan_links([fp, fp])
        reps = d.placer.replicas(fp)
        assert links == {(reps[0], reps[1]): 2, (reps[0], reps[2]): 2}
        d.kill(reps[0])
        links = RefcountGc(d).plan_links([fp])
        assert links == {(reps[1], reps[2]): 1}

    def test_journal_replay_reproduces_refcounts(self):
        d = make_directory()
        gc = RefcountGc(d)
        for fp in (7, 8, 9):
            d.lookup_register(fp, origin=0, new_holder=True)
            d.lookup_register(fp, origin=1, new_holder=True)
        gc.checkpoint()  # fold current view, then mutate past it
        d.note_overwrite(7)
        d.note_overwrite(8)
        d.note_overwrite(8)  # 8 fully drains -> reclaimed
        gc.drain_all()
        mapping, replayed, torn = gc.journal.replay()
        assert not torn and replayed == gc.journal.records_appended
        assert mapping == gc.refcount_view()
        assert 8 not in mapping and mapping[7] == 1

    def test_summary_shape(self):
        gc = RefcountGc(make_directory())
        assert set(gc.summary()) == {
            "decrements_applied",
            "gc_reclaimed_blocks",
            "gc_live_skips",
            "gc_orphan_decrements",
            "gc_pending_intents",
            "gc_rounds",
            "journal_records",
            "journal_checkpoints",
        }


class TestGcJob:
    def make_job(self, d, gc, batch=2, rounds=3):
        self.sent = []

        def send(links):
            self.sent.append(dict(links))
            return 1.0

        return GcJob(gc, batch=batch, rounds=rounds, entry_cost=0.5, send=send)

    def test_rounds_consume_batches(self):
        d = make_directory()
        gc = RefcountGc(d)
        for fp in (7, 8, 9):
            d.lookup_register(fp, origin=0, new_holder=True)
            d.lookup_register(fp, origin=1, new_holder=True)
            d.note_overwrite(fp)
        job = self.make_job(d, gc, batch=2, rounds=3)
        step = job.run_step(0.0)
        assert step.span == (0, 1)
        assert step.completion == max(1.0, 0.0 + 0.5 * 2)
        assert gc.cursor == 0  # nothing applied before the commit
        step.commit()
        assert gc.cursor == 2 and job.rounds_done == 1
        job.run_step(2.0).commit()  # second batch: the remaining intent
        assert gc.cursor == 3 and gc.decrements_applied == 3
        # third round finds the queue empty and completes instantly
        step = job.run_step(3.0)
        assert step.completion == 3.0
        step.commit()
        assert job.done() and job.progress() == 1.0
        assert gc.rounds_run == 2  # empty round never touched the fence

    def test_uncommitted_step_is_replannable(self):
        """A lost lease discards the step; the next worker replans the
        same batch from the unchanged cursor."""
        d = make_directory()
        gc = RefcountGc(d)
        d.lookup_register(7, origin=0, new_holder=True)
        d.note_overwrite(7)
        job = self.make_job(d, gc)
        job.run_step(0.0)  # planned, never committed
        step = job.run_step(0.0)
        step.commit()
        assert gc.cursor == 1 and job.rounds_done == 1

    def test_validation(self):
        gc = RefcountGc(make_directory())
        with pytest.raises(ClusterError):
            GcJob(gc, batch=0, rounds=1, entry_cost=0.0, send=lambda l: 0.0)
        with pytest.raises(ClusterError):
            GcJob(gc, batch=1, rounds=0, entry_cost=0.0, send=lambda l: 0.0)

    def test_summary_includes_round_progress(self):
        d = make_directory()
        gc = RefcountGc(d)
        job = self.make_job(d, gc)
        s = job.summary()
        assert s["rounds_total"] == 3 and s["rounds_done"] == 0
        assert s["gc_pending_intents"] == 0
