"""Unit tests for membership-change specs and the paced shard migrator."""

import pytest

from repro.cluster.rebalance import RebalanceSpec, ShardMigrator
from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError


class TestRebalanceSpec:
    def test_valid(self):
        spec = RebalanceSpec(time=1.0, add_nodes=1)
        assert spec.remove_node is None
        RebalanceSpec(time=0.0, remove_node=1)

    def test_validation(self):
        with pytest.raises(ClusterError):
            RebalanceSpec(time=-1.0, add_nodes=1)
        with pytest.raises(ClusterError):
            RebalanceSpec(time=1.0)  # neither add nor remove
        with pytest.raises(ClusterError):
            RebalanceSpec(time=1.0, add_nodes=-1)
        with pytest.raises(ClusterError):
            RebalanceSpec(time=1.0, remove_node=-2)
        with pytest.raises(ClusterError):
            RebalanceSpec(time=1.0, add_nodes=1, entries_per_batch=0)
        with pytest.raises(ClusterError):
            RebalanceSpec(time=1.0, add_nodes=1, interval=0.0)


def _grow_ring(nfps=2000):
    """Two-member ring grows to three; shards populated pre-change."""
    router = FingerprintRouter([0, 1], vnodes=16)
    shards = {0: {}, 1: {}}
    for fp in range(nfps):
        shards[router.route(fp)][fp] = router.route(fp)
    router.add_member(2)
    return router, shards


class TestShardMigrator:
    def test_only_displaced_entries_move(self):
        router, shards = _grow_ring()
        before = {m: dict(s) for m, s in shards.items()}
        mig = ShardMigrator(router, shards)
        assert 0 < mig.entries_total < 2000  # some, not all, remap
        moved = {fp for fp, *_ in mig._moves}  # pod: ignore[POD007]
        for fp in range(2000):
            if router.route(fp) == (0 if fp in before[0] else 1):
                assert fp not in moved

    def test_batches_drain_deterministically(self):
        router, shards = _grow_ring()
        mig = ShardMigrator(router, shards)
        total = mig.entries_total
        drained = 0
        while not mig.done:
            links = mig.next_batch(64)
            batch = sum(links.values())
            assert 0 < batch <= 64
            drained += batch
            # a growth rebalance only moves entries *to* the new member
            assert all(dst == 2 for (_src, dst) in links)
        assert drained == total
        assert mig.remaining == 0
        assert not mig.pending

    def test_migration_lands_entries_at_new_owner(self):
        router, shards = _grow_ring()
        mig = ShardMigrator(router, shards)
        while not mig.done:
            mig.next_batch(256)
        # post-migration the shard map agrees with the ring everywhere
        for member, shard in shards.items():
            for fp in shard:
                assert router.route(fp) == member

    def test_same_inputs_same_move_order(self):
        r1, s1 = _grow_ring()
        r2, s2 = _grow_ring()
        m1, m2 = ShardMigrator(r1, s1), ShardMigrator(r2, s2)
        assert m1._moves == m2._moves  # pod: ignore[POD007]

    def test_superseded_entry_counted_not_overwritten(self):
        """First registration wins: a live write that re-registered a
        fingerprint at the new owner supersedes the in-flight copy."""
        router, shards = _grow_ring()
        mig = ShardMigrator(router, shards)
        fp, _src, dst, _writer = mig._moves[0]  # pod: ignore[POD007]
        # a write re-registers the fingerprint at its new owner first
        shards.setdefault(dst, {})[fp] = 99
        mig.note_registered(fp)
        assert fp not in mig.pending
        mig.next_batch(1)
        assert mig.entries_superseded == 1
        assert shards[dst][fp] == 99  # migration did not clobber it

    def test_removal_moves_every_entry_off_the_leaver(self):
        router = FingerprintRouter([0, 1, 2], vnodes=16)
        shards = {0: {}, 1: {}, 2: {}}
        for fp in range(1500):
            shards[router.route(fp)][fp] = 0
        leaving = len(shards[2])
        router.remove_member(2)
        mig = ShardMigrator(router, shards)
        # exact-removal property: only the leaver's entries move
        assert mig.entries_total == leaving
        while not mig.done:
            mig.next_batch(128)
        assert not shards[2]
        for member in (0, 1):
            for fp in shards[member]:
                assert router.route(fp) == member

    def test_batch_size_validated(self):
        router, shards = _grow_ring()
        mig = ShardMigrator(router, shards)
        with pytest.raises(ClusterError):
            mig.next_batch(0)

    def test_summary_keys(self):
        router, shards = _grow_ring()
        mig = ShardMigrator(router, shards)
        s = mig.summary()
        assert set(s) == {
            "entries_total",
            "entries_migrated",
            "entries_superseded",
            "entries_remaining",
        }
        assert s["entries_remaining"] == s["entries_total"]
