"""Unit tests for the consistent-hash fingerprint router."""

import pytest

from repro.cluster.router import DEFAULT_VNODES, MASK64, FingerprintRouter, mix64
from repro.errors import ClusterError

FPS = list(range(0, 5000, 7))


class TestMix64:
    def test_known_values(self):
        """splitmix64 finaliser, pinned against the reference constants.

        These exact values must reproduce on every platform -- routing
        (and therefore every cluster replay) depends on them.
        """
        assert mix64(0) == 0xE220A8397B1DCDAF
        assert mix64(1) == 0x910A2DEC89025CC1
        assert mix64(2) == 0x975835DE1C9756CE

    def test_range_and_determinism(self):
        for x in (0, 1, 2**31, 2**63, MASK64, MASK64 + 5):
            h = mix64(x & MASK64)
            assert 0 <= h <= MASK64
            assert h == mix64(x & MASK64)

    def test_mixes_adjacent_inputs_apart(self):
        hashes = {mix64(x) for x in range(1000)}
        assert len(hashes) == 1000


class TestMembership:
    def test_members_sorted_insertion_independent(self):
        a = FingerprintRouter([2, 0, 1])
        b = FingerprintRouter([0, 1, 2])
        assert a.members == b.members == (0, 1, 2)
        assert a.route_many(FPS) == b.route_many(FPS)

    def test_ring_size(self):
        r = FingerprintRouter([0, 1], vnodes=8)
        assert r.ring_size() == 16
        r.add_member(2)
        assert r.ring_size() == 24
        assert 2 in r and 3 not in r

    def test_default_vnodes(self):
        assert FingerprintRouter([0]).ring_size() == DEFAULT_VNODES

    def test_errors(self):
        with pytest.raises(ClusterError):
            FingerprintRouter([])
        with pytest.raises(ClusterError):
            FingerprintRouter([0], vnodes=0)
        with pytest.raises(ClusterError):
            FingerprintRouter([-1])
        r = FingerprintRouter([0, 1])
        with pytest.raises(ClusterError):
            r.add_member(1)
        with pytest.raises(ClusterError):
            r.remove_member(7)
        r.remove_member(1)
        with pytest.raises(ClusterError):
            r.remove_member(0)  # never empty the ring


class TestRouting:
    def test_single_member_owns_everything(self):
        r = FingerprintRouter([3])
        assert set(r.route_many(FPS)) == {3}

    def test_routes_land_on_members(self):
        r = FingerprintRouter([0, 1, 2, 3])
        assert set(r.route_many(FPS)) <= {0, 1, 2, 3}

    def test_roughly_fair_split(self):
        """With default vnodes no member owns a grossly unfair share."""
        r = FingerprintRouter([0, 1, 2, 3])
        routes = r.route_many(range(20000))
        for m in (0, 1, 2, 3):
            share = routes.count(m) / len(routes)
            assert 0.10 < share < 0.45

    def test_exact_removal_property(self):
        """Removing a member never remaps a surviving member's keys."""
        r = FingerprintRouter([0, 1, 2])
        before = r.route_many(FPS)
        r.remove_member(1)
        after = r.route_many(FPS)
        for b, a in zip(before, after):
            if b != 1:
                assert a == b
            else:
                assert a in (0, 2)

    def test_add_then_remove_round_trips(self):
        r = FingerprintRouter([0, 1])
        before = r.route_many(FPS)
        r.add_member(2)
        r.remove_member(2)
        assert r.route_many(FPS) == before

    def test_pinned_golden_routes(self):
        """Cross-process stability: exact routes, captured once."""
        r = FingerprintRouter([0, 1, 2], vnodes=16)
        assert r.route_many([0, 1, 2, 3, 4, 1000, 12345, 999999]) == [
            mix_route for mix_route in GOLDEN_ROUTES
        ]


#: route_many([0..4, 1000, 12345, 999999]) on a 3-member, 16-vnode ring;
#: captured from the initial implementation.  A change here silently
#: reshards every cluster replay -- treat as a breaking change.
GOLDEN_ROUTES = [2, 1, 2, 2, 0, 1, 1, 0]
