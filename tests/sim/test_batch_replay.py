"""Golden bit-identity: the columnar batch driver vs the object path.

The batch driver's contract is *bit*-identity, not statistical
closeness: every metric, scheme counter, disk utilisation figure and
epoch timeline entry must match the event-loop replay exactly, for
every scheme, at any batch size, for single- and multi-volume runs.
These tests are the contract's pin; the performance side lives in
benchmarks/ (bench_replay_throughput.py, emit_bench.py).
"""

from __future__ import annotations

import json

import pytest

from repro.baselines.base import SchemeConfig
from repro.dedup.chunking import ChunkingConfig
from repro.experiments.runner import SCHEME_CLASSES
from repro.sim.replay import ReplayConfig, replay_trace, replay_traces
from repro.storage.raid import RaidLevel
from repro.traces.columnar import ColumnarTrace
from repro.traces.synthetic import HOMES, WEB_VM, generate_trace

SCALE = 0.02


@pytest.fixture(scope="module")
def web_trace():
    return generate_trace(WEB_VM, scale=SCALE)


@pytest.fixture(scope="module")
def homes_trace():
    return generate_trace(HOMES, seed=7, scale=0.015)


def fingerprint(result) -> str:
    """Everything observable about a replay, as one canonical string."""
    return json.dumps(
        {
            "summary": result.metrics.as_dict(),
            "stats": result.scheme_stats,
            "util": result.utilisation,
            "writes_total": result.writes_total,
            "write_requests_removed": result.write_requests_removed,
            "capacity_blocks": result.capacity_blocks,
            "epochs": result.epoch_timeline,
            "volumes": result.volumes,
        },
        sort_keys=True,
        default=str,
    )


def replay(traces, scheme_name, batch_size, config=None, **overrides):
    params = dict(
        logical_blocks=sum(t.logical_blocks for t in traces),
        memory_bytes=256 * 1024,
    )
    params.update(overrides)
    scheme = SCHEME_CLASSES[scheme_name](SchemeConfig(**params))
    return replay_traces(
        traces,
        scheme,
        config if config is not None else ReplayConfig(),
        batch_size=batch_size,
    )


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_CLASSES))
def test_single_volume_bit_identity(scheme_name, web_trace):
    base = fingerprint(replay([web_trace], scheme_name, None))
    for batch_size in (1, 7, 4096):
        assert (
            fingerprint(replay([web_trace], scheme_name, batch_size)) == base
        ), f"{scheme_name} diverges at batch_size={batch_size}"


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_CLASSES))
def test_multi_volume_bit_identity(scheme_name, web_trace, homes_trace):
    traces = [web_trace, homes_trace]
    base = fingerprint(replay(traces, scheme_name, None))
    for batch_size in (1, 4096):
        assert (
            fingerprint(replay(traces, scheme_name, batch_size)) == base
        ), f"{scheme_name} diverges at batch_size={batch_size}"


@pytest.mark.parametrize("scheme_name", ["Native", "POD"])
def test_columnar_trace_input_identical(scheme_name, web_trace):
    """A pre-interned ColumnarTrace replays identically to the Trace it
    came from -- on the batch driver and (via lossless to_trace
    materialisation) on the object path."""
    ctrace = ColumnarTrace.from_trace(web_trace)
    base = fingerprint(replay([web_trace], scheme_name, None))
    assert fingerprint(replay([ctrace], scheme_name, None)) == base
    assert fingerprint(replay([ctrace], scheme_name, 4096)) == base


@pytest.mark.parametrize("scheme_name", ["POD", "Full-Dedupe"])
def test_chunking_bit_identity(scheme_name, web_trace):
    """Content-defined chunking is stream-order-dependent state; the
    batch driver must feed it in exactly arrival order."""
    chunking = ChunkingConfig(min_blocks=2, avg_blocks=4, max_blocks=16)
    base = fingerprint(
        replay([web_trace], scheme_name, None, chunking=chunking)
    )
    got = fingerprint(
        replay([web_trace], scheme_name, 4096, chunking=chunking)
    )
    assert got == base


def test_raid0_bit_identity(web_trace):
    config = ReplayConfig(raid_level=RaidLevel.RAID0)
    base = fingerprint(replay([web_trace], "POD", None, config=config))
    assert fingerprint(replay([web_trace], "POD", 4096, config=config)) == base


def test_single_disk_bit_identity(web_trace):
    config = ReplayConfig(raid_level=RaidLevel.SINGLE, ndisks=1)
    base = fingerprint(replay([web_trace], "Native", None, config=config))
    assert (
        fingerprint(replay([web_trace], "Native", 4096, config=config)) == base
    )


def test_ineligible_config_falls_back(web_trace):
    """Configs outside the batch fast path (event-driven scheduler)
    silently take the object path -- same results, no error."""
    from repro.storage.scheduler import SchedulingPolicy

    config = ReplayConfig(scheduler=SchedulingPolicy.CLOOK)
    base = fingerprint(replay([web_trace], "POD", None, config=config))
    assert fingerprint(replay([web_trace], "POD", 4096, config=config)) == base


def test_replay_trace_entry_point(web_trace):
    scheme_a = SCHEME_CLASSES["POD"](
        SchemeConfig(logical_blocks=web_trace.logical_blocks, memory_bytes=256 * 1024)
    )
    scheme_b = SCHEME_CLASSES["POD"](
        SchemeConfig(logical_blocks=web_trace.logical_blocks, memory_bytes=256 * 1024)
    )
    a = replay_trace(web_trace, scheme_a)
    b = replay_trace(web_trace, scheme_b, batch_size=512)
    assert fingerprint(a) == fingerprint(b)
