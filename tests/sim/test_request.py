"""Unit tests for the I/O request model."""

import pytest

from repro.constants import BLOCK_SIZE
from repro.errors import TraceError
from repro.sim.request import DiskOp, IORequest, OpType


class TestIORequest:
    def test_write_constructor(self):
        req = IORequest.write(time=1.0, lba=10, fingerprints=[1, 2, 3])
        assert req.op is OpType.WRITE
        assert req.nblocks == 3
        assert req.fingerprints == (1, 2, 3)
        assert req.is_write and not req.is_read

    def test_read_constructor(self):
        req = IORequest.read(time=0.5, lba=7, nblocks=2)
        assert req.op is OpType.READ
        assert req.fingerprints is None
        assert req.is_read and not req.is_write

    def test_size_bytes(self):
        req = IORequest.read(time=0.0, lba=0, nblocks=4)
        assert req.size_bytes == 4 * BLOCK_SIZE

    def test_end_lba_and_blocks(self):
        req = IORequest.read(time=0.0, lba=5, nblocks=3)
        assert req.end_lba == 8
        assert list(req.blocks()) == [5, 6, 7]

    def test_zero_length_rejected(self):
        with pytest.raises(TraceError):
            IORequest.read(time=0.0, lba=0, nblocks=0)

    def test_negative_lba_rejected(self):
        with pytest.raises(TraceError):
            IORequest.read(time=0.0, lba=-1, nblocks=1)

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            IORequest.read(time=-0.1, lba=0, nblocks=1)

    def test_write_requires_fingerprints(self):
        with pytest.raises(TraceError):
            IORequest(time=0.0, op=OpType.WRITE, lba=0, nblocks=2)

    def test_write_fingerprint_count_must_match(self):
        with pytest.raises(TraceError):
            IORequest(time=0.0, op=OpType.WRITE, lba=0, nblocks=2, fingerprints=(1,))

    def test_read_must_not_carry_fingerprints(self):
        with pytest.raises(TraceError):
            IORequest(time=0.0, op=OpType.READ, lba=0, nblocks=1, fingerprints=(1,))


class TestDiskOp:
    def test_valid(self):
        op = DiskOp(disk_id=0, op=OpType.READ, pba=4, nblocks=2)
        assert op.pba == 4

    def test_invalid_length(self):
        with pytest.raises(TraceError):
            DiskOp(disk_id=0, op=OpType.READ, pba=0, nblocks=0)

    def test_negative_pba(self):
        with pytest.raises(TraceError):
            DiskOp(disk_id=0, op=OpType.WRITE, pba=-3, nblocks=1)
