"""Unit tests for replay-harness internals and configuration."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.sim.replay import ReplayConfig, ReplayResult, _size_disks
from repro.storage.disk import DiskParams
from repro.storage.raid import RaidLevel

SU = BLOCKS_PER_STRIPE_UNIT


class TestSizeDisks:
    def test_default_disk_large_enough_untouched(self):
        params = _size_disks(1000, ReplayConfig())
        assert params.total_blocks == DiskParams().total_blocks

    def test_grows_for_big_volumes(self):
        need = DiskParams().total_blocks * 4
        params = _size_disks(need, ReplayConfig())
        geometry = ReplayConfig().geometry()
        rows = params.total_blocks // SU
        assert rows * geometry.data_disks * SU >= need

    def test_respects_custom_params(self):
        custom = DiskParams(total_blocks=1 << 24, rpm=15000)
        params = _size_disks(1000, ReplayConfig(disk_params=custom))
        assert params.rpm == 15000
        assert params.total_blocks == 1 << 24

    def test_mechanical_params_preserved_when_growing(self):
        custom = DiskParams(total_blocks=64, seek_max=0.5)
        params = _size_disks(10_000_000, ReplayConfig(disk_params=custom))
        assert params.seek_max == 0.5
        assert params.total_blocks > 64


class TestReplayConfig:
    def test_geometry(self):
        g = ReplayConfig(raid_level=RaidLevel.RAID0, ndisks=2).geometry()
        assert g.ndisks == 2 and g.level is RaidLevel.RAID0

    def test_hashable_for_memoisation(self):
        a = ReplayConfig()
        b = ReplayConfig()
        assert hash(a) == hash(b) and a == b

    def test_scheduler_field_distinguishes(self):
        from repro.storage.scheduler import SchedulingPolicy

        assert ReplayConfig() != ReplayConfig(scheduler=SchedulingPolicy.CLOOK)


class TestReplayResult:
    def _result(self, writes, removed):
        return ReplayResult(
            trace_name="t",
            scheme_name="s",
            metrics=MetricsCollector(),
            scheme_stats={},
            utilisation={},
            capacity_blocks=1,
            writes_total=writes,
            write_requests_removed=removed,
        )

    def test_removed_pct(self):
        assert self._result(200, 50).removed_write_pct == pytest.approx(25.0)

    def test_removed_pct_zero_writes(self):
        assert self._result(0, 0).removed_write_pct == 0.0

    def test_summary_merges_metrics(self):
        s = self._result(10, 1).summary()
        assert s["trace"] == "t" and s["removed_write_pct"] == pytest.approx(10.0)


class TestSchemeConfigValidation:
    def test_valid_defaults(self):
        cfg = SchemeConfig(logical_blocks=1024, memory_bytes=1024)
        assert cfg.make_regions().logical_blocks == 1024

    def test_bad_logical(self):
        with pytest.raises(ConfigError):
            SchemeConfig(logical_blocks=0, memory_bytes=1024)

    def test_bad_memory(self):
        with pytest.raises(ConfigError):
            SchemeConfig(logical_blocks=1024, memory_bytes=-1)

    def test_bad_index_fraction(self):
        with pytest.raises(ConfigError):
            SchemeConfig(logical_blocks=1024, memory_bytes=0, index_fraction=1.5)

    def test_bad_thresholds(self):
        with pytest.raises(ConfigError):
            SchemeConfig(logical_blocks=1024, memory_bytes=0, select_threshold=0)
        with pytest.raises(ConfigError):
            SchemeConfig(logical_blocks=1024, memory_bytes=0, idedup_threshold=0)

    def test_regions_include_log_fraction(self):
        cfg = SchemeConfig(logical_blocks=1000, memory_bytes=0, log_fraction=0.25)
        assert cfg.make_regions().log_blocks == 250


class TestDoctests:
    def test_module_doctests(self):
        import doctest

        import repro.core.categorize as categorize
        import repro.storage.volume as volume

        for module in (categorize, volume):
            failures, _tests = doctest.testmod(module)
            assert failures == 0, module.__name__
