"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.request import DiskOp, OpType
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.volume import VolumeOp


def make_sim(ndisks=1, level=RaidLevel.SINGLE, blocks=65536):
    geometry = RaidGeometry(level=level, ndisks=ndisks)
    params = DiskParams(total_blocks=blocks)
    disks = [Disk(params, disk_id=i) for i in range(ndisks)]
    return Simulator(disks, RaidArray(geometry))


class TestSimulatorBasics:
    def test_disk_count_must_match_geometry(self):
        geometry = RaidGeometry(level=RaidLevel.RAID0, ndisks=4)
        with pytest.raises(SimulationError):
            Simulator([Disk(DiskParams())], RaidArray(geometry))

    def test_callbacks_run_in_order(self):
        sim = make_sim()
        order = []
        sim.schedule_callback(2.0, order.append, "late")
        sim.schedule_callback(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_callback_in_past_rejected(self):
        sim = make_sim()
        sim.schedule_callback(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_callback(0.5, lambda: None)

    def test_arrival_without_handler_raises(self):
        sim = make_sim()
        sim.schedule_arrival(0.0, "x")
        with pytest.raises(SimulationError):
            sim.run()

    def test_arrival_handler_called(self):
        sim = make_sim()
        got = []
        sim.schedule_arrival(1.5, "payload")
        sim.run(arrival_handler=lambda now, p: got.append((now, p)))
        assert got == [(1.5, "payload")]

    def test_until_stops_early(self):
        sim = make_sim()
        fired = []
        sim.schedule_callback(1.0, fired.append, 1)
        sim.schedule_callback(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert len(sim.queue) == 1

    def test_max_events_safety_valve(self):
        sim = make_sim()
        count = []

        def reschedule():
            count.append(1)
            sim.schedule_callback(sim.now + 1.0, reschedule)

        sim.schedule_callback(0.0, reschedule)
        sim.run(max_events=25)
        assert len(count) == 25


class TestDiskService:
    def test_single_op_completion_time(self):
        sim = make_sim()
        done = sim.service_disk_ops(0.0, [DiskOp(0, OpType.READ, 100, 4)])
        expected = sim.disks[0].params.controller_overhead
        expected += sim.disks[0].params.seek_time(100)
        expected += sim.disks[0].params.avg_rotational_latency
        expected += sim.disks[0].params.transfer_time(4)
        assert done == pytest.approx(expected)

    def test_empty_ops_complete_immediately(self):
        sim = make_sim()
        assert sim.service_disk_ops(3.0, []) == 3.0

    def test_fcfs_queueing_on_one_disk(self):
        sim = make_sim()
        first = sim.service_disk_ops(0.0, [DiskOp(0, OpType.READ, 1000, 1)])
        second = sim.service_disk_ops(0.0, [DiskOp(0, OpType.READ, 50000, 1)])
        # The second op waits for the first even though both were
        # issued at t=0.
        assert second > first

    def test_parallel_disks_overlap(self):
        sim = make_sim(ndisks=2, level=RaidLevel.RAID0)
        both = sim.service_disk_ops(
            0.0,
            [DiskOp(0, OpType.READ, 1000, 1), DiskOp(1, OpType.READ, 1000, 1)],
        )
        solo = Disk(sim.disks[0].params).service(0.0, 1000, 1)
        # Two disks in parallel take as long as one op, not two.
        assert both == pytest.approx(solo)

    def test_unknown_disk_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.service_disk_ops(0.0, [DiskOp(5, OpType.READ, 0, 1)])

    def test_volume_ops_route_through_raid(self):
        sim = make_sim(ndisks=4, level=RaidLevel.RAID0)
        done = sim.service_volume_ops(0.0, [VolumeOp(OpType.READ, 0, 64)])
        assert done > 0.0
        # A 64-block read at stripe unit 16 touches all four disks.
        assert sum(d.ops_serviced for d in sim.disks) == 4

    def test_utilisation_reporting(self):
        sim = make_sim()
        sim.service_disk_ops(0.0, [DiskOp(0, OpType.WRITE, 0, 8)])
        util = sim.utilisation()
        assert util[0]["ops"] == 1
        assert util[0]["blocks"] == 8
        assert util[0]["busy_time"] > 0
