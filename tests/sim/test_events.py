"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.schedule(3.0, EventKind.CALLBACK, "c")
        q.schedule(1.0, EventKind.CALLBACK, "a")
        q.schedule(2.0, EventKind.CALLBACK, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(5.0, EventKind.CALLBACK, i)
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.schedule(0.0, EventKind.CALLBACK)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7.5, EventKind.CALLBACK)
        q.schedule(2.5, EventKind.CALLBACK)
        assert q.peek_time() == 2.5

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, EventKind.CALLBACK)

    def test_push_assigns_sequence(self):
        q = EventQueue()
        e1 = q.push(Event(time=0.0, kind=EventKind.CALLBACK))
        e2 = q.push(Event(time=0.0, kind=EventKind.CALLBACK))
        assert e2.seq > e1.seq

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.CALLBACK, 1)
        q.schedule(5.0, EventKind.CALLBACK, 5)
        assert q.pop().payload == 1
        q.schedule(3.0, EventKind.CALLBACK, 3)
        assert q.pop().payload == 3
        assert q.pop().payload == 5
