"""Corruption-injection tests: every POD invariant must actually fire.

Each test drives a healthy scheme, verifies the sanitizer finds it
clean, then surgically corrupts one internal structure and asserts the
matching invariant code is reported.  A sanitizer that never fires is
indistinguishable from no sanitizer.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    INVARIANT_CODES,
    InvariantViolationError,
    PodSanitizer,
    Violation,
    validate_dedupe_selection,
)
from repro.baselines.base import SchemeConfig
from repro.constants import BLOCK_SIZE
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from repro.sim.request import IORequest


def make_scheme(cls=POD):
    return cls(
        SchemeConfig(
            logical_blocks=4096,
            memory_bytes=64 * 1024,
            index_fraction=0.5,
        )
    )


def warm(scheme, *, dedupe=True):
    """Drive a few writes so every table holds real state.

    The second write repeats the first's fingerprints at another LBA,
    so the Map table gains redirections and refcounts > 0.
    """
    now = 0.0
    fps = [101, 102, 103, 104]
    for lba, chunk in ((0, fps), (512, fps if dedupe else [7, 8, 9, 10])):
        now += 1e-3
        scheme.process(
            IORequest.write(time=now, lba=lba, fingerprints=list(chunk)), now
        )
    now += 1e-3
    scheme.process(IORequest.read(time=now, lba=0, nblocks=4), now)
    return now


def check_codes(scheme):
    sanitizer = PodSanitizer(fail_fast=False)
    return {v.code for v in sanitizer.check_scheme(scheme, now=1.0)}


class TestCleanSchemes:
    def test_clean_after_workload(self, dedup_scheme):
        warm(dedup_scheme)
        assert check_codes(dedup_scheme) == set()

    def test_invariant_catalogue_is_stable(self):
        assert len(INVARIANT_CODES) == 11
        assert "INV-IDEDUP-THRESHOLD" in INVARIANT_CODES
        assert INVARIANT_CODES[-1] == "INV-REFS-DELTA"
        assert len(set(INVARIANT_CODES)) == len(INVARIANT_CODES)
        assert all(code.startswith("INV-") for code in INVARIANT_CODES)


class TestMapTableInvariants:
    def test_out_of_volume_target_fires_map_live(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.map_table._map[512] = scheme.regions.total_blocks + 7
        assert "INV-MAP-LIVE" in check_codes(scheme)

    def test_metadata_region_target_fires_map_live(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.map_table._map[512] = scheme.regions.swap_base
        assert "INV-MAP-LIVE" in check_codes(scheme)

    def test_dangling_content_fires_map_live(self):
        scheme = make_scheme()
        warm(scheme)
        # Redirect to a never-written home block: inside the volume,
        # but holding no content.
        scheme.map_table._map[512] = scheme.regions.home_of(3999)
        assert "INV-MAP-LIVE" in check_codes(scheme)

    def test_identity_mapping_fires_map_minimal(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.map_table._map[512] = scheme.regions.home_of(512)
        assert "INV-MAP-MINIMAL" in check_codes(scheme)

    def test_inflated_refcount_fires(self):
        scheme = make_scheme()
        warm(scheme)
        pba = next(iter(scheme.map_table._refs))
        scheme.map_table._refs[pba] += 5
        assert "INV-REFCOUNT" in check_codes(scheme)

    def test_leaked_refcount_entry_fires(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.map_table._refs[scheme.regions.home_of(2000)] = 2
        assert "INV-REFCOUNT" in check_codes(scheme)

    def test_missing_refcount_entry_fires(self):
        scheme = make_scheme()
        warm(scheme)
        pba = next(iter(scheme.map_table._refs))
        del scheme.map_table._refs[pba]
        assert "INV-REFCOUNT" in check_codes(scheme)


class TestIndexTableInvariants:
    def test_corrupted_reverse_map_fires_index_pba(self):
        scheme = make_scheme()
        warm(scheme)
        table = scheme.index_table
        fp = table.lru.keys_lru_order()[0]
        entry = table.lru.peek(fp)
        table._by_pba[entry.pba] = fp + 0xDEAD
        assert "INV-INDEX-PBA" in check_codes(scheme)

    def test_stale_reverse_claim_fires_index_pba(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.index_table._by_pba[10**7] = 0xFEED
        assert "INV-INDEX-PBA" in check_codes(scheme)

    def test_duplicate_pba_claim_fires_index_pba(self):
        scheme = make_scheme()
        warm(scheme)
        table = scheme.index_table
        fps = table.lru.keys_lru_order()
        assert len(fps) >= 2
        # Two live fingerprints claiming the same physical block.
        table.lru.peek(fps[0]).pba = table.lru.peek(fps[1]).pba
        assert "INV-INDEX-PBA" in check_codes(scheme)

    def test_inflated_count_fires_index_count(self):
        scheme = make_scheme()
        warm(scheme)
        table = scheme.index_table
        fp = table.lru.keys_lru_order()[0]
        table.lru.peek(fp).count = 10**6
        assert "INV-INDEX-COUNT" in check_codes(scheme)

    def test_negative_count_fires_index_count(self):
        scheme = make_scheme()
        warm(scheme)
        table = scheme.index_table
        fp = table.lru.keys_lru_order()[0]
        table.lru.peek(fp).count = -1
        assert "INV-INDEX-COUNT" in check_codes(scheme)


class TestCacheInvariants:
    def test_partition_budget_breach_fires(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.cache.index.capacity_bytes += 64
        assert "INV-CACHE-BUDGET" in check_codes(scheme)

    def test_ghost_complement_breach_fires(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.cache.ghost_index.capacity_bytes += 1
        assert "INV-CACHE-BUDGET" in check_codes(scheme)

    def test_over_capacity_usage_fires(self):
        scheme = make_scheme()
        warm(scheme)
        cache = scheme.cache
        cache.read._used = cache.read.capacity_bytes + BLOCK_SIZE
        assert "INV-CACHE-BUDGET" in check_codes(scheme)

    def test_actual_ghost_overlap_fires_disjoint(self):
        scheme = make_scheme()
        warm(scheme)
        cache = scheme.cache
        resident = next(iter(cache.read), None)
        assert resident is not None
        cache.ghost_read._keys[resident] = BLOCK_SIZE
        assert "INV-CACHE-DISJOINT" in check_codes(scheme)

    def test_fixed_partition_checked_too(self):
        scheme = make_scheme(SelectDedupe)
        warm(scheme)
        scheme.cache.index.capacity_bytes += 64
        assert "INV-CACHE-BUDGET" in check_codes(scheme)


class TestNvramInvariants:
    def test_phantom_entries_fire(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.nvram.add(5)
        assert "INV-NVRAM-MODEL" in check_codes(scheme)

    def test_peak_regression_fires(self):
        scheme = make_scheme()
        warm(scheme)
        assert len(scheme.map_table) > 0
        scheme.nvram._peak_entries = 0
        assert "INV-NVRAM-MODEL" in check_codes(scheme)


class TestCategorySequentialPolicy:
    def test_valid_category1_full_run(self):
        pbas = [100, 101, 102, 103]
        assert validate_dedupe_selection(pbas, {0, 1, 2, 3}, threshold=3) == []

    def test_valid_category3_run(self):
        pbas = [100, 101, 102, None, None]
        assert validate_dedupe_selection(pbas, {0, 1, 2}, threshold=3) == []

    def test_category2_bypass_is_valid(self):
        pbas = [100, None, 200, None]
        assert validate_dedupe_selection(pbas, set(), threshold=3) == []

    def test_chunk_without_duplicate_fires(self):
        pbas = [100, None]
        out = validate_dedupe_selection(pbas, {1}, threshold=3)
        assert [v.code for v in out] == ["INV-CAT-SEQ"]

    def test_out_of_range_chunk_fires(self):
        out = validate_dedupe_selection([100], {4}, threshold=3)
        assert [v.code for v in out] == ["INV-CAT-SEQ"]

    def test_sub_threshold_run_fires(self):
        pbas = [100, 101, None, 300, 301]
        out = validate_dedupe_selection(pbas, {0, 1, 3, 4}, threshold=3)
        assert {v.code for v in out} == {"INV-CAT-SEQ"}

    def test_non_sequential_targets_fire(self):
        # Indices consecutive but targets scattered on disk.
        pbas = [100, 500, 900, 42]
        out = validate_dedupe_selection(pbas, {0, 1, 2, 3}, threshold=3)
        assert {v.code for v in out} == {"INV-CAT-SEQ"}

    def test_scattered_ok_without_sequential_policy(self):
        # Full-Dedupe legitimately dedupes scattered chunks.
        pbas = [100, 500, 900, 42]
        out = validate_dedupe_selection(
            pbas, {0, 1, 2, 3}, threshold=3, sequential_policy=False
        )
        assert out == []

    def test_attach_catches_forged_decision_live(self):
        class Rigged(SelectDedupe):
            name = "Rigged"

            def _choose_dedupe(self, request, duplicate_pbas):
                super()._choose_dedupe(request, duplicate_pbas)
                # Forge a scattered sub-threshold dedupe set.
                return {
                    i for i, p in enumerate(duplicate_pbas) if p is not None
                }

        scheme = make_scheme(Rigged)
        sanitizer = PodSanitizer()
        sanitizer.attach(scheme)
        now = 1e-3
        scheme.process(
            IORequest.write(time=now, lba=0, fingerprints=[1, 2, 3, 4]), now
        )
        with pytest.raises(InvariantViolationError) as exc:
            # Only chunk 0 duplicates: a run of 1 < threshold 3.
            scheme.process(
                IORequest.write(time=2e-3, lba=512, fingerprints=[1, 9, 8, 7]),
                2e-3,
            )
        assert "INV-CAT-SEQ" in str(exc.value)
        assert sanitizer.stats.decisions_validated >= 1

    def test_attach_passes_honest_decisions(self):
        scheme = make_scheme()
        sanitizer = PodSanitizer()
        sanitizer.attach(scheme)
        warm(scheme)
        sanitizer.assert_clean(scheme, now=1.0)
        assert sanitizer.stats.violations_found == 0
        assert sanitizer.stats.decisions_validated > 0


class TestIDedupThresholdPolicy:
    """iDedup's spatial-locality rule has its own sanitizer policy:
    every run must reach ``idedup_threshold`` -- no category-1
    full-request exemption."""

    def test_full_request_exemption_off_fires(self):
        # A fully redundant 4-chunk request is legal for Select-Dedupe
        # (category 1) but illegal for iDedup with threshold 8.
        pbas = [100, 101, 102, 103]
        assert validate_dedupe_selection(pbas, {0, 1, 2, 3}, threshold=8) == []
        out = validate_dedupe_selection(
            pbas, {0, 1, 2, 3}, threshold=8,
            full_request_exemption=False, code="INV-IDEDUP-THRESHOLD",
        )
        assert {v.code for v in out} == {"INV-IDEDUP-THRESHOLD"}

    def test_long_run_passes_without_exemption(self):
        pbas = [100 + i for i in range(8)]
        out = validate_dedupe_selection(
            pbas, set(range(8)), threshold=8,
            full_request_exemption=False, code="INV-IDEDUP-THRESHOLD",
        )
        assert out == []

    def test_attach_enforces_idedup_threshold_live(self):
        from repro.baselines.idedup import IDedup

        class RiggedIDedup(IDedup):
            name = "RiggedIDedup"

            def _choose_dedupe(self, request, duplicate_pbas):
                # Forge: dedupe every known duplicate, ignoring the
                # sequence-length threshold.
                return {
                    i for i, p in enumerate(duplicate_pbas) if p is not None
                }

        scheme = make_scheme(RiggedIDedup)
        sanitizer = PodSanitizer()
        sanitizer.attach(scheme)
        now = 1e-3
        scheme.process(
            IORequest.write(time=now, lba=0, fingerprints=[1, 2, 3, 4]), now
        )
        with pytest.raises(InvariantViolationError) as exc:
            # Re-write 4 duplicate chunks: run of 4 < threshold 8 and
            # the full-request exemption must NOT apply.
            scheme.process(
                IORequest.write(time=2e-3, lba=512, fingerprints=[1, 2, 3, 4]),
                2e-3,
            )
        assert "INV-IDEDUP-THRESHOLD" in str(exc.value)

    def test_attach_passes_honest_idedup(self):
        from repro.baselines.idedup import IDedup

        scheme = make_scheme(IDedup)
        sanitizer = PodSanitizer()
        sanitizer.attach(scheme)
        now = 0.0
        fps = list(range(200, 216))  # 16-chunk sequential write
        for lba in (0, 1024):
            now += 1e-3
            scheme.process(
                IORequest.write(time=now, lba=lba, fingerprints=list(fps)), now
            )
        sanitizer.assert_clean(scheme, now=now)
        assert sanitizer.stats.violations_found == 0
        assert sanitizer.stats.decisions_validated >= 2


class TestSanitizerBehaviour:
    def test_assert_clean_raises_fail_fast(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.nvram.add(3)
        sanitizer = PodSanitizer()
        with pytest.raises(InvariantViolationError) as exc:
            sanitizer.assert_clean(scheme, now=2.5)
        assert "INV-NVRAM-MODEL" in str(exc.value)
        assert all(v.t == 2.5 for v in exc.value.violations)

    def test_fail_fast_off_accumulates(self):
        scheme = make_scheme()
        warm(scheme)
        scheme.nvram.add(3)
        sanitizer = PodSanitizer(fail_fast=False)
        sanitizer.assert_clean(scheme, now=1.0)  # must not raise
        assert sanitizer.stats.violations_found > 0
        assert sanitizer.violations

    def test_summary_shape(self):
        sanitizer = PodSanitizer(fail_fast=False)
        scheme = make_scheme()
        warm(scheme)
        sanitizer.check_scheme(scheme)
        doc = sanitizer.summary()
        assert doc["checks_run"] == 1
        assert doc["violations_found"] == 0
        assert doc["invariants"] == list(INVARIANT_CODES)

    def test_violation_render(self):
        v = Violation("INV-REFCOUNT", "boom", t=1.25)
        assert "INV-REFCOUNT" in v.render() and "boom" in v.render()

    def test_checks_do_not_mutate_state(self):
        scheme = make_scheme()
        warm(scheme)
        before = (
            dict(scheme.map_table._map),
            dict(scheme.map_table._refs),
            scheme.cache.index.used_bytes,
            scheme.cache.read.used_bytes,
            scheme.nvram.entries,
        )
        PodSanitizer(fail_fast=False).check_scheme(scheme)
        after = (
            dict(scheme.map_table._map),
            dict(scheme.map_table._refs),
            scheme.cache.index.used_bytes,
            scheme.cache.read.used_bytes,
            scheme.nvram.entries,
        )
        assert before == after


class TestRefsDeltaInvariant:
    """INV-REFS-DELTA: windowed Map-table growth accounting."""

    def make_checked(self):
        scheme = make_scheme(SelectDedupe)
        now = warm(scheme)
        sanitizer = PodSanitizer(fail_fast=False)
        assert sanitizer.check_scheme(scheme, now) == []
        return scheme, sanitizer, now

    def test_legal_growth_between_checks_is_clean(self):
        scheme, sanitizer, now = self.make_checked()
        scheme.process(
            IORequest.write(
                time=now + 1e-3, lba=1024, fingerprints=[101, 102, 103, 104]
            ),
            now + 1e-3,
        )
        assert sanitizer.check_scheme(scheme, now + 1.0) == []

    def test_entries_from_nowhere_fire(self):
        scheme, sanitizer, now = self.make_checked()
        # forge a redirection without any write-path operation: the
        # entry count grows, the accounting counters do not.
        pba = scheme.map_table.translate(512)  # live, deduped target
        scheme.map_table._map[999] = pba
        scheme.map_table._refs[pba] += 1
        codes = {v.code for v in sanitizer.check_scheme(scheme, now + 1.0)}
        assert "INV-REFS-DELTA" in codes
        msgs = [
            v.message
            for v in sanitizer.violations
            if v.code == "INV-REFS-DELTA"
        ]
        assert any("from nowhere" in m for m in msgs)

    def test_backwards_counters_fire(self):
        scheme, sanitizer, now = self.make_checked()
        scheme.write_blocks_deduped -= 1
        codes = {v.code for v in sanitizer.check_scheme(scheme, now + 1.0)}
        assert "INV-REFS-DELTA" in codes

    def test_first_check_only_sets_baseline(self):
        """A corrupt-looking delta cannot fire on the very first check
        of a scheme: there is no window yet."""
        scheme = make_scheme(SelectDedupe)
        warm(scheme)
        sanitizer = PodSanitizer(fail_fast=False)
        out = [
            v
            for v in sanitizer.check_scheme(scheme, 1.0)
            if v.code == "INV-REFS-DELTA"
        ]
        assert out == []

    def test_baselines_are_per_scheme(self):
        a, b = make_scheme(SelectDedupe), make_scheme(SelectDedupe)
        warm(a)
        sanitizer = PodSanitizer(fail_fast=False)
        assert sanitizer.check_scheme(a, 1.0) == []
        # checking a *different* scheme must not inherit a's baseline
        warm(b)
        out = [
            v
            for v in sanitizer.check_scheme(b, 2.0)
            if v.code == "INV-REFS-DELTA"
        ]
        assert out == []

    def test_registry_snapshots_each_check(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        scheme = make_scheme(SelectDedupe)
        warm(scheme)
        sanitizer = PodSanitizer(fail_fast=False, registry=registry)
        sanitizer.check_scheme(scheme, 1.0)
        sanitizer.check_scheme(scheme, 2.0)
        assert registry.counter("sanitizer.checks").value == 2
        assert registry.gauge("sanitizer.map_entries").value == float(
            len(scheme.map_table)
        )
        assert registry.gauge("sanitizer.refcount_total").value == float(
            sum(scheme.map_table._refs.values())
        )
