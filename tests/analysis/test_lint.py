"""Unit tests for the POD determinism linter (rules POD001..POD006)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    LintReport,
    LINT_OUTPUT_VERSION,
    is_deterministic_path,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis.rules import ALL_RULES, DETERMINISTIC_PACKAGES

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def codes(findings):
    return [f.code for f in findings]


def lint_det(source: str):
    """Lint a snippet as if it lived in a deterministic package."""
    return lint_source(source, path="src/repro/sim/example.py")


# ----------------------------------------------------------------------
# POD001 -- wall clocks
# ----------------------------------------------------------------------


class TestPod001WallClock:
    def test_time_time_call_flagged(self):
        assert codes(lint_det("import time\nt0 = time.time()\n")) == ["POD001"]

    def test_monotonic_and_datetime_flagged(self):
        src = (
            "import time, datetime\n"
            "a = time.monotonic()\n"
            "b = datetime.datetime.now()\n"
        )
        assert codes(lint_det(src)) == ["POD001", "POD001"]

    def test_binding_a_clock_is_fine(self):
        # The sanctioned idiom: reference the callable, never call it.
        src = "import time\n_WALL_CLOCK = time.time\n"
        assert lint_det(src) == []

    def test_scope_limited_to_deterministic_packages(self):
        src = "import time\nt0 = time.time()\n"
        assert lint_source(src, path="src/repro/experiments/x.py") == []
        assert lint_source(src, path="tools/x.py") == []

    def test_injected_clock_call_is_fine(self):
        assert lint_det("t = clock()\n") == []


# ----------------------------------------------------------------------
# POD002 -- global RNG
# ----------------------------------------------------------------------


class TestPod002GlobalRng:
    def test_import_random_flagged(self):
        assert codes(lint_det("import random\n")) == ["POD002"]

    def test_from_random_import_flagged(self):
        assert codes(lint_det("from random import shuffle\n")) == ["POD002"]

    def test_random_call_flagged(self):
        src = "x = random.randint(0, 5)\n"
        assert codes(lint_det(src)) == ["POD002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(lint_det(src)) == ["POD002"]

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_det(src) == []

    def test_numpy_legacy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(lint_det(src)) == ["POD002"]


# ----------------------------------------------------------------------
# POD003 -- float time equality
# ----------------------------------------------------------------------


class TestPod003TimeEquality:
    def test_eq_on_time_names_flagged(self):
        assert codes(lint_det("ok = now == arrival_time\n")) == ["POD003"]

    def test_neq_on_completion_flagged(self):
        assert codes(lint_det("bad = completed_at != deadline\n")) == ["POD003"]

    def test_counts_not_flagged(self):
        assert lint_det("done = count == total_requests\n") == []

    def test_none_comparison_not_flagged(self):
        assert lint_det("x = arrival_time == None\n") == []

    def test_ordering_comparisons_fine(self):
        assert lint_det("late = now >= deadline\n") == []


# ----------------------------------------------------------------------
# POD004 -- mutable defaults
# ----------------------------------------------------------------------


class TestPod004MutableDefaults:
    def test_list_literal_default_flagged(self):
        assert codes(lint_det("def f(xs=[]):\n    pass\n")) == ["POD004"]

    def test_dict_ctor_default_flagged(self):
        assert codes(lint_det("def f(m=dict()):\n    pass\n")) == ["POD004"]

    def test_lambda_default_flagged(self):
        assert codes(lint_det("g = lambda xs=[]: xs\n")) == ["POD004"]

    def test_none_default_ok(self):
        assert lint_det("def f(xs=None):\n    pass\n") == []

    def test_applies_outside_deterministic_packages_too(self):
        src = "def f(xs=[]):\n    pass\n"
        assert codes(lint_source(src, path="tools/x.py")) == ["POD004"]


# ----------------------------------------------------------------------
# POD005 -- unguarded trace emission
# ----------------------------------------------------------------------


class TestPod005EmitGuards:
    def test_unguarded_emit_flagged(self):
        src = "self.obs.emit(level, t, kind)\n"
        assert codes(lint_det(src)) == ["POD005"]

    def test_guarded_emit_ok(self):
        src = (
            "if self.obs.level >= TraceLevel.CHUNK:\n"
            "    self.obs.emit(TraceLevel.CHUNK, t, kind)\n"
        )
        assert lint_det(src) == []

    def test_boolop_shortcircuit_guard_ok(self):
        src = "x = trace_level_on and obs.emit(lvl, t, kind)\n"
        assert lint_det(src) == []

    def test_else_branch_not_guarded(self):
        src = (
            "if self.obs.level >= TraceLevel.CHUNK:\n"
            "    pass\n"
            "else:\n"
            "    self.obs.emit(TraceLevel.CHUNK, t, kind)\n"
        )
        assert codes(lint_det(src)) == ["POD005"]

    def test_non_recorder_emit_ignored(self):
        assert lint_det("bus.emit(event)\n") == []


# ----------------------------------------------------------------------
# POD006 -- ambient entropy
# ----------------------------------------------------------------------


class TestPod006AmbientEntropy:
    def test_urandom_flagged(self):
        assert codes(lint_det("import os\nx = os.urandom(8)\n")) == ["POD006"]

    def test_environ_attribute_flagged(self):
        src = "import os\nv = os.environ['HOME']\n"
        assert "POD006" in codes(lint_det(src))

    def test_uuid4_flagged(self):
        assert codes(lint_det("import uuid\nu = uuid.uuid4()\n")) == ["POD006"]


# ----------------------------------------------------------------------
# pragmas, selection, report plumbing
# ----------------------------------------------------------------------


class TestPragmasAndSelection:
    def test_targeted_ignore_suppresses(self):
        src = "import time\nt0 = time.time()  # pod: ignore[POD001]\n"
        assert lint_det(src) == []

    def test_bare_ignore_suppresses_everything(self):
        src = "import time\nt0 = time.time()  # pod: ignore\n"
        assert lint_det(src) == []

    def test_mismatched_ignore_does_not_suppress(self):
        src = "import time\nt0 = time.time()  # pod: ignore[POD002]\n"
        assert codes(lint_det(src)) == ["POD001"]

    def test_select_restricts_rules(self):
        src = "import time, random\nt0 = time.time()\n"
        only = lint_source(
            src, path="src/repro/sim/x.py", select={"POD002"}
        )
        assert codes(only) == ["POD002"]

    def test_findings_sorted_and_located(self):
        src = "import random\nimport time\nt0 = time.time()\n"
        found = lint_det(src)
        assert [f.line for f in found] == sorted(f.line for f in found)
        assert all(f.path == "src/repro/sim/example.py" for f in found)


class TestReportPlumbing:
    def test_deterministic_path_classification(self):
        assert is_deterministic_path("src/repro/sim/engine.py")
        assert is_deterministic_path("src/repro/obs/trace.py")
        assert not is_deterministic_path("src/repro/experiments/figures.py")
        assert len(DETERMINISTIC_PACKAGES) >= 8

    def test_lint_paths_json_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    pass\n")
        report = lint_paths([str(tmp_path)])
        doc = report.as_dict()
        assert doc["version"] == LINT_OUTPUT_VERSION
        assert doc["kind"] == "pod-lint-report"
        assert doc["files_checked"] == 1
        assert doc["findings"][0]["code"] == "POD004"
        assert set(doc["findings"][0]) == {"code", "path", "line", "col", "message"}

    def test_parse_errors_reported(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        report = lint_paths([str(broken)])
        assert not report.ok
        assert report.parse_errors and "broken.py" in report.parse_errors[0]

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "mod.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.name for f in files] == ["mod.py"]


class TestCli:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    pass\n")
        assert main([str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["code"] == "POD004"

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["--select", "POD999"]) == 2

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        # A typo'd path must not pass as "0 findings in 0 files".
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ALL_RULES:
            assert code in out


class TestSelfHosting:
    def test_src_tree_is_clean(self):
        """The linter passes over the repo's own source (CI gate)."""
        report = lint_paths([str(REPO_SRC)])
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.files_checked > 50
