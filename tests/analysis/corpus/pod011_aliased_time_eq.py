"""Seeded bug: exact equality on aliased simulated-time floats.

POD003's name heuristic sees ``arrival_time == deadline``; it cannot
see the same comparison through the ``a``/``b`` aliases.  The taint
survives the renaming.
"""


def same_slot(arrival_time: float, deadline: float) -> bool:
    a = arrival_time
    b = deadline
    return a == b  # expect: POD011
