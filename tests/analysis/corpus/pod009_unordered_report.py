"""Seeded bug: histogram rows emitted in mapping iteration order."""

from typing import Dict, List


def histogram_rows(counts: Dict[str, int]) -> List[str]:
    rows: List[str] = []
    for name in counts:  # expect: POD009
        rows.append(f"{name} {counts[name]}")
    return rows
