"""Seeded bug: a wall-clock read laundered through a helper.

``time.time()`` is called in ``_stamp`` (POD001's syntactic site); the
dataflow tier flags the *consumer* that records the laundered value.
"""

from typing import List


import time


def _stamp() -> float:
    return time.time()


def record(events: List[float]) -> None:
    events.append(_stamp())  # expect: POD010
