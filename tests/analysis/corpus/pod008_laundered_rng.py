"""Seeded bug: an unseeded RNG draw laundered through a helper.

The syntactic tier (POD002) sees the ``default_rng()`` call inside the
helper; only the dataflow tier sees the *call site* where the tainted
value reaches replay state.
"""

from typing import List

import numpy as np


def _jitter() -> float:
    rng = np.random.default_rng()
    return float(rng.random())


def arrival_offsets(n: int) -> List[float]:
    out: List[float] = []
    for _ in range(n):
        out.append(_jitter())  # expect: POD008
    return out
