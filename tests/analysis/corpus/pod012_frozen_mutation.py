"""Seeded bug: a frozen config dataclass mutated after construction.

The ``object.__setattr__`` inside ``__post_init__`` is the sanctioned
normalisation idiom and must NOT be flagged; the one in ``bump`` is the
bug.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Config:
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))


def bump(config: Config) -> None:
    object.__setattr__(config, "seed", config.seed + 1)  # expect: POD012
