"""SARIF 2.1.0 output stability: a golden byte-for-byte snapshot.

GitHub code scanning ingests this document; any drift in the schema
(rule catalogue, result layout, URI normalisation) must be deliberate.
Regenerate after an intentional change with::

    PYTHONPATH=src:tests python -c \
        "from analysis.test_sarif import regenerate; regenerate()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint import Finding, LintReport
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import SARIF_VERSION, render_sarif

GOLDEN = Path(__file__).parent / "data" / "golden_sarif.json"


def _report() -> LintReport:
    return LintReport(
        findings=[
            Finding(
                code="POD001",
                path="/work/repo/src/repro/sim/replay.py",
                line=42,
                col=8,
                message="wall-clock call time.time() in a deterministic "
                "package; inject a clock (callable) instead",
            ),
            Finding(
                code="POD009",
                path="src/repro/obs/report.py",
                line=7,
                col=0,
                message="iteration over a dict/set-ordered iterable feeds "
                "an ordered output sink",
                fixes=((7, 0, "sorted("),),
            ),
            Finding(
                code="POD004",
                path="tests/analysis/sample.py",
                line=3,
                col=10,
                message="mutable default argument",
            ),
        ],
        files_checked=3,
        parse_errors=["src/repro/sim/bad.py: invalid syntax (line 2)"],
    )


def _render() -> str:
    return json.dumps(render_sarif(_report()), indent=2) + "\n"


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(_render(), encoding="utf-8")
    print(f"wrote {GOLDEN}")


def test_sarif_golden_snapshot():
    assert _render() == GOLDEN.read_text(encoding="utf-8"), (
        "SARIF output drifted from the golden snapshot -- if the schema "
        "change is intentional, regenerate (see module docstring)"
    )


def test_sarif_structure():
    doc = render_sarif(_report())
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "pod-lint"
    # Every catalogued rule ships a descriptor.
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == list(ALL_RULES)
    # Paths are normalised to repo-relative URIs.
    uris = [
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in run["results"]
    ]
    assert uris == [
        "src/repro/sim/replay.py",
        "src/repro/obs/report.py",
        "tests/analysis/sample.py",
    ]
    # Deterministic-scope rules are errors, everywhere-rules warnings.
    levels = [r["level"] for r in run["results"]]
    assert levels == ["error", "error", "warning"]
    # Parse errors surface as an unsuccessful invocation.
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is False
    assert "bad.py" in (
        invocation["toolExecutionNotifications"][0]["message"]["text"]
    )


def test_sarif_clean_report_is_successful():
    doc = render_sarif(LintReport([], files_checked=5, parse_errors=[]))
    (run,) = doc["runs"]
    assert run["results"] == []
    assert run["invocations"][0]["executionSuccessful"] is True
