"""Tests for the repro.analysis package (linter + sanitizer)."""
