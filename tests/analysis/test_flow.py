"""Unit tests for the dataflow tier's abstract interpreter.

Each test feeds a tiny synthetic module (at a deterministic-package
path) through :func:`repro.analysis.flow.analyze_files` and asserts on
the produced (line, code) pairs -- the corpus tests in
``test_flow_corpus.py`` cover the end-to-end seeded-bug fixtures.
"""

from __future__ import annotations

import textwrap
from typing import List, Tuple

from repro.analysis.flow import Taint, analyze_files

DET = "src/repro/sim/mod.py"
NON_DET = "src/repro/cli_helper.py"


def flow(source: str, path: str = DET) -> List[Tuple[int, str]]:
    report = analyze_files([(path, textwrap.dedent(source))])
    assert not report.parse_errors
    return sorted((f.line, f.code) for f in report.findings)


def codes(source: str, path: str = DET) -> List[str]:
    return [code for _, code in flow(source, path)]


# -- POD010: laundered wall clock --------------------------------------


def test_laundered_wall_clock_flagged_at_consumer():
    src = """
        import time


        def _stamp():
            return time.time()


        def record(events):
            events.append(_stamp())
    """
    assert codes(src) == ["POD010"]


def test_laundering_through_two_helpers():
    src = """
        import time


        def _raw():
            return time.time()


        def _stamp():
            return _raw() + 1.0


        def record(events):
            events.append(_stamp())
    """
    # _stamp's own consumption of _raw() is flagged, and the taint
    # still reaches record() through the second hop.
    assert codes(src) == ["POD010", "POD010"]


def test_injected_clock_idiom_is_sanctioned():
    src = """
        import time
        from typing import Callable, Optional

        Clock = Callable[[], float]
        _WALL_CLOCK: Clock = time.time


        def snapshot(clock: Optional[Clock] = None) -> float:
            return (clock if clock is not None else _WALL_CLOCK)()


        def consumer(events):
            events.append(snapshot())
    """
    assert codes(src) == []


def test_bare_statement_call_not_flagged():
    # A discarded return value launders nothing.
    src = """
        import time


        def _stamp():
            return time.time()


        def tick():
            _stamp()
    """
    assert codes(src) == []


def test_deterministic_scope_respected():
    src = """
        import time


        def _stamp():
            return time.time()


        def record(events):
            events.append(_stamp())
    """
    assert codes(src, path=NON_DET) == []


# -- POD008: laundered unseeded RNG ------------------------------------


def test_rng_draw_from_tainted_generator():
    src = """
        import numpy as np


        def _jitter():
            rng = np.random.default_rng()
            return float(rng.random())


        def offsets(out):
            out.append(_jitter())
    """
    assert codes(src) == ["POD008"]


def test_seeded_generator_is_clean():
    src = """
        import numpy as np


        def _jitter(seed):
            rng = np.random.default_rng(seed)
            return float(rng.random())


        def offsets(out):
            out.append(_jitter(0))
    """
    assert codes(src) == []


# -- POD009: unordered iteration into output ---------------------------


def test_annotated_mapping_param_iteration_flagged():
    src = """
        from typing import Dict, List


        def rows(counts: Dict[str, int]) -> List[str]:
            out: List[str] = []
            for name in counts:
                out.append(name)
            return out
    """
    assert flow(src) == [(7, "POD009")]


def test_sorted_iteration_is_clean():
    src = """
        from typing import Dict, List


        def rows(counts: Dict[str, int]) -> List[str]:
            out: List[str] = []
            for name in sorted(counts):
                out.append(name)
            return out
    """
    assert codes(src) == []


def test_dict_literal_iteration_is_clean():
    # A dict literal iterates in source order: deterministic.
    src = """
        def rows():
            table = {"b": 2, "a": 1}
            out = []
            for name, value in table.items():
                out.append((name, value))
            return out
    """
    assert codes(src) == []


def test_set_literal_iteration_flagged():
    src = """
        def rows(out):
            for name in {"a", "b"}:
                out.append(name)
    """
    assert codes(src) == ["POD009"]


def test_loop_without_order_sink_is_clean():
    src = """
        def total(counts: dict) -> int:
            acc = 0
            for name in counts:
                acc += 1
            return acc
    """
    assert codes(src) == []


def test_str_join_over_unordered_flagged():
    src = """
        from typing import Mapping


        def label(tags: Mapping[str, str]) -> str:
            return ",".join(f"{k}={v}" for k, v in tags.items())
    """
    assert codes(src) == ["POD009"]


# -- POD011: tainted sim-time equality ---------------------------------


def test_aliased_sim_time_equality_flagged():
    src = """
        def same(arrival_time: float, deadline: float) -> bool:
            a = arrival_time
            b = deadline
            return a == b
    """
    assert codes(src) == ["POD011"]


def test_timey_named_compare_left_to_pod003():
    # When the names are visibly timey the syntactic POD003 owns the
    # site; flow must not double-report.
    src = """
        def same(arrival_time: float, deadline: float) -> bool:
            return arrival_time == deadline
    """
    assert codes(src) == []


def test_int_annotated_param_not_sim_time():
    src = """
        def same(arrival_time: int, deadline: int) -> bool:
            a = arrival_time
            b = deadline
            return a == b
    """
    assert codes(src) == []


def test_accumulation_in_unordered_loop_flagged():
    src = """
        from typing import Set


        def total_wait(jobs: Set[object]) -> float:
            acc = 0.0
            for job in jobs:
                acc += job.arrival_time
            return acc
    """
    assert codes(src) == ["POD011"]


# -- POD012: frozen dataclass mutation ---------------------------------


def test_setattr_outside_post_init_flagged_everywhere():
    src = """
        def bump(config):
            object.__setattr__(config, "epoch", 2.0)
    """
    assert codes(src, path=NON_DET) == ["POD012"]


def test_setattr_in_post_init_sanctioned():
    src = """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Config:
            seed: int = 0

            def __post_init__(self):
                object.__setattr__(self, "seed", int(self.seed))
    """
    assert codes(src) == []


# -- summaries ---------------------------------------------------------


def test_summaries_record_wall_clock_returns():
    src = """
        import time


        def _stamp():
            return time.time()
    """
    report = analyze_files([(DET, textwrap.dedent(src))])
    summary = report.summaries["repro.sim.mod::_stamp"]
    assert Taint.WALL_CLOCK in summary.returns


def test_summaries_record_param_flow():
    src = """
        def identity(value):
            return value
    """
    report = analyze_files([(DET, textwrap.dedent(src))])
    summary = report.summaries["repro.sim.mod::identity"]
    assert summary.param_flow == frozenset({0})


def test_cross_module_laundering():
    helper = """
        import time


        def stamp():
            return time.time()
    """
    consumer = """
        from repro.sim.helper import stamp


        def record(events):
            events.append(stamp())
    """
    report = analyze_files(
        [
            ("src/repro/sim/helper.py", textwrap.dedent(helper)),
            ("src/repro/sim/consumer.py", textwrap.dedent(consumer)),
        ]
    )
    found = [(f.path, f.code) for f in report.findings]
    assert found == [("src/repro/sim/consumer.py", "POD010")]
