"""The ``repro lint --fix`` autofixer: edits are correct, minimal and
idempotent (a second --fix run is a no-op and the output lints clean).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.fix import apply_edits, fix_findings
from repro.analysis.lint import lint_paths, lint_source


def test_apply_edits_inserts_bottom_up():
    source = "a = x\nb = y\n"
    edits = [(1, 4, "sorted("), (1, 5, ")"), (2, 4, "f("), (2, 5, ")")]
    assert apply_edits(source, edits) == "a = sorted(x)\nb = f(y)\n"


def test_apply_edits_out_of_range_ignored():
    source = "a = 1\n"
    assert apply_edits(source, [(9, 0, "x"), (1, 99, "y")]) == source


def test_apply_edits_duplicates_collapse():
    source = "a = x\n"
    edits = [(1, 4, "sorted("), (1, 4, "sorted("), (1, 5, ")")]
    assert apply_edits(source, edits) == "a = sorted(x)\n"


# -- POD002 seed splicing ----------------------------------------------

DET = "src/repro/sim/mod.py"


def _fixed(source: str, path: str = DET) -> str:
    source = textwrap.dedent(source)
    findings = lint_source(source, path=path)
    edits = [e for f in findings for e in f.fixes]
    assert edits, "expected an autofixable finding"
    return apply_edits(source, edits)


def test_default_rng_seeded_from_seed_param():
    src = """
        import numpy as np


        def build(seed: int):
            return np.random.default_rng()
    """
    assert "np.random.default_rng(seed)" in _fixed(src)


def test_default_rng_seeded_from_config_param():
    src = """
        import numpy as np


        def build(config):
            return np.random.default_rng()
    """
    assert "np.random.default_rng(config.seed)" in _fixed(src)


def test_default_rng_literal_fallback():
    src = """
        import numpy as np

        RNG = np.random.default_rng()
    """
    assert "np.random.default_rng(0)" in _fixed(src)


# -- end-to-end idempotency --------------------------------------------

BUGGY = '''
from typing import Dict, List

import numpy as np


def histogram(counts: Dict[str, int]) -> List[str]:
    rows: List[str] = []
    for name in counts:
        rows.append(f"{name} {counts[name]}")
    return rows


def build_rng(seed: int):
    return np.random.default_rng()
'''


def _tree(tmp_path: Path) -> Path:
    mod = tmp_path / "src" / "repro" / "sim" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(BUGGY, encoding="utf-8")
    return mod


def test_fix_then_relint_clean_and_idempotent(tmp_path: Path):
    mod = _tree(tmp_path)

    report = lint_paths([str(mod)], flow=True)
    assert sorted(f.code for f in report.findings) == ["POD002", "POD009"]

    result = fix_findings(report.findings)
    assert result.files_changed == [str(mod)]
    assert result.findings_fixed == 2

    fixed = mod.read_text(encoding="utf-8")
    assert "for name in sorted(counts):" in fixed
    assert "np.random.default_rng(seed)" in fixed

    # The fixed tree lints clean...
    report = lint_paths([str(mod)], flow=True)
    assert report.ok

    # ...and a second --fix pass is a byte-level no-op.
    result = fix_findings(report.findings)
    assert not result
    assert mod.read_text(encoding="utf-8") == fixed
