"""The flow-mode driver: pragma accounting (POD090), the suppression
baseline, SARIF-adjacent report fields, and repo self-hosting.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List

from repro.analysis.lint import (
    Finding,
    lint_paths,
    lint_source,
    load_baseline,
    normalize_path,
    write_baseline,
)

REPO = Path(__file__).resolve().parents[2]


def _write_tree(tmp_path: Path, source: str) -> Path:
    mod = tmp_path / "src" / "repro" / "sim" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(source), encoding="utf-8")
    return mod


def _codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


# -- pragma accounting -------------------------------------------------


def test_used_pragma_suppresses_and_is_not_reported(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        import time


        def now():
            return time.time()  # pod: ignore[POD001]
        """,
    )
    # lint_source (no flow): suppression works as before...
    assert lint_source(
        mod.read_text(encoding="utf-8"), path="src/repro/sim/mod.py"
    ) == []
    # ...and in flow mode the pragma counts as used: no POD090.
    report = lint_paths([str(mod)], flow=True)
    assert report.ok


def test_unused_pragma_reported_in_flow_mode(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        X = 1  # pod: ignore[POD001]
        """,
    )
    report = lint_paths([str(mod)], flow=True)
    assert _codes(report.findings) == ["POD090"]
    assert "suppresses nothing" in report.findings[0].message


def test_unknown_code_in_pragma_reported(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        X = 1  # pod: ignore[POD999]
        """,
    )
    report = lint_paths([str(mod)], flow=True)
    assert _codes(report.findings) == ["POD090"]
    assert "POD999" in report.findings[0].message


def test_unused_pragma_not_reported_without_flow(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        X = 1  # pod: ignore[POD001]
        """,
    )
    report = lint_paths([str(mod)], flow=False)
    assert report.ok


def test_pragma_inside_string_is_inert(tmp_path: Path):
    # Before the tokenizer-based extraction a pragma in a string
    # literal suppressed findings on its line (and would now be a
    # false POD090).  It must do neither.
    mod = _write_tree(
        tmp_path,
        '''
        import time

        DOC = "suppress with  # pod: ignore[POD001]"
        t0 = time.time()
        ''',
    )
    report = lint_paths([str(mod)], flow=True)
    assert _codes(report.findings) == ["POD001"]


def test_pragma_rule_list_narrows(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        import time

        t0 = time.time()  # pod: ignore[POD001, POD002]
        """,
    )
    report = lint_paths([str(mod)], flow=True)
    # POD001 suppressed; the pragma is used, so no POD090 either.
    assert report.ok


# -- suppression baseline ----------------------------------------------


def test_baseline_roundtrip(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        import time

        t0 = time.time()
        """,
    )
    baseline = tmp_path / "baseline.json"

    dirty = lint_paths([str(mod)], flow=True)
    assert _codes(dirty.findings) == ["POD001"]

    lint_paths([str(mod)], flow=True, write_baseline_to=baseline)
    assert len(load_baseline(baseline)) == 1

    clean = lint_paths([str(mod)], flow=True, baseline=baseline)
    assert clean.ok
    assert clean.baselined == 1
    assert clean.stale_baseline == []


def test_baseline_entry_goes_stale_when_fixed(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        import time

        t0 = time.time()
        """,
    )
    baseline = tmp_path / "baseline.json"
    lint_paths([str(mod)], flow=True, write_baseline_to=baseline)

    mod.write_text("t0 = 0.0\n", encoding="utf-8")
    report = lint_paths([str(mod)], flow=True, baseline=baseline)
    assert report.findings == []
    assert report.baselined == 0
    assert len(report.stale_baseline) == 1
    assert "POD001" in report.stale_baseline[0]


def test_baseline_survives_line_number_drift(tmp_path: Path):
    mod = _write_tree(
        tmp_path,
        """
        import time

        t0 = time.time()
        """,
    )
    baseline = tmp_path / "baseline.json"
    lint_paths([str(mod)], flow=True, write_baseline_to=baseline)

    # Prepend unrelated lines: the finding moves but its fingerprint
    # (code, path, line text) does not.
    mod.write_text(
        "VERSION = 2\n\n" + mod.read_text(encoding="utf-8"), encoding="utf-8"
    )
    report = lint_paths([str(mod)], flow=True, baseline=baseline)
    assert report.ok
    assert report.baselined == 1


def test_missing_baseline_file_is_empty(tmp_path: Path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_write_baseline_is_deterministic(tmp_path: Path):
    findings = [
        Finding("POD001", "src/repro/sim/b.py", 3, 0, "m"),
        Finding("POD001", "src/repro/sim/a.py", 1, 0, "m"),
        Finding("POD001", "src/repro/sim/a.py", 1, 0, "m"),
    ]
    p1, p2 = tmp_path / "one.json", tmp_path / "two.json"
    write_baseline(p1, findings, {})
    write_baseline(p2, list(reversed(findings)), {})
    assert p1.read_text() == p2.read_text()


def test_normalize_path_anchors_at_tree_roots():
    assert normalize_path("/abs/repo/src/repro/sim/mod.py") == (
        "src/repro/sim/mod.py"
    )
    assert normalize_path("tests/analysis/test_lint.py") == (
        "tests/analysis/test_lint.py"
    )
    assert normalize_path("mod.py") == "mod.py"


# -- repo self-hosting -------------------------------------------------


def test_flow_tier_self_hosts_clean_over_src_and_tests():
    """The acceptance bar: ``repro lint --flow src tests`` is clean
    modulo the committed baseline, with zero stale entries."""
    report = lint_paths(
        [str(REPO / "src"), str(REPO / "tests")],
        flow=True,
        baseline=REPO / ".pod-baseline.json",
    )
    assert report.parse_errors == []
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.stale_baseline == []
