"""The seeded-bug fixture corpus: every POD008..POD012 fixture must
yield *exactly* its annotated finding -- no more, no less.

Each ``tests/analysis/corpus/pod*.py`` file contains one seeded
determinism bug marked with a ``# expect: PODxxx`` comment on the
offending line.  The corpus directory carries a ``.pod-lint-exclude``
marker so self-hosting lint runs over ``tests/`` skip it.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.analysis.flow import analyze_files
from repro.analysis.lint import EXCLUDE_MARKER, iter_python_files

CORPUS = Path(__file__).parent / "corpus"
FIXTURES = sorted(CORPUS.glob("pod*.py"))


def _expected(source: str) -> List[Tuple[int, str]]:
    out = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "# expect: " in line:
            out.append((lineno, line.split("# expect: ")[1].strip()))
    return out


def test_corpus_covers_every_flow_rule():
    covered = set()
    for fixture in FIXTURES:
        for _, code in _expected(fixture.read_text(encoding="utf-8")):
            covered.add(code)
    assert covered == {"POD008", "POD009", "POD010", "POD011", "POD012"}


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_yields_exactly_its_finding(fixture: Path):
    source = fixture.read_text(encoding="utf-8")
    expected = _expected(source)
    assert expected, f"{fixture.name} has no '# expect:' annotation"
    # Analysed at a deterministic-package path so scoped rules apply.
    report = analyze_files([(f"src/repro/sim/{fixture.name}", source)])
    assert not report.parse_errors
    got = sorted((f.line, f.code) for f in report.findings)
    assert got == sorted(expected), (
        f"{fixture.name}: expected exactly {sorted(expected)}, "
        f"got {got}"
    )


def test_corpus_is_excluded_from_directory_lints():
    assert (CORPUS / EXCLUDE_MARKER).exists()
    files = iter_python_files([str(Path(__file__).parent)])
    assert not any("corpus" in f.parts for f in files)
    # Explicit file arguments still lint.
    direct = iter_python_files([str(FIXTURES[0])])
    assert direct == [FIXTURES[0]]
