"""Property-based tests for the consistent-hash fingerprint router.

The cluster's correctness-by-construction claims, checked over random
memberships and fingerprint populations:

* **Determinism** -- routing is a pure function of (members, vnodes);
  two independently constructed rings always agree, regardless of the
  insertion order of their members.
* **Bounded disruption** -- adding one member to an N-node ring remaps
  roughly K/N of K fingerprints (we assert a generous upper bound, not
  the expectation), and every remapped key lands on the new member.
* **Exact removal** -- removing a member remaps *only* that member's
  keys; survivors keep every key they owned.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import FingerprintRouter

members = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=8, unique=True
)
fingerprints = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=300
)
vnodes = st.integers(min_value=8, max_value=64)


class TestRouterProperties:
    @given(members=members, fps=fingerprints, vnodes=vnodes)
    def test_routing_is_a_pure_function_of_membership(self, members, fps, vnodes):
        a = FingerprintRouter(members, vnodes=vnodes)
        b = FingerprintRouter(list(reversed(members)), vnodes=vnodes)
        assert a.route_many(fps) == b.route_many(fps)
        # and a member always owns its own shard entries
        assert set(a.route_many(fps)) <= set(members)

    @settings(max_examples=60)
    @given(
        n=st.integers(min_value=1, max_value=8),
        vnodes=st.integers(min_value=32, max_value=64),
    )
    def test_add_one_member_remaps_about_one_nth(self, n, vnodes):
        """Adding node N to an N-node ring moves ~K/(N+1) of K keys.

        The bound is statistical; with >= 32 vnodes and K = 4096 keys a
        2.5x-of-fair-share ceiling holds with huge margin (the pinned
        seeds make this deterministic in practice).
        """
        fps = list(range(4096))
        r = FingerprintRouter(list(range(n)), vnodes=vnodes)
        before = r.route_many(fps)
        r.add_member(n)
        after = r.route_many(fps)
        remapped = sum(1 for b, a in zip(before, after) if b != a)
        fair = len(fps) / (n + 1)
        assert remapped <= 2.5 * fair
        # monotone consistency: every remapped key moved TO the newcomer
        for b, a in zip(before, after):
            if b != a:
                assert a == n

    @given(members=members, fps=fingerprints, vnodes=vnodes)
    def test_exact_removal(self, members, fps, vnodes):
        if len(members) < 2:
            return  # cannot remove the last member
        r = FingerprintRouter(members, vnodes=vnodes)
        victim = members[0]
        before = r.route_many(fps)
        r.remove_member(victim)
        after = r.route_many(fps)
        survivors = set(members) - {victim}
        for b, a in zip(before, after):
            if b == victim:
                assert a in survivors  # orphaned keys re-home
            else:
                assert a == b  # survivors keep everything

    @given(members=members, fps=fingerprints, vnodes=vnodes)
    def test_add_remove_round_trip(self, members, fps, vnodes):
        """A join that immediately leaves restores the exact routing."""
        r = FingerprintRouter(members, vnodes=vnodes)
        before = r.route_many(fps)
        newcomer = max(members) + 1
        r.add_member(newcomer)
        r.remove_member(newcomer)
        assert r.route_many(fps) == before
