"""Property-based tests for the cache substrate (LRU, ghost, ARC)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.arc import ARCache
from repro.cache.ghost import GhostCache
from repro.cache.lru import LRUCache

keys = st.integers(min_value=0, max_value=30)
ops = st.lists(
    st.tuples(st.sampled_from(["put", "get", "remove", "pop"]), keys),
    max_size=200,
)


class TestLRUProperties:
    @given(ops=ops, capacity=st.integers(min_value=0, max_value=20))
    def test_capacity_invariant(self, ops, capacity):
        """used_bytes never exceeds capacity and always equals the sum
        of resident entry sizes."""
        c = LRUCache(capacity, default_entry_size=1)
        for op, k in ops:
            if op == "put":
                c.put(k)
            elif op == "get":
                c.get(k)
            elif op == "remove":
                c.remove(k)
            else:
                c.pop_lru()
            assert c.used_bytes <= max(capacity, 0)
            assert c.used_bytes == len(c)  # unit-size entries

    @given(ops=ops)
    def test_model_equivalence(self, ops):
        """LRU behaves like the obvious ordered-dict model."""
        from collections import OrderedDict

        cap = 5
        c = LRUCache(cap, default_entry_size=1)
        model = OrderedDict()
        for op, k in ops:
            if op == "put":
                c.put(k, k)
                if k in model:
                    model.pop(k)
                model[k] = k
                while len(model) > cap:
                    model.popitem(last=False)
            elif op == "get":
                got = c.get(k)
                if k in model:
                    model.move_to_end(k)
                    assert got == k
                else:
                    assert got is None
            elif op == "remove":
                c.remove(k)
                model.pop(k, None)
            else:
                popped = c.pop_lru()
                if model:
                    mk, _ = model.popitem(last=False)
                    assert popped[0] == mk
                else:
                    assert popped is None
            assert c.keys_lru_order() == list(model)

    @given(
        puts=st.lists(keys, max_size=60),
        new_cap=st.integers(min_value=0, max_value=10),
    )
    def test_resize_preserves_mru(self, puts, new_cap):
        c = LRUCache(30, default_entry_size=1)
        for k in puts:
            c.put(k)
        survivors_expected = c.keys_lru_order()[max(0, len(c) - new_cap):]
        c.resize(new_cap)
        assert c.keys_lru_order() == survivors_expected


class TestGhostProperties:
    @given(evictions=st.lists(keys, max_size=100), cap=st.integers(min_value=0, max_value=15))
    def test_bounded_and_most_recent_kept(self, evictions, cap):
        g = GhostCache(cap, default_entry_size=1)
        for k in evictions:
            g.record_eviction(k)
            assert g.used_bytes <= cap
        # every key still present must be among the most recent
        # distinct evictions
        recent = []
        for k in reversed(evictions):
            if k not in recent:
                recent.append(k)
        kept = set(list(g.keys_mru()))
        assert kept <= set(recent[:cap]) if cap else kept == set()

    @given(evictions=st.lists(keys, max_size=50))
    def test_hit_is_one_shot(self, evictions):
        g = GhostCache(100, default_entry_size=1)
        for k in evictions:
            g.record_eviction(k)
        for k in set(evictions):
            assert g.hit(k) is True
            assert g.hit(k) is False


class TestARCProperties:
    @given(
        accesses=st.lists(keys, min_size=1, max_size=300),
        cap=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50)
    def test_structural_invariants(self, accesses, cap):
        """The four ARC list-size invariants hold at every step."""
        c = ARCache(cap)
        for k in accesses:
            if c.get(k) is None:
                c.put(k, k)
            s = c.sizes()
            assert s["t1"] + s["t2"] <= cap
            assert s["t1"] + s["b1"] <= cap
            assert s["t1"] + s["t2"] + s["b1"] + s["b2"] <= 2 * cap
            assert 0 <= s["p"] <= cap
            # an entry is never in two lists at once
            lists = [set(c.t1), set(c.t2), set(c.b1), set(c.b2)]
            for i in range(4):
                for j in range(i + 1, 4):
                    assert not (lists[i] & lists[j])

    @given(accesses=st.lists(keys, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_cached_value_correct(self, accesses):
        c = ARCache(8)
        for k in accesses:
            got = c.get(k)
            if got is None:
                c.put(k, k * 7)
            else:
                assert got == k * 7
