"""Property-based tests for Map-table refcount consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup.map_table import MapTable
from repro.storage.allocator import RegionMap

LOGICAL = 64


def fresh_table():
    return MapTable(RegionMap(LOGICAL, 32, 8, 8))


ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear"]),
        st.integers(min_value=0, max_value=LOGICAL - 1),  # lba
        st.integers(min_value=0, max_value=LOGICAL + 31),  # pba
    ),
    max_size=200,
)


class TestMapTableProperties:
    @given(ops=ops)
    @settings(max_examples=80)
    def test_refcounts_match_reality(self, ops):
        """The refcount of every PBA equals the number of explicit
        entries pointing at it, at every step."""
        t = fresh_table()
        model = {}
        for op, lba, pba in ops:
            if op == "set":
                t.set_mapping(lba, pba)
                if pba == lba:
                    model.pop(lba, None)
                else:
                    model[lba] = pba
            else:
                t.clear_mapping(lba)
                model.pop(lba, None)
            # refcount oracle
            from collections import Counter

            counts = Counter(model.values())
            for p in set(list(counts) + [pba]):
                assert t.refs(p) == counts.get(p, 0)
            assert len(t) == len(model)

    @given(ops=ops)
    @settings(max_examples=80)
    def test_translate_matches_model(self, ops):
        t = fresh_table()
        model = {}
        for op, lba, pba in ops:
            if op == "set":
                t.set_mapping(lba, pba)
                if pba == lba:
                    model.pop(lba, None)
                else:
                    model[lba] = pba
            else:
                t.clear_mapping(lba)
                model.pop(lba, None)
        for lba in range(LOGICAL):
            assert t.translate(lba) == model.get(lba, lba)

    @given(ops=ops)
    @settings(max_examples=80)
    def test_nvram_counts_entries(self, ops):
        t = fresh_table()
        for op, lba, pba in ops:
            if op == "set":
                t.set_mapping(lba, pba)
            else:
                t.clear_mapping(lba)
            assert t.nvram.entries == len(t)
            assert t.nvram.peak_entries >= t.nvram.entries

    @given(ops=ops)
    @settings(max_examples=80)
    def test_choose_write_target_is_safe(self, ops):
        """The chosen in-place target is never a block some *other*
        LBA resolves to."""
        t = fresh_table()
        for op, lba, pba in ops:
            if op == "set":
                t.set_mapping(lba, pba)
            else:
                t.clear_mapping(lba)
        for lba in range(0, LOGICAL, 7):
            target = t.choose_write_target(lba)
            if target is None:
                continue
            for other in range(LOGICAL):
                if other != lba:
                    assert t.translate(other) != target

    @given(ops=ops, lbas=st.sets(st.integers(min_value=0, max_value=LOGICAL - 1)))
    @settings(max_examples=50)
    def test_live_pbas_counts_shared_once(self, ops, lbas):
        t = fresh_table()
        for op, lba, pba in ops:
            if op == "set":
                t.set_mapping(lba, pba)
            else:
                t.clear_mapping(lba)
        live = t.live_pbas(lbas)
        assert live == {t.translate(l) for l in lbas}
        assert len(live) <= len(lbas)
