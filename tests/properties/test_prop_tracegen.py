"""Property-based tests over randomly parameterised trace specs.

The generator must produce structurally valid traces for *any*
reasonable spec, not just the three calibrated presets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.format import Trace
from repro.traces.synthetic import CLASSES, TraceSpec, generate_trace


@st.composite
def trace_specs(draw):
    """A small random-but-valid TraceSpec."""
    write_ratio = draw(st.floats(min_value=0.2, max_value=0.95))
    # random class mix over the 4 classes
    raw = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in CLASSES]
    total = sum(raw)
    class_probs = {c: v / total for c, v in zip(CLASSES, raw)}
    sizes = draw(
        st.sampled_from(
            [
                {1: 1.0},
                {1: 0.5, 4: 0.5},
                {1: 0.3, 2: 0.3, 8: 0.4},
                {2: 0.6, 16: 0.4},
            ]
        )
    )
    return TraceSpec(
        name="prop",
        n_requests=draw(st.integers(min_value=20, max_value=300)),
        warmup_requests=draw(st.integers(min_value=0, max_value=100)),
        logical_blocks=draw(st.integers(min_value=2048, max_value=16384)),
        write_ratio=write_ratio,
        write_sizes=sizes,
        read_sizes=sizes,
        class_probs=class_probs,
        p_same_lba=draw(st.floats(min_value=0.0, max_value=1.0)),
        p_overwrite_unique=draw(st.floats(min_value=0.0, max_value=0.9)),
        zipf_s=draw(st.floats(min_value=0.0, max_value=1.5)),
        recent_segments=draw(st.integers(min_value=256, max_value=1024)),
        mean_phase_len=draw(st.integers(min_value=10, max_value=200)),
        p_cold_read=draw(st.floats(min_value=0.0, max_value=0.5)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


class TestGeneratorTotality:
    @given(spec=trace_specs())
    @settings(max_examples=40, deadline=None)
    def test_generates_valid_trace(self, spec):
        trace = generate_trace(spec)
        # Trace.__post_init__ validates monotone time & address bounds;
        # reaching here means it passed.  Extra invariants:
        assert isinstance(trace, Trace)
        assert len(trace) == spec.n_requests + spec.warmup_requests
        for rec in trace.records:
            assert rec.nblocks >= 1
            if rec.is_write:
                assert len(rec.fingerprints) == rec.nblocks
            else:
                assert rec.fingerprints is None

    @given(spec=trace_specs())
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_spec(self, spec):
        a = generate_trace(spec)
        b = generate_trace(spec)
        assert a.records == b.records

    @given(spec=trace_specs())
    @settings(max_examples=20, deadline=None)
    def test_replayable_through_a_scheme(self, spec):
        """Any generated trace is consumable end-to-end."""
        from repro.baselines.base import SchemeConfig
        from repro.core.select_dedupe import SelectDedupe
        from repro.sim.replay import replay_trace

        trace = generate_trace(spec)
        scheme = SelectDedupe(
            SchemeConfig(logical_blocks=spec.logical_blocks, memory_bytes=64 * 1024)
        )
        result = replay_trace(trace, scheme)
        assert result.metrics.requests == spec.n_requests
