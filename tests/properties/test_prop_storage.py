"""Property-based tests for RAID mapping, coalescing and allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.sim.request import OpType
from repro.storage.allocator import LogAllocator
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.volume import VolumeOp, coalesce_extents

SU = BLOCKS_PER_STRIPE_UNIT

geometries = st.sampled_from(
    [
        RaidGeometry(RaidLevel.RAID5, 3),
        RaidGeometry(RaidLevel.RAID5, 4),
        RaidGeometry(RaidLevel.RAID5, 8),
        RaidGeometry(RaidLevel.RAID0, 2),
        RaidGeometry(RaidLevel.RAID0, 4),
        RaidGeometry(RaidLevel.SINGLE, 1),
    ]
)
extents = st.tuples(
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=200),
)


class TestRaidProperties:
    @given(geometry=geometries, extent=extents)
    def test_read_block_conservation(self, geometry, extent):
        """A read extent maps to disk ops covering exactly its blocks."""
        start, length = extent
        ops = RaidArray(geometry).map_read(VolumeOp(OpType.READ, start, length))
        assert sum(op.nblocks for op in ops) == length
        for op in ops:
            assert 0 <= op.disk_id < geometry.ndisks

    @given(geometry=geometries, extent=extents)
    def test_read_roundtrip_locate(self, geometry, extent):
        """Every block of the extent locates inside one of the ops."""
        start, length = extent
        r = RaidArray(geometry)
        ops = r.map_read(VolumeOp(OpType.READ, start, length))
        slots = set()
        for op in ops:
            for i in range(op.nblocks):
                slots.add((op.disk_id, op.pba + i))
        assert len(slots) == length
        for pba in range(start, start + length):
            disk, dpba, _ = r.locate(pba)
            assert (disk, dpba) in slots

    @given(extent=extents, ndisks=st.integers(min_value=3, max_value=8))
    @settings(max_examples=60)
    def test_raid5_write_parity_on_parity_disk_only(self, extent, ndisks):
        start, length = extent
        r = RaidArray(RaidGeometry(RaidLevel.RAID5, ndisks))
        ops = r.map_write(VolumeOp(OpType.WRITE, start, length))
        data_written = 0
        for op in ops:
            row = op.pba // SU
            parity = r.parity_disk_of_row(row)
            if op.op is OpType.WRITE and op.disk_id != parity:
                data_written += op.nblocks
        assert data_written == length

    @given(extent=extents, ndisks=st.integers(min_value=3, max_value=6))
    @settings(max_examples=60)
    def test_raid5_small_write_amplification_bounded(self, extent, ndisks):
        """Total traffic of a write is bounded by 4x the data (RMW
        worst case) plus a stripe unit per touched row."""
        start, length = extent
        r = RaidArray(RaidGeometry(RaidLevel.RAID5, ndisks))
        ops = r.map_write(VolumeOp(OpType.WRITE, start, length))
        total = sum(op.nblocks for op in ops)
        rows = (start + length - 1) // ((ndisks - 1) * SU) - start // ((ndisks - 1) * SU) + 1
        assert total <= 4 * length + rows * SU


class TestCoalesceProperties:
    @given(pbas=st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_runs_cover_exactly_the_input_set(self, pbas):
        runs = coalesce_extents(pbas)
        covered = set()
        for start, length in runs:
            covered.update(range(start, start + length))
        assert covered == set(pbas)

    @given(pbas=st.lists(st.integers(min_value=0, max_value=500), max_size=100))
    def test_runs_are_maximal_and_disjoint(self, pbas):
        runs = coalesce_extents(pbas)
        for (s1, l1), (s2, l2) in zip(runs, runs[1:]):
            assert s1 + l1 < s2  # disjoint and non-adjacent


class TestAllocatorProperties:
    @given(
        ops=st.lists(st.sampled_from(["alloc", "free"]), max_size=150),
        size=st.integers(min_value=1, max_value=40),
    )
    def test_no_double_allocation(self, ops, size):
        a = LogAllocator(base=100, nblocks=size)
        live = set()
        freed_order = []
        for op in ops:
            if op == "alloc":
                if a.free_count == 0:
                    continue
                b = a.allocate()
                assert b not in live
                assert a.owns(b)
                live.add(b)
            elif live:
                b = live.pop()
                a.free(b)
                freed_order.append(b)
            assert a.allocated_count == len(live)
            assert a.free_count == size - len(live)
