"""Property-based robustness: arbitrary fault plans never corrupt data.

Hypothesis draws random fault plans -- any mix of latent sector
errors, fail-slow windows, a mid-run member failure, NVRAM losses and
index corruption, at random times with random seeds -- and replays a
real (scaled) web-vm trace under each.  Whatever the plan, three
things must hold:

* the end-to-end content oracle sees zero mismatches: every readable
  block returns the content last written to it (at-risk blocks from
  unrecoverable faults are *counted*, never silently wrong);
* the POD invariant sanitizer, attached in accumulate mode
  (``fail_fast=False``) so hypothesis shrinks to the minimal breaking
  plan, finds no structural violation in the final state;
* the injector's own accounting balances (every injected latent error
  is recovered, healed, or still latent -- never lost).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import PodSanitizer
from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from repro.faults import FaultPlan
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace

_TRACE = generate_trace(WEB_VM, scale=0.01)
_SPAN = _TRACE.records[-1].time

times = st.floats(min_value=0.5, max_value=_SPAN, allow_nan=False)

lse = st.fixed_dictionaries({"random_count": st.integers(0, 12)})

fail_slow_window = st.builds(
    lambda disk, start, span, mult: {
        "disk": disk,
        "start": start,
        "end": start + span,
        "multiplier": mult,
    },
    disk=st.integers(0, 3),
    start=times,
    span=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    mult=st.floats(min_value=1.0, max_value=6.0, allow_nan=False),
)

member = st.fixed_dictionaries(
    {
        "disk": st.integers(0, 3),
        "time": times,
        "rows_per_batch": st.integers(16, 512),
        "interval": st.floats(min_value=0.005, max_value=0.05, allow_nan=False),
        "capacity_aware": st.booleans(),
    }
)

nvram = st.fixed_dictionaries(
    {
        "time": times,
        "torn_entries": st.integers(0, 8),
        "lose_journal_tail": st.integers(0, 30),
        "tear_journal_tail": st.integers(0, 4),
    }
)

index = st.fixed_dictionaries(
    {"time": times, "entries": st.integers(1, 3)}
)

plans = st.fixed_dictionaries(
    {"seed": st.integers(0, 2**16)},
    optional={
        "latent_sector_errors": lse,
        "fail_slow": st.lists(fail_slow_window, max_size=2),
        "member_failure": member,
        "nvram_loss": st.lists(nvram, max_size=2),
        "index_corruption": st.lists(index, max_size=2),
    },
).map(FaultPlan.from_dict)


def replay_with_oracles(plan, cls=SelectDedupe):
    scheme = cls(
        SchemeConfig(
            logical_blocks=_TRACE.logical_blocks, memory_bytes=96 * 1024
        )
    )
    sanitizer = PodSanitizer(fail_fast=False)
    sanitizer.attach(scheme)
    result = replay_trace(_TRACE, scheme, ReplayConfig(faults=plan))
    sanitizer.check_scheme(scheme, _SPAN + 1.0)
    return result, sanitizer


class TestRandomFaultPlans:
    @given(plan=plans)
    @settings(max_examples=25, deadline=None)
    def test_no_plan_corrupts_data_or_state(self, plan):
        result, sanitizer = replay_with_oracles(plan)
        assert sanitizer.violations == [], [
            v.render() for v in sanitizer.violations
        ]
        stats = result.fault_stats
        assert stats is not None
        assert stats["oracle"]["mismatches"] == 0
        c = stats["counters"]
        assert all(v >= 0 for v in c.values())
        # latent-error conservation: injected errors are recovered,
        # healed by overwrites, or still latent -- never lost.  The
        # counters dict is sparse (only touched keys appear).
        assert c.get("lse_injected", 0) == (
            c.get("lse_sectors_recovered", 0)
            + c.get("lse_healed_by_write", 0)
            + c.get("lse_still_latent", 0)
        )

    @given(plan=plans)
    @settings(max_examples=8, deadline=None)
    def test_plans_replay_deterministically(self, plan):
        a, _ = replay_with_oracles(plan)
        b, _ = replay_with_oracles(plan)
        assert a.fault_stats == b.fault_stats
        assert a.metrics.as_dict() == b.metrics.as_dict()

    @given(plan=plans)
    @settings(max_examples=8, deadline=None)
    def test_pod_scheme_survives_random_plans(self, plan):
        result, sanitizer = replay_with_oracles(plan, cls=POD)
        assert sanitizer.violations == [], [
            v.render() for v in sanitizer.violations
        ]
        assert result.fault_stats["oracle"]["mismatches"] == 0
