"""Property-based tests for the engine and the SSD model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.request import DiskOp, OpType
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.scheduler import DiskScheduler, SchedulingPolicy
from repro.storage.ssd import Ssd, SsdParams

CAP = 1 << 18

op_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=CAP - 64),  # pba
        st.integers(min_value=1, max_value=64),  # nblocks
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=40,
)


def _ops(raw):
    return [
        DiskOp(0, OpType.WRITE if w else OpType.READ, pba, n) for pba, n, w in raw
    ]


class TestEngineProperties:
    @given(raw=op_lists)
    @settings(max_examples=60)
    def test_completion_monotone_and_busy_conserved(self, raw):
        disk = Disk(DiskParams(total_blocks=CAP))
        sim = Simulator([disk], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)))
        done_prev = 0.0
        for op in _ops(raw):
            done = sim.service_disk_ops(0.0, [op])
            # FCFS: completions never go backwards
            assert done >= done_prev
            done_prev = done
        # busy accounting: the disk was busy exactly busy_time, and the
        # last completion equals the accumulated busy time (all ops
        # were issued at t=0, no idling).
        assert done_prev == sum(
            [disk.busy_time]
        )  # single disk: completion == total service

    @given(raw=op_lists)
    @settings(max_examples=40, deadline=None)
    def test_event_fcfs_equals_analytic(self, raw):
        ops = _ops(raw)
        disk_a = Disk(DiskParams(total_blocks=CAP))
        sim_a = Simulator([disk_a], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)))
        analytic = sim_a.service_disk_ops(0.0, ops)

        disk_e = Disk(DiskParams(total_blocks=CAP))
        sched = DiskScheduler(disk_e, SchedulingPolicy.FCFS)
        sim_e = Simulator(
            [disk_e], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)), schedulers=[sched]
        )
        got = []
        sim_e.issue_disk_ops(ops, got.append)
        sim_e.run()
        assert got and abs(got[0] - analytic) < 1e-9
        assert disk_e.head == disk_a.head

    @given(raw=op_lists)
    @settings(max_examples=40, deadline=None)
    def test_clook_serves_everything(self, raw):
        ops = _ops(raw)
        disk = Disk(DiskParams(total_blocks=CAP))
        sched = DiskScheduler(disk, SchedulingPolicy.CLOOK)
        sim = Simulator(
            [disk], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)), schedulers=[sched]
        )
        got = []
        sim.issue_disk_ops(ops, got.append)
        sim.run()
        assert len(got) == 1
        assert disk.ops_serviced == len(ops)
        assert disk.blocks_moved == sum(op.nblocks for op in ops)
        # completion equals the accumulated service time (no idling:
        # everything was submitted at t=0).  NOTE: C-LOOK is a greedy
        # heuristic and can lose to FCFS on adversarial tiny instances
        # (hypothesis found one), so no per-instance FCFS comparison
        # here -- the aggregate advantage is asserted on realistic
        # workloads in tests/integration/test_scheduling_replay.py.
        assert abs(got[0] - disk.busy_time) < 1e-9


class TestSsdProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=50)
    )
    def test_fcfs_accumulates(self, sizes):
        ssd = Ssd(SsdParams())
        total = 0.0
        for n in sizes:
            done = ssd.service(0.0, n)
            total += ssd.params.service_time(n)
            assert done == sum([ssd.busy_time])
        assert ssd.blocks_moved == sum(sizes)
        assert abs(ssd.busy_time - total) < 1e-12
