"""Property-based lease state machine: the control plane under chaos.

Hypothesis drives the pure :class:`~repro.jobs.store.JobStore` with
arbitrary interleavings of claims, clock advances, recovery sweeps and
(possibly long-superseded) commit attempts -- no simulator involved.
Whatever the interleaving, three invariants must hold:

* **mutual exclusion** -- at most one ``(worker, epoch)`` handle
  passes the fence at any instant, and every accepted commit comes
  from the record's current owner at its current epoch;
* **eventual re-claim** -- a lease the sweep expires returns the job
  to claimable; the next claim bumps the epoch and is counted as a
  stale re-claim, and driving the store to completion re-claims every
  expired lease (detections == re-claims at the end);
* **epoch fencing** -- renew/commit/complete from a superseded handle
  are rejected and apply nothing, so the oracle step ledger still
  chains ``0 -> total`` with no lost and no double-applied step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.oracle import ContentOracle
from repro.jobs import JobState, JobStore, LeasePolicy, LeasedJob, Step
from repro.jobs.store import NO_OWNER


class CountJob(LeasedJob):
    """Toy data-plane job honouring plan/commit separation."""

    kind = "count"

    def __init__(self, total):
        self._total = total
        self.cursor = 0

    def done(self):
        return self.cursor >= self._total

    def progress(self):
        return self.cursor / self._total

    def total(self):
        return self._total

    def run_step(self, now):
        start = self.cursor

        def commit():
            self.cursor = start + 1

        return Step(now, (start, start + 1), commit)

    def summary(self):
        return {"cursor": self.cursor}


def live_handles(store, rec, handles):
    """Handles that would currently pass the store's fence."""
    return [
        (w, e)
        for (w, e) in handles
        if rec.state is JobState.RUNNING and rec.owner == w and rec.epoch == e
    ]


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_arbitrary_interleavings_preserve_all_invariants(data):
    total = data.draw(st.integers(1, 6), label="total")
    workers = data.draw(st.integers(2, 4), label="workers")
    duration = data.draw(
        st.floats(0.05, 2.0, allow_nan=False), label="lease_duration"
    )
    lease = LeasePolicy(duration=duration, poll_interval=0.01, sweep_interval=0.01)
    store = JobStore(lease)
    job = CountJob(total)
    rec = store.submit("count", job, interval=0.01)
    oracle = ContentOracle()
    oracle.note_job_total("count", total)

    now = 0.0
    # every (worker, epoch) handle the store ever granted, with the
    # step each holder planned from the committed cursor at claim time
    handles = []  # [worker, epoch, planned Step]

    def plan(worker, epoch):
        handles.append([worker, epoch, job.run_step(now)])

    def try_commit(handle):
        worker, epoch, step = handle
        cursor_before = job.cursor
        ok = store.commit(rec, worker, epoch, now)
        if ok:
            # mutual exclusion: only the current owner at the current
            # epoch ever gets a commit accepted
            assert rec.owner == worker and rec.epoch == epoch
            step.commit()
            oracle.note_job_step("count", *step.span)
            # plan/commit separation: exactly one unit applied, from
            # the committed cursor the step was planned at
            assert job.cursor == cursor_before + 1 == rec.steps_committed
            if not job.done():
                handle[2] = job.run_step(now)  # next step, fresh cursor
        else:
            assert job.cursor == cursor_before  # fenced => nothing applied
        return ok

    for _ in range(64):
        if rec.state is JobState.DONE:
            break
        action = data.draw(
            st.sampled_from(["claim", "commit", "advance", "sweep"]),
            label="action",
        )
        if action == "claim":
            worker = data.draw(st.integers(0, workers - 1), label="claimant")
            got = store.claim(worker, now)
            if rec.state is JobState.RUNNING:
                if got is not None:
                    plan(worker, rec.epoch)
            else:
                assert got is None
        elif action == "commit" and handles:
            idx = data.draw(st.integers(0, len(handles) - 1), label="handle")
            handle = handles[idx]
            if try_commit(handle) and job.done():
                assert store.complete(rec, handle[0], handle[1])
                oracle.note_job_done("count")
        elif action == "advance":
            now += data.draw(
                st.floats(0.01, 3.0, allow_nan=False), label="dt"
            )
        elif action == "sweep":
            for expired in store.sweep(now):
                assert expired.state is JobState.PENDING
                assert expired.owner == NO_OWNER and expired.stale

        # mutual exclusion, checked after *every* action: at most one
        # handle ever granted can pass the fence right now
        assert len(live_handles(store, rec, [(h[0], h[1]) for h in handles])) <= 1

    # eventual re-claim: drive the store to completion -- every lease
    # the sweep expired must be re-claimable and the job must finish
    while rec.state is not JobState.DONE:
        now += lease.duration + 0.01
        store.sweep(now)
        got = store.claim(0, now)
        if got is None:
            continue
        plan(0, rec.epoch)
        handle = handles[-1]
        while not job.done():
            assert try_commit(handle)
        assert store.complete(rec, 0, rec.epoch)
        oracle.note_job_done("count")

    assert job.cursor == total
    assert rec.steps_committed == total == store.counters["steps_committed"]
    # every stale lease detected was eventually re-claimed
    assert (
        store.counters["stale_leases_detected"]
        == store.counters["stale_lease_reclaims"]
    )
    assert rec.claims == 1 + rec.reclaims
    # the ledger proves no step was lost or double-applied
    assert oracle.verify_job_steps() == []


@given(
    duration=st.floats(0.05, 5.0, allow_nan=False),
    overshoot=st.floats(0.001, 10.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_expired_lease_is_reclaimed_at_the_next_epoch(duration, overshoot):
    lease = LeasePolicy(duration=duration, poll_interval=0.01, sweep_interval=0.01)
    store = JobStore(lease)
    rec = store.submit("count", CountJob(3), interval=0.01)
    assert store.claim(0, 0.0) is rec
    epoch = rec.epoch

    # a sweep at (or before) expiry is a no-op; one past it expires
    assert store.sweep(rec.lease_expiry) == []
    t = rec.lease_expiry + overshoot
    assert store.sweep(t) == [rec]
    assert rec.state is JobState.PENDING and rec.owner == NO_OWNER
    assert store.counters["stale_leases_detected"] == 1

    got = store.claim(1, t)
    assert got is rec
    assert rec.epoch == epoch + 1
    assert rec.last_claim_stale and rec.reclaims == 1
    assert store.counters["stale_lease_reclaims"] == 1


@given(
    steps_before=st.integers(0, 3),
    same_worker=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_epoch_fencing_rejects_every_superseded_write(steps_before, same_worker):
    lease = LeasePolicy(duration=0.5, poll_interval=0.01, sweep_interval=0.01)
    store = JobStore(lease)
    job = CountJob(steps_before + 2)
    rec = store.submit("count", job, interval=0.01)
    store.claim(0, 0.0)
    now = 0.0
    for _ in range(steps_before):
        step = job.run_step(now)
        assert store.commit(rec, 0, 1, now)
        step.commit()

    # the lease expires and is re-claimed -- possibly by the *same*
    # worker id: the epoch alone must fence the old handle
    now = rec.lease_expiry + 0.01
    store.sweep(now)
    new_worker = 0 if same_worker else 1
    store.claim(new_worker, now)
    assert rec.epoch == 2

    cursor = job.cursor
    assert not store.renew(rec, 0, 1, now)
    assert not store.commit(rec, 0, 1, now)
    assert not store.complete(rec, 0, 1)
    assert store.counters["fenced_renewals"] == 1
    assert store.counters["fenced_commits"] == 1
    assert store.counters["fenced_completions"] == 1
    assert job.cursor == cursor and rec.steps_committed == steps_before
    assert rec.state is JobState.RUNNING  # fenced complete didn't end it

    # while the live handle works fine
    assert store.renew(rec, new_worker, 2, now)
    assert store.commit(rec, new_worker, 2, now)
