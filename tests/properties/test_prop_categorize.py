"""Property-based tests for the Figure-5 categoriser."""

from typing import List, Optional

from hypothesis import given
from hypothesis import strategies as st

from repro.core.categorize import Category, categorize_write, sequential_runs

dup_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=60)),
    min_size=1,
    max_size=24,
)
thresholds = st.integers(min_value=1, max_value=6)


class TestRunsProperties:
    @given(dups=dup_lists)
    def test_runs_partition_redundant_chunks(self, dups):
        runs = sequential_runs(dups)
        covered: List[int] = []
        for start, length in runs:
            covered.extend(range(start, start + length))
        redundant = [i for i, d in enumerate(dups) if d is not None]
        assert covered == redundant

    @given(dups=dup_lists)
    def test_runs_are_sequential_on_disk(self, dups):
        for start, length in sequential_runs(dups):
            base = dups[start]
            for j in range(length):
                assert dups[start + j] == base + j

    @given(dups=dup_lists)
    def test_runs_are_maximal(self, dups):
        runs = sequential_runs(dups)
        for start, length in runs:
            if start > 0 and dups[start - 1] is not None:
                assert dups[start - 1] != dups[start] - 1
            end = start + length
            if end < len(dups) and dups[end] is not None:
                assert dups[end] != dups[end - 1] + 1


class TestCategorizeProperties:
    @given(dups=dup_lists, threshold=thresholds)
    def test_totality_and_consistency(self, dups, threshold):
        d = categorize_write(dups, threshold)
        # decision fields are mutually consistent
        assert set(d.dedupe_chunks) <= set(d.redundant_chunks)
        assert d.redundant_chunks == [i for i, x in enumerate(dups) if x is not None]
        if d.category in (Category.UNIQUE, Category.SCATTERED_PARTIAL):
            assert d.dedupe_chunks == []
        if d.category is Category.FULLY_REDUNDANT:
            assert d.dedupe_chunks == list(range(len(dups)))

    @given(dups=dup_lists, threshold=thresholds)
    def test_deduped_chunks_always_sequential_runs(self, dups, threshold):
        """Whatever is deduplicated lies on sequentially stored
        duplicates -- the anti-fragmentation guarantee."""
        d = categorize_write(dups, threshold)
        i = 0
        chunks = sorted(d.dedupe_chunks)
        while i < len(chunks):
            j = i
            while (
                j + 1 < len(chunks)
                and chunks[j + 1] == chunks[j] + 1
                and dups[chunks[j + 1]] == dups[chunks[j]] + 1
            ):
                j += 1
            run_len = j - i + 1
            # each deduped run is either the whole request (cat 1) or
            # at least `threshold` long (cat 3)
            assert run_len == len(dups) or run_len >= threshold
            i = j + 1

    @given(dups=dup_lists)
    def test_threshold_monotonicity(self, dups):
        """Raising the threshold never dedupes more chunks."""
        previous = None
        for threshold in (1, 2, 3, 4, 5):
            count = len(categorize_write(dups, threshold).dedupe_chunks)
            if previous is not None:
                assert count <= previous
            previous = count

    @given(dups=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=24))
    def test_all_redundant_never_unique(self, dups):
        d = categorize_write(list(dups))
        assert d.category is not Category.UNIQUE
