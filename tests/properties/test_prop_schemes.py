"""Property-based end-to-end integrity: every scheme must return, for
every LBA, the content most recently written to it -- whatever the
deduplication decisions were.  This is the strongest correctness
statement about the whole write path (categoriser, map table,
redirection, reclamation, caches).

Every generated workload additionally runs under a
:class:`~repro.analysis.sanitizer.PodSanitizer` in accumulate mode
(``fail_fast=False``): the sanitizer validates each dedupe decision as
it is made and the whole structural state afterwards, so hypothesis
shrinks straight to the minimal workload that breaks an invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import PodSanitizer
from repro.baselines.base import SchemeConfig
from repro.baselines.full_dedupe import FullDedupe
from repro.baselines.idedup import IDedup
from repro.baselines.iodedup import IODedup
from repro.baselines.native import Native
from repro.baselines.postprocess import PostProcessDedupe
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from repro.sim.request import IORequest

LOGICAL = 512

write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=LOGICAL - 9),  # lba
        st.lists(st.integers(min_value=1, max_value=25), min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=80,
)

scheme_classes = st.sampled_from(
    [Native, FullDedupe, IDedup, SelectDedupe, POD, IODedup, PostProcessDedupe]
)


def run_workload(cls, writes, epoch_every=0):
    scheme, expected, sanitizer = run_sanitized_workload(
        cls, writes, epoch_every=epoch_every
    )
    assert sanitizer.violations == [], [v.render() for v in sanitizer.violations]
    return scheme, expected


def run_sanitized_workload(cls, writes, epoch_every=0):
    """Replay ``writes`` with a whole-state invariant oracle attached.

    The sanitizer runs in accumulate mode so a workload completes even
    when an invariant breaks; callers assert on ``.violations`` and
    get every violation (with its code) in the failure message.
    """
    scheme = cls(
        SchemeConfig(
            logical_blocks=LOGICAL,
            memory_bytes=32 * 1024,
            idedup_threshold=3,
        )
    )
    sanitizer = PodSanitizer(fail_fast=False)
    sanitizer.attach(scheme)
    expected = {}
    now = 0.0
    for i, (lba, fps) in enumerate(writes):
        now += 1e-3
        scheme.process(IORequest.write(time=now, lba=lba, fingerprints=fps), now)
        for k, fp in enumerate(fps):
            expected[lba + k] = fp
        if epoch_every and i % epoch_every == 0:
            scheme.on_epoch(now)
    sanitizer.check_scheme(scheme, now)
    return scheme, expected, sanitizer


class TestSchemeIntegrity:
    @given(writes=write_ops, cls=scheme_classes)
    @settings(max_examples=60, deadline=None)
    def test_read_after_write_integrity(self, writes, cls):
        scheme, expected = run_workload(cls, writes)
        assert scheme.check_integrity(expected) == []

    @given(writes=write_ops)
    @settings(max_examples=30, deadline=None)
    def test_pod_integrity_with_epochs(self, writes):
        scheme, expected = run_workload(POD, writes, epoch_every=5)
        assert scheme.check_integrity(expected) == []

    @given(writes=write_ops)
    @settings(max_examples=30, deadline=None)
    def test_postprocess_integrity_with_background_passes(self, writes):
        scheme, expected = run_workload(PostProcessDedupe, writes, epoch_every=3)
        scheme.on_epoch(1e9)  # final pass over remaining dirty blocks
        assert scheme.check_integrity(expected) == []

    @given(writes=write_ops, cls=scheme_classes)
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeds_native(self, writes, cls):
        scheme, expected = run_workload(cls, writes)
        native_capacity = len({l for l, _ in expected.items()})
        assert scheme.capacity_blocks() <= native_capacity
        # and is exactly the number of distinct physical blocks
        assert scheme.capacity_blocks() == len(
            scheme.map_table.live_pbas(scheme.written_lbas)
        )

    @given(writes=write_ops, cls=scheme_classes)
    @settings(max_examples=40, deadline=None)
    def test_counters_consistent(self, writes, cls):
        scheme, _ = run_workload(cls, writes)
        total_blocks = sum(len(fps) for _, fps in writes)
        assert scheme.writes_total == len(writes)
        assert scheme.write_blocks_total == total_blocks
        handled = (
            scheme.write_blocks_written
            + scheme.write_blocks_deduped
        )
        assert handled == total_blocks
        assert scheme.write_requests_removed <= scheme.writes_total

    @given(writes=write_ops, cls=scheme_classes)
    @settings(max_examples=40, deadline=None)
    def test_sanitizer_oracle_stays_clean(self, writes, cls):
        """The POD invariant sanitizer, run as a whole-state oracle
        over arbitrary workloads, finds nothing: every dedupe decision
        is policy-conformant and the Map/Index/cache/NVRAM state is
        structurally sound afterwards (codes INV-* in
        repro.analysis.sanitizer)."""
        scheme, _, sanitizer = run_sanitized_workload(cls, writes, epoch_every=7)
        assert sanitizer.violations == [], [
            v.render() for v in sanitizer.violations
        ]
        assert sanitizer.stats.checks_run >= 1
        if scheme.uses_fingerprints:
            assert sanitizer.stats.decisions_validated == len(writes)

    @given(writes=write_ops)
    @settings(max_examples=30, deadline=None)
    def test_referenced_blocks_keep_their_content(self, writes):
        """After any workload, every explicit map entry points at a
        physical block holding exactly the content last written to
        that LBA (no dangling or clobbered references)."""
        scheme, expected = run_workload(SelectDedupe, writes)
        for lba in scheme.written_lbas:
            pba = scheme.map_table.translate(lba)
            assert scheme.content.read(pba) == expected[lba]
