"""Property-based tests for R-way replica placement on the ring.

The replicated directory's availability story rests on three
structural properties of ``route_replicas`` / ``ReplicaPlacer``,
checked here over random memberships and fingerprint populations:

* **Distinctness and coverage** -- a replica set always holds exactly
  ``min(R, N)`` *distinct* members, all of them ring members, with the
  primary (``route``) first.
* **Stability under unrelated change** -- adding a member never
  disturbs a replica set the newcomer did not join: survivors keep
  their relative order.
* **Exact removal** -- removing a member rewrites only the replica
  sets that member appeared in, and in those sets the survivors keep
  their relative order (the replacement is appended by the clockwise
  walk, never spliced into the middle arbitrarily).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.directory import ReplicaPlacer, replicas
from repro.cluster.router import FingerprintRouter

members = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=8, unique=True
)
fingerprints = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=200
)
vnodes = st.integers(min_value=8, max_value=64)
replication = st.integers(min_value=1, max_value=4)


def _survivor_order(seq, keep):
    return [m for m in seq if m in keep]


class TestReplicaProperties:
    @given(members=members, fps=fingerprints, vnodes=vnodes, r=replication)
    def test_distinct_members_primary_first(self, members, fps, vnodes, r):
        router = FingerprintRouter(members, vnodes=vnodes)
        for fp in fps:
            rs = replicas(router, fp, r)
            assert len(rs) == min(r, len(members))
            assert len(set(rs)) == len(rs)
            assert set(rs) <= set(members)
            assert rs[0] == router.route(fp)

    @given(members=members, fps=fingerprints, vnodes=vnodes, r=replication)
    def test_r1_is_plain_routing(self, members, fps, vnodes, r):
        router = FingerprintRouter(members, vnodes=vnodes)
        del r
        for fp in fps:
            assert replicas(router, fp, 1) == [router.route(fp)]

    @given(members=members, fps=fingerprints, vnodes=vnodes, r=replication)
    def test_placer_agrees_with_free_function(self, members, fps, vnodes, r):
        router = FingerprintRouter(members, vnodes=vnodes)
        placer = ReplicaPlacer(router, r)
        for fp in fps:
            rs = placer.replicas(fp)
            assert rs == replicas(router, fp, r)
            assert placer.primary(fp) == rs[0]

    @settings(max_examples=60)
    @given(
        n=st.integers(min_value=2, max_value=8),
        vnodes=st.integers(min_value=32, max_value=64),
        r=st.integers(min_value=2, max_value=3),
    )
    def test_add_member_keeps_untouched_sets_stable(self, n, vnodes, r):
        fps = list(range(1024))
        router = FingerprintRouter(list(range(n)), vnodes=vnodes)
        before = {fp: replicas(router, fp, r) for fp in fps}
        router.add_member(n)
        for fp in fps:
            after = replicas(router, fp, r)
            if n not in after:
                # The newcomer did not join this set: nothing changed.
                assert after == before[fp]
            else:
                # It did: everyone else keeps their relative order.
                keep = set(after) - {n}
                assert _survivor_order(after, keep) == _survivor_order(
                    before[fp], keep
                )

    @settings(max_examples=60)
    @given(
        n=st.integers(min_value=3, max_value=8),
        vnodes=st.integers(min_value=32, max_value=64),
        r=st.integers(min_value=2, max_value=3),
        victim_idx=st.integers(min_value=0, max_value=7),
    )
    def test_remove_member_moves_only_its_sets(self, n, vnodes, r, victim_idx):
        fps = list(range(1024))
        victim = victim_idx % n
        router = FingerprintRouter(list(range(n)), vnodes=vnodes)
        before = {fp: replicas(router, fp, r) for fp in fps}
        router.remove_member(victim)
        for fp in fps:
            after = replicas(router, fp, r)
            if victim not in before[fp]:
                assert after == before[fp]
            else:
                keep = set(before[fp]) - {victim}
                assert _survivor_order(after, keep) == _survivor_order(
                    before[fp], keep
                )
                assert victim not in after
