"""Event-schema stability: a golden JSONL snapshot.

A tiny hand-crafted trace is replayed at CHUNK verbosity and the full
JSONL output is compared byte-for-byte against a committed golden
file.  Any change to event names, field sets, field order or the
emission logic shows up as a diff here -- if the change is
intentional, bump :data:`repro.obs.events.EVENT_SCHEMA_VERSION` and
regenerate with::

    PYTHONPATH=src:tests python -c \
        "from obs.test_golden_trace import regenerate; regenerate()"
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.obs.events import (
    CLUSTER_EVENT_TYPES,
    EVENT_FIELDS,
    EVENT_SCHEMA_VERSION,
    FAULT_EVENT_TYPES,
    SPAN_EVENT_TYPES,
)
from repro.obs.trace import TraceRecorder, read_jsonl
from repro.obs.events import TraceLevel
from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.sim.replay import ReplayConfig, replay_trace
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.jsonl"


def _golden_trace() -> Trace:
    """Small, fully deterministic trace exercising every event type.

    Duplicate fingerprints make the dedup path fire (classify events
    with redundant chunks), a re-read hits the read cache, and the
    1-second epoch interval makes the iCache tick twice.
    """
    w = OpType.WRITE
    r = OpType.READ
    records = [
        TraceRecord(0.00, w, 0, 4, (11, 12, 13, 14)),     # unique
        TraceRecord(0.10, w, 8, 4, (11, 12, 13, 14)),     # fully redundant
        TraceRecord(0.20, r, 0, 4),                        # read them back
        TraceRecord(0.30, w, 16, 4, (11, 12, 99, 98)),    # partial
        TraceRecord(0.40, r, 0, 4),                        # repeat read
        TraceRecord(1.50, w, 32, 2, (50, 51)),            # after epoch 1
        TraceRecord(2.50, r, 16, 4),                       # after epoch 2
    ]
    return Trace(name="golden", records=records, logical_blocks=64, warmup_count=0)


def _golden_replay() -> TraceRecorder:
    recorder = TraceRecorder(level=TraceLevel.CHUNK)
    scheme = POD(
        SchemeConfig(logical_blocks=64, memory_bytes=8192, icache_epoch=1.0)
    )
    replay_trace(
        _golden_trace(), scheme, ReplayConfig(), recorder=recorder
    )
    return recorder


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        _golden_replay().write_jsonl(fh)
    print(f"wrote {GOLDEN_PATH}")


def test_golden_jsonl_snapshot():
    buf = io.StringIO()
    _golden_replay().write_jsonl(buf)
    got = buf.getvalue()
    want = GOLDEN_PATH.read_text(encoding="utf-8")
    assert got == want, (
        "trace JSONL drifted from the golden snapshot -- if the schema "
        "change is intentional, bump EVENT_SCHEMA_VERSION and regenerate "
        "(see module docstring)"
    )


def test_golden_covers_every_event_type():
    """The golden replay emits every non-fault event type in the
    vocabulary, so the snapshot really does pin the whole schema.
    Fault events only fire under an armed fault plan, which the golden
    healthy replay by definition never carries (their field contract
    is pinned by tests/faults/test_injector.py instead); cluster
    events only fire in multi-node cluster replays (pinned by
    tests/cluster/); span events only exist in span-tracer JSONL
    streams (pinned by tests/obs/test_spans.py)."""
    etypes = {e.etype for e in _golden_replay().events}
    assert etypes == (
        set(EVENT_FIELDS)
        - FAULT_EVENT_TYPES
        - CLUSTER_EVENT_TYPES
        - SPAN_EVENT_TYPES
    )
    assert not (
        etypes & (FAULT_EVENT_TYPES | CLUSTER_EVENT_TYPES | SPAN_EVENT_TYPES)
    )


def test_emitted_events_match_field_contract():
    """Every emitted event carries exactly its documented field set."""
    for event in _golden_replay().events:
        assert event.etype in EVENT_FIELDS, f"undocumented event {event.etype}"
        assert set(event.fields) == set(EVENT_FIELDS[event.etype]), (
            f"{event.etype} fields {sorted(event.fields)} != documented "
            f"{sorted(EVENT_FIELDS[event.etype])}"
        )


def test_golden_header_matches_schema_version():
    header = next(iter(read_jsonl(GOLDEN_PATH)))
    assert header["etype"] == "trace.header"
    assert header["schema_version"] == EVENT_SCHEMA_VERSION
