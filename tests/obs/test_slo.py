"""Unit tests for SLO objectives, policies and burn-rate evaluation."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.slo import (
    SLO_SCHEMA_VERSION,
    SloObjective,
    SloPolicy,
    evaluate_slo,
)
from repro.obs.timeline import TimelineConfig, TimelineSampler


def objective(**kw):
    base = dict(name="o", metric="latency", threshold=0.01)
    base.update(kw)
    return SloObjective(**base)


class TestObjectiveValidation:
    def test_accepts_the_three_scopes(self):
        assert objective(scope="run").scope_kind == "run"
        v = objective(scope="volume:3")
        assert (v.scope_kind, v.scope_id) == ("volume", 3)
        n = objective(scope="node:1")
        assert (n.scope_kind, n.scope_id) == ("node", 1)

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigError):
            objective(metric="iops")
        with pytest.raises(ConfigError):
            objective(op="delete")
        with pytest.raises(ConfigError):
            objective(threshold=0.0)
        with pytest.raises(ConfigError):
            objective(target=1.0)
        with pytest.raises(ConfigError):
            objective(burn_threshold=0.0)
        with pytest.raises(ConfigError):
            objective(scope="disk:0")
        with pytest.raises(ConfigError):
            objective(scope="volume:x")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            SloObjective.from_dict(
                {"name": "o", "metric": "latency", "threshold": 0.01,
                 "severity": "high"}
            )

    def test_from_dict_needs_the_required_triple(self):
        with pytest.raises(ConfigError):
            SloObjective.from_dict({"name": "o"})


class TestPolicy:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            SloPolicy(objectives=(objective(), objective()))

    def test_empty_policy(self):
        assert SloPolicy().is_empty()
        assert not SloPolicy(objectives=(objective(),)).is_empty()

    def test_round_trip_and_hashability(self):
        pol = SloPolicy(objectives=(
            objective(name="a"),
            objective(name="b", metric="throughput", threshold=5.0),
        ))
        assert SloPolicy.from_dict(pol.as_dict()) == pol
        assert hash(pol) == hash(SloPolicy.from_dict(pol.as_dict()))

    def test_from_dict_rejects_unknown_top_level_keys(self):
        with pytest.raises(ConfigError):
            SloPolicy.from_dict({"objectives": [], "version": 2})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "a", "metric": "latency", "threshold": 0.01},
        ]}))
        pol = SloPolicy.load(str(path))
        assert pol.objectives[0].name == "a"
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            SloPolicy.load(str(bad))

    def test_shipped_example_policy_loads(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parents[2] / "examples" / "slo.json"
        )
        pol = SloPolicy.load(str(example))
        assert not pol.is_empty()
        metrics = {o.metric for o in pol.objectives}
        assert metrics == {"latency", "throughput"}


class TestLatencyEvaluation:
    def _timeline(self, policy):
        s = TimelineSampler(TimelineConfig(window=1.0), policy=policy)
        # window 0: all good; window 1: half bad; window 2: all bad
        for _ in range(4):
            s.note_request(0.5, is_read=True, nblocks=1, response=0.001)
        for i in range(4):
            s.note_request(1.5, is_read=True, nblocks=1,
                           response=0.001 if i % 2 else 0.05)
        for _ in range(4):
            s.note_request(2.5, is_read=True, nblocks=1, response=0.05)
        s.note_activity(2.5, "fail_slow")
        s.finish(3.0)
        return s.as_dict()

    def test_burn_rate_and_violations(self):
        pol = SloPolicy(objectives=(
            objective(name="rd", op="read", target=0.9, burn_threshold=1.0),
        ))
        out = evaluate_slo(pol, self._timeline(pol))
        assert out["schema_version"] == SLO_SCHEMA_VERSION
        (obj,) = out["objectives"]
        assert obj["windows_evaluated"] == 3
        assert (obj["good_total"], obj["bad_total"]) == (6, 6)
        # error rates 0, 0.5, 1.0 over budget 0.1 -> burns 0, 5, 10
        assert obj["worst_burn"] == pytest.approx(10.0)
        assert [v["index"] for v in obj["violations"]] == [1, 2]
        assert obj["violations"][0]["burn_rate"] == pytest.approx(5.0)

    def test_violations_carry_concurrent_activity(self):
        pol = SloPolicy(objectives=(
            objective(name="rd", op="read", target=0.9),
        ))
        out = evaluate_slo(pol, self._timeline(pol))
        by_index = {
            v["index"]: v for v in out["objectives"][0]["violations"]
        }
        assert by_index[2]["annotations"] == ["fail_slow"]
        assert by_index[1]["annotations"] == []

    def test_quiet_windows_are_not_evaluated(self):
        pol = SloPolicy(objectives=(objective(name="rd", op="read"),))
        s = TimelineSampler(TimelineConfig(window=1.0), policy=pol)
        s.note_request(0.5, is_read=True, nblocks=1, response=0.001)
        s.note_gauges(5.5, queue_lag=1.0)  # traffic-free window
        out = evaluate_slo(pol, s.as_dict())
        assert out["objectives"][0]["windows_evaluated"] == 1


class TestThroughputEvaluation:
    def test_active_range_only(self):
        """A scope that finishes early isn't charged for idle tail
        windows, but gaps *inside* its active range count as bad."""
        pol = SloPolicy(objectives=(
            SloObjective(name="tput", metric="throughput", threshold=2.0,
                         target=0.9, burn_threshold=0.1),
        ))
        s = TimelineSampler(TimelineConfig(window=1.0), policy=pol)
        for t in (0.5, 0.6, 0.7):
            s.note_request(t, is_read=True, nblocks=1, response=0.001)
        # window 1: silent (inside active range -> bad, rate 0)
        s.note_request(2.5, is_read=True, nblocks=1, response=0.001)
        s.finish(10.0)  # long idle tail, outside the active range
        out = evaluate_slo(pol, s.as_dict())
        (obj,) = out["objectives"]
        assert obj["windows_evaluated"] == 3  # windows 0..2 only
        assert obj["good_total"] == 1  # window 0 at 3 req/s
        assert [v["index"] for v in obj["violations"]] == [1, 2]
        assert obj["violations"][0]["value"] == 0.0
        assert obj["violations"][0]["burn_rate"] == pytest.approx(1.0)

    def test_empty_policy_evaluates_to_nothing(self):
        s = TimelineSampler(TimelineConfig())
        s.note_request(0.5, is_read=True, nblocks=1, response=0.001)
        out = evaluate_slo(SloPolicy(), s.as_dict())
        assert out["objectives"] == []
        assert out["violations_total"] == 0
