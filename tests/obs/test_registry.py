"""Counter / gauge / histogram registry unit tests.

The histogram tests pin down the contract the response-time summaries
rely on: bucket boundary placement, percentile interpolation (and its
clamping to the observed range), and merge semantics.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds,
)


# ----------------------------------------------------------------------
# counters / gauges
# ----------------------------------------------------------------------


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ConfigError):
        c.inc(-1)


def test_gauge_tracks_max():
    g = Gauge("depth")
    g.set(3)
    g.set(10)
    g.set(4)
    assert g.value == 4
    assert g.max_value == 10


# ----------------------------------------------------------------------
# histogram: bucket boundaries
# ----------------------------------------------------------------------


def test_default_bounds_are_log_spaced_and_sorted():
    bounds = default_latency_bounds()
    assert bounds == sorted(bounds)
    assert bounds[0] == pytest.approx(1e-6)
    assert bounds[-1] == pytest.approx(1e3)
    # 40 buckets per decade: consecutive ratio == 10**(1/40).
    ratio = 10 ** (1 / 40)
    for lo, hi in zip(bounds, bounds[1:]):
        assert hi / lo == pytest.approx(ratio, rel=1e-9)


def test_bucket_boundary_placement():
    h = Histogram("t", bounds=[1.0, 2.0, 4.0])
    # A sample exactly on a bound lands in that bound's bucket
    # (bisect_left: bucket i covers (bounds[i-1], bounds[i]]).
    h.observe(1.0)
    h.observe(1.5)
    h.observe(2.0)
    h.observe(4.0)
    assert h.counts == [1, 2, 1]
    assert h.overflow == 0
    h.observe(4.5)  # beyond the last bound -> overflow bucket
    assert h.overflow == 1
    assert h.count == 5


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ConfigError):
        Histogram("t", bounds=[])
    with pytest.raises(ConfigError):
        Histogram("t", bounds=[2.0, 1.0])
    with pytest.raises(ConfigError):
        Histogram("t", bounds=[1.0, 1.0])


def test_histogram_rejects_negative_sample():
    h = Histogram("t", bounds=[1.0])
    with pytest.raises(ConfigError):
        h.observe(-0.5)


def test_mean_min_max_are_exact():
    h = Histogram("t")
    samples = [0.001, 0.010, 0.100, 0.003]
    for s in samples:
        h.observe(s)
    assert h.mean == pytest.approx(sum(samples) / len(samples))
    assert h.min == pytest.approx(min(samples))
    assert h.max == pytest.approx(max(samples))


# ----------------------------------------------------------------------
# histogram: percentile interpolation
# ----------------------------------------------------------------------


def test_percentile_empty_is_zero():
    h = Histogram("t")
    assert h.percentile(50) == 0.0
    assert h.p999 == 0.0


def test_percentile_single_sample_is_that_sample():
    h = Histogram("t")
    h.observe(0.0123)
    for q in (0, 50, 95, 99, 99.9, 100):
        assert h.percentile(q) == pytest.approx(0.0123)


def test_percentile_interpolation_accuracy():
    """Against exact numpy-style percentiles of a log-uniform sample."""
    rng = random.Random(7)
    samples = [10 ** rng.uniform(-4, 0) for _ in range(5000)]
    h = Histogram("t")
    for s in samples:
        h.observe(s)
    ordered = sorted(samples)

    def exact(q):
        idx = q / 100 * (len(ordered) - 1)
        lo = int(math.floor(idx))
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (idx - lo)

    # 40 buckets/decade => bucket width ~6%; interpolation should land
    # within a bucket of the exact value.
    for q in (50, 90, 95, 99, 99.9):
        assert h.percentile(q) == pytest.approx(exact(q), rel=0.07)


def test_percentiles_are_monotone_and_clamped():
    h = Histogram("t")
    for v in (0.002, 0.004, 0.008, 0.016, 0.5):
        h.observe(v)
    ps = [h.percentile(q) for q in (10, 50, 90, 95, 99, 99.9)]
    assert ps == sorted(ps)
    assert all(h.min <= p <= h.max for p in ps)
    assert h.percentile(100) == pytest.approx(h.max)
    assert h.percentile(0) == pytest.approx(h.min)


def test_percentile_rejects_out_of_range_q():
    h = Histogram("t")
    h.observe(1.0)
    with pytest.raises(ConfigError):
        h.percentile(-1)
    with pytest.raises(ConfigError):
        h.percentile(101)


# ----------------------------------------------------------------------
# histogram: merge
# ----------------------------------------------------------------------


def test_merge_is_equivalent_to_observing_everything_in_one():
    a, b, both = Histogram("a"), Histogram("b"), Histogram("both")
    xs = [0.001 * (i + 1) for i in range(50)]
    ys = [0.05 * (i + 1) for i in range(50)]
    for x in xs:
        a.observe(x)
        both.observe(x)
    for y in ys:
        b.observe(y)
        both.observe(y)
    m = a.merge(b)
    assert m.count == both.count == 100
    assert m.counts == both.counts
    assert m.mean == pytest.approx(both.mean)
    assert m.min == pytest.approx(both.min)
    assert m.max == pytest.approx(both.max)
    for q in (50, 95, 99, 99.9):
        assert m.percentile(q) == pytest.approx(both.percentile(q))
    # Merge does not mutate its inputs.
    assert a.count == 50 and b.count == 50


def test_merge_requires_identical_bounds():
    a = Histogram("a", bounds=[1.0, 2.0])
    b = Histogram("b", bounds=[1.0, 3.0])
    with pytest.raises(ConfigError):
        a.merge(b)


def test_as_dict_buckets_only_nonzero():
    h = Histogram("t", bounds=[1.0, 2.0, 4.0, 8.0])
    h.observe(1.5)
    h.observe(1.6)
    h.observe(100.0)
    d = h.as_dict(include_buckets=True)
    assert d["count"] == 3
    assert [c for _lo, _hi, c in d["buckets"]] == [2, 1]
    assert d["buckets"][-1][1] == "inf"
    assert "buckets" not in h.as_dict()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_registry_get_or_create_and_as_dict():
    reg = MetricsRegistry()
    reg.inc("reads", 2)
    reg.inc("reads")
    reg.set("queue.depth", 4)
    reg.observe("lat", 0.004)
    assert reg.counter("reads").value == 3
    assert reg.gauge("queue.depth").value == 4
    assert reg.histogram("lat").count == 1
    d = reg.as_dict()
    assert d["counters"]["reads"] == 3
    assert d["gauges"]["queue.depth"]["value"] == 4
    assert d["histograms"]["lat"]["count"] == 1


def test_registry_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("n", 1)
    b.inc("n", 2)
    b.inc("only_b", 5)
    a.observe("lat", 0.001)
    b.observe("lat", 0.010)
    a.set("depth", 3)
    b.set("depth", 9)
    m = a.merge(b)
    assert m.counter("n").value == 3
    assert m.counter("only_b").value == 5
    assert m.histogram("lat").count == 2
    assert m.gauge("depth").max_value == 9
    # merge() returns a new registry; inputs are untouched.
    assert a.counter("n").value == 1 and b.counter("n").value == 2
