"""Unit tests for the windowed timeline sampler.

Covers window addressing, the per-window histogram reset, gauge/
activity/RPC semantics, the JSONL round trip, and the reconciliation
contract: summing any counter over all windows must equal the
whole-run aggregate, per run and per volume (the sampler is fed by
``MetricsCollector.record`` with identical arguments, so this is a
property of the wiring, and this test pins it against a real replay).
"""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.experiments import runner
from repro.obs.slo import SloObjective, SloPolicy
from repro.obs.timeline import (
    TIMELINE_SCHEMA_VERSION,
    TimelineConfig,
    TimelineSampler,
    load_timeline,
    read_timeline_jsonl,
    write_timeline_jsonl,
)
from repro.sim.replay import ReplayConfig


class TestConfig:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigError):
            TimelineConfig(window=0.0)
        with pytest.raises(ConfigError):
            TimelineConfig(window=-1.0)

    def test_rejects_bad_origin_and_caps(self):
        with pytest.raises(ConfigError):
            TimelineConfig(origin=-0.5)
        with pytest.raises(ConfigError):
            TimelineConfig(max_windows=0)
        with pytest.raises(ConfigError):
            TimelineConfig(latency_per_decade=0)

    def test_is_hashable_for_memo_keys(self):
        assert hash(TimelineConfig()) == hash(TimelineConfig())


class TestWindowing:
    def test_samples_land_in_their_window(self):
        s = TimelineSampler(TimelineConfig(window=1.0))
        s.note_request(0.5, is_read=True, nblocks=4, response=0.01)
        s.note_request(2.5, is_read=False, nblocks=8, response=0.02)
        docs = s.window_docs()
        assert [d["index"] for d in docs] == [0, 2]
        assert docs[0]["reads"] == 1 and docs[0]["read_blocks"] == 4
        assert docs[1]["writes"] == 1 and docs[1]["write_blocks"] == 8

    def test_out_of_order_completions_bucket_correctly(self):
        """The analytic replay reports completions out of call order;
        windows are sparse dicts, never closed early."""
        s = TimelineSampler(TimelineConfig(window=1.0))
        s.note_request(5.2, is_read=True, nblocks=1, response=0.01)
        s.note_request(1.1, is_read=True, nblocks=1, response=0.01)
        assert [d["index"] for d in s.window_docs()] == [1, 5]

    def test_per_window_histograms_reset(self):
        s = TimelineSampler(TimelineConfig(window=1.0))
        for _ in range(10):
            s.note_request(0.5, is_read=True, nblocks=1, response=0.001)
        s.note_request(1.5, is_read=True, nblocks=1, response=1.0)
        d0, d1 = s.window_docs()
        assert d0["read_latency"]["count"] == 10
        assert d0["read_latency"]["max"] < 0.01
        assert d1["read_latency"]["count"] == 1
        assert d1["read_latency"]["p50"] > 0.1

    def test_window_cap_raises_instead_of_dropping(self):
        s = TimelineSampler(TimelineConfig(window=1.0, max_windows=2))
        s.note_request(0.5, is_read=True, nblocks=1, response=0.01)
        s.note_request(1.5, is_read=True, nblocks=1, response=0.01)
        with pytest.raises(ConfigError):
            s.note_request(2.5, is_read=True, nblocks=1, response=0.01)

    def test_derived_rates(self):
        s = TimelineSampler(TimelineConfig())
        s.note_request(0.1, is_read=False, nblocks=8, response=0.01,
                       deduped_blocks=4)
        s.note_request(0.2, is_read=True, nblocks=4, response=0.01,
                       cache_hit_blocks=1)
        (doc,) = s.window_docs()
        assert doc["dedup_ratio"] == pytest.approx(0.5)
        assert doc["read_cache_hit_rate"] == pytest.approx(0.25)


class TestGaugesActivityRpc:
    def test_gauges_keep_window_maximum(self):
        s = TimelineSampler(TimelineConfig())
        s.note_gauges(0.1, nvram_bytes=100.0)
        s.note_gauges(0.9, nvram_bytes=40.0, queue_lag=0.5)
        s.note_gauges(0.5, node_id=1, nvram_bytes=7.0)
        (doc,) = s.window_docs()
        assert doc["gauges"] == {"nvram_bytes": 100.0, "queue_lag": 0.5}
        assert doc["node_gauges"] == {"1": {"nvram_bytes": 7.0}}

    def test_activity_keeps_maximum_progress(self):
        s = TimelineSampler(TimelineConfig())
        s.note_activity(0.2, "rebuild", 0.1)
        s.note_activity(0.8, "rebuild", 0.4)
        (doc,) = s.window_docs()
        assert doc["activity"] == {"rebuild": 0.4}

    def test_interval_annotations_cover_every_overlapped_window(self):
        s = TimelineSampler(TimelineConfig(window=1.0))
        s.note_request(0.5, is_read=True, nblocks=1, response=0.01)
        s.finish(4.0)
        s.annotate_interval("fail_slow", 1.2, 3.4)
        docs = s.window_docs()
        flagged = [d["index"] for d in docs if "fail_slow" in d["activity"]]
        assert flagged == [1, 2, 3]

    def test_interval_end_before_start_rejected(self):
        s = TimelineSampler(TimelineConfig())
        with pytest.raises(ConfigError):
            s.annotate_interval("x", 2.0, 1.0)

    def test_rpc_accumulates_per_directed_link(self):
        s = TimelineSampler(TimelineConfig(window=1.0))
        s.note_rpc(0.1, 0, 1, 64, 0.25)
        s.note_rpc(0.2, 0, 1, 64, 0.25)
        s.note_rpc(0.3, 1, 0, 40, 0.1)
        (doc,) = s.window_docs()
        assert doc["net"]["0->1"] == {
            "bytes": 128, "busy": 0.5, "rpcs": 2, "utilisation": 0.5,
        }
        assert doc["net"]["1->0"]["rpcs"] == 1


class TestSloCounting:
    POLICY = SloPolicy(objectives=(
        SloObjective(name="rd", metric="latency", threshold=0.01, op="read"),
        SloObjective(name="v1", metric="latency", threshold=0.01,
                     scope="volume:1"),
    ))

    def test_exact_good_bad_counts_per_rule(self):
        s = TimelineSampler(TimelineConfig(), policy=self.POLICY)
        s.note_request(0.1, is_read=True, nblocks=1, response=0.005,
                       volume_id=0)
        s.note_request(0.2, is_read=True, nblocks=1, response=0.05,
                       volume_id=1)
        s.note_request(0.3, is_read=False, nblocks=1, response=0.05,
                       volume_id=1)
        (doc,) = s.window_docs()
        # rule 0 (run-scope reads): one good, one bad (write ignored)
        # rule 1 (volume 1, all ops): two bad
        assert doc["slo_counts"] == [[1, 1], [0, 2]]

    def test_no_policy_emits_no_slo_counts(self):
        s = TimelineSampler(TimelineConfig())
        s.note_request(0.1, is_read=True, nblocks=1, response=0.005)
        (doc,) = s.window_docs()
        assert "slo_counts" not in doc


class TestSerialisation:
    def _sampled(self):
        s = TimelineSampler(TimelineConfig(window=0.5))
        s.note_request(0.1, is_read=True, nblocks=4, response=0.01,
                       volume_id=0)
        s.note_node_request(0.1, node_id=0, is_read=True, nblocks=4,
                            response=0.01)
        s.note_gauges(0.2, queue_lag=0.1)
        s.note_rpc(0.3, 0, 1, 64, 0.01)
        s.note_activity(0.6, "rebuild", 0.5)
        s.finish(1.0)
        return s

    def test_jsonl_round_trip_preserves_windows(self):
        s = self._sampled()
        buf = io.StringIO()
        lines = s.write_jsonl(buf)
        doc = read_timeline_jsonl(buf.getvalue().splitlines())
        assert lines == 1 + len(doc["windows"])
        assert doc["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert doc["windows"] == s.as_dict()["windows"]

    def test_reader_rejects_newer_schema(self):
        header = json.dumps({
            "etype": "timeline.header",
            "schema_version": TIMELINE_SCHEMA_VERSION + 1,
        })
        with pytest.raises(ConfigError):
            read_timeline_jsonl([header])

    def test_reader_rejects_unknown_lines(self):
        with pytest.raises(ConfigError):
            read_timeline_jsonl([json.dumps({"etype": "mystery"})])

    def test_load_timeline_accepts_all_three_forms(self, tmp_path):
        s = self._sampled()
        doc = s.as_dict()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        jsonl = tmp_path / "tl.jsonl"
        write_timeline_jsonl(doc, str(jsonl))
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"timeline": doc}))
        for path in (bare, jsonl, report):
            assert load_timeline(str(path))["windows"] == doc["windows"]


class TestReconciliation:
    """Window sums must equal the whole-run aggregates exactly."""

    def test_single_node_run_and_volume_sums_match_metrics(self):
        result = runner.run_multi(
            ["web-vm"], "POD", copies=2, scale=0.02, seed=5,
            replay_config=ReplayConfig(timeline=TimelineConfig(window=1.0)),
        )
        windows = result.timeline.as_dict()["windows"]
        metrics = result.metrics.as_dict()
        assert metrics["requests"] > 0
        pairs = [
            ("requests", "requests"),
            ("reads", "read_requests"),
            ("writes", "write_requests"),
            ("deduped_blocks", "writes_eliminated_blocks"),
            ("eliminated_requests", "writes_eliminated_requests"),
            ("cache_hit_blocks", "read_cache_hit_blocks"),
        ]
        for window_key, metric_key in pairs:
            assert sum(w[window_key] for w in windows) == metrics[metric_key]
        for vid in result.metrics.volume_ids():
            per_vol = result.metrics.volume_as_dict(vid)
            wsum = sum(
                w["volumes"].get(str(vid), {}).get("requests", 0)
                for w in windows
            )
            assert wsum == per_vol["requests"]
