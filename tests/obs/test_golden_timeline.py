"""Telemetry-schema stability: golden timeline + span JSONL snapshots.

The golden trace from :mod:`tests.obs.test_golden_trace` is replayed
with the full telemetry stack armed (timeline + spans + a two-objective
SLO policy) and both JSONL serialisations are compared byte-for-byte
against committed snapshots.  Any change to window document layout,
span fields, serialisation order or the instrumentation points shows
up as a diff here -- if intentional, bump the relevant schema version
(:data:`repro.obs.timeline.TIMELINE_SCHEMA_VERSION` /
:data:`repro.obs.spans.SPAN_SCHEMA_VERSION`) and regenerate with::

    PYTHONPATH=src:tests python -c \
        "from obs.test_golden_timeline import regenerate; regenerate()"
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.obs.slo import SloObjective, SloPolicy
from repro.obs.timeline import TimelineConfig
from repro.sim.replay import ReplayConfig, ReplayResult, replay_trace

from tests.obs.test_golden_trace import _golden_trace

GOLDEN_TIMELINE = Path(__file__).parent / "data" / "golden_timeline.jsonl"
GOLDEN_SPANS = Path(__file__).parent / "data" / "golden_spans.jsonl"

POLICY = SloPolicy(objectives=(
    SloObjective(name="write-latency", metric="latency", threshold=0.01,
                 op="write", target=0.9),
    SloObjective(name="throughput", metric="throughput", threshold=1.0,
                 target=0.9, burn_threshold=0.5),
))


def _golden_telemetry_replay() -> ReplayResult:
    scheme = POD(
        SchemeConfig(logical_blocks=64, memory_bytes=8192, icache_epoch=1.0)
    )
    return replay_trace(
        _golden_trace(),
        scheme,
        ReplayConfig(
            timeline=TimelineConfig(window=0.5),
            spans=True,
            slo=POLICY,
        ),
    )


def regenerate() -> None:  # pragma: no cover - maintenance helper
    result = _golden_telemetry_replay()
    GOLDEN_TIMELINE.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_TIMELINE, "w", encoding="utf-8") as fh:
        result.timeline.write_jsonl(fh)
    with open(GOLDEN_SPANS, "w", encoding="utf-8") as fh:
        result.spans.write_jsonl(fh)
    print(f"wrote {GOLDEN_TIMELINE} and {GOLDEN_SPANS}")


def test_golden_timeline_snapshot():
    result = _golden_telemetry_replay()
    buf = io.StringIO()
    result.timeline.write_jsonl(buf)
    assert buf.getvalue() == GOLDEN_TIMELINE.read_text(encoding="utf-8"), (
        "timeline JSONL drifted from the golden snapshot -- if the "
        "schema change is intentional, bump TIMELINE_SCHEMA_VERSION "
        "and regenerate (see module docstring)"
    )


def test_golden_spans_snapshot():
    result = _golden_telemetry_replay()
    buf = io.StringIO()
    result.spans.write_jsonl(buf)
    assert buf.getvalue() == GOLDEN_SPANS.read_text(encoding="utf-8"), (
        "span JSONL drifted from the golden snapshot -- if the schema "
        "change is intentional, bump SPAN_SCHEMA_VERSION and regenerate "
        "(see module docstring)"
    )


def test_golden_run_is_byte_stable_within_a_session():
    a, b = _golden_telemetry_replay(), _golden_telemetry_replay()
    buf_a, buf_b = io.StringIO(), io.StringIO()
    a.timeline.write_jsonl(buf_a)
    b.timeline.write_jsonl(buf_b)
    assert buf_a.getvalue() == buf_b.getvalue()
    assert a.slo_stats == b.slo_stats


def test_golden_telemetry_exercises_the_whole_surface():
    """The snapshot is only a schema pin if it covers the schema."""
    result = _golden_telemetry_replay()
    doc = result.timeline.as_dict()
    assert doc["windows_total"] > 1
    busy = [w for w in doc["windows"] if w["requests"]]
    assert busy and any(w["deduped_blocks"] for w in busy)
    assert any(w["gauges"] for w in doc["windows"])
    assert all("slo_counts" in w for w in doc["windows"])
    names = set(result.spans.by_name())
    assert {"request", "scheme.lookup"} <= names
    assert result.slo_stats is not None
    assert result.slo_stats["objectives"]
