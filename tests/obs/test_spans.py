"""Unit tests for the causal span tracer.

Span ids are a deterministic counter (1-based); 0 is the over-cap
sentinel that no span ever owns, so ``end(t, 0)`` and ``parent=0``
guards stay cheap no-ops on the hot path.
"""

import io
import json

from repro.obs.spans import (
    DEFAULT_MAX_SPANS,
    SPAN_SCHEMA_VERSION,
    SpanTracer,
    find_root,
    span_children,
)


class TestLifecycle:
    def test_ids_are_deterministic_and_one_based(self):
        t = SpanTracer()
        a = t.start(0.0, "request", req_id=1)
        b = t.start(0.1, "classify", parent=a, req_id=1)
        assert (a, b) == (1, 2)
        t.end(0.2, b)
        t.end(0.3, a)
        assert [s.span_id for s in t.spans] == [1, 2]
        assert t.spans[1].parent == a
        assert t.spans[0].end == 0.3

    def test_emit_is_start_plus_end(self):
        t = SpanTracer()
        sid = t.emit(1.0, 2.0, "disk", req_id=3, blocks=8)
        (span,) = t.spans
        assert span.span_id == sid
        assert (span.start, span.end) == (1.0, 2.0)
        assert span.attrs == {"blocks": 8}

    def test_end_attrs_merge_into_span(self):
        t = SpanTracer()
        sid = t.start(0.0, "request")
        t.end(1.0, sid, response=1.0)
        assert t.spans[0].attrs["response"] == 1.0

    def test_by_name_counts(self):
        t = SpanTracer()
        t.emit(0.0, 0.1, "disk")
        t.emit(0.2, 0.3, "disk")
        t.emit(0.2, 0.3, "rpc.lookup")
        assert t.by_name() == {"disk": 2, "rpc.lookup": 1}

    def test_summary_shape(self):
        t = SpanTracer()
        t.start(0.0, "request")  # left open on purpose
        s = t.summary()
        assert s["schema_version"] == SPAN_SCHEMA_VERSION
        assert s["spans"] == 1 and s["open"] == 1 and s["dropped"] == 0


class TestOverCapSentinel:
    def test_cap_returns_zero_and_counts_drops(self):
        t = SpanTracer(max_spans=2)
        assert t.start(0.0, "a") == 1
        assert t.start(0.0, "b") == 2
        assert t.start(0.0, "c") == 0
        assert t.start(0.0, "d") == 0
        assert t.dropped == 2
        assert len(t.spans) == 2

    def test_end_of_sentinel_is_a_noop(self):
        t = SpanTracer(max_spans=1)
        t.start(0.0, "a")
        assert t.start(0.0, "b") == 0
        t.end(1.0, 0)  # must not raise or touch any span
        assert all(s.end == -1.0 for s in t.spans)

    def test_default_cap_is_generous(self):
        assert SpanTracer().max_spans == DEFAULT_MAX_SPANS


class TestTreeHelpers:
    def _tree(self):
        t = SpanTracer()
        root = t.start(0.0, "request", req_id=9)
        t.emit(0.0, 0.1, "classify", parent=root, req_id=9)
        t.emit(0.1, 0.5, "disk", parent=root, req_id=9)
        t.end(0.5, root)
        return t

    def test_span_children_groups_by_parent(self):
        t = self._tree()
        kids = span_children(t.spans)
        assert [s.name for s in kids[1]] == ["classify", "disk"]

    def test_find_root_by_req_id(self):
        t = self._tree()
        root = find_root(t.spans, 9)
        assert root is not None and root.name == "request"
        assert find_root(t.spans, 404) is None


class TestSerialisation:
    def test_jsonl_header_then_spans(self):
        t = SpanTracer()
        t.emit(0.0, 0.1, "disk", req_id=1)
        buf = io.StringIO()
        lines = t.write_jsonl(buf)
        rows = [json.loads(x) for x in buf.getvalue().splitlines()]
        assert lines == len(rows) == 2
        assert rows[0]["etype"] == "span.header"
        assert rows[0]["schema_version"] == SPAN_SCHEMA_VERSION
        assert rows[1]["etype"] == "span"
        assert rows[1]["span_id"] == 1
