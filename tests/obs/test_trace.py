"""TraceRecorder unit tests: level ladder, ring buffer, JSONL I/O."""

from __future__ import annotations

import io

import pytest

from repro.errors import ConfigError
from repro.obs.events import EVENT_SCHEMA_VERSION, EventType, TraceEvent, TraceLevel
from repro.obs.trace import NULL_RECORDER, TraceRecorder, read_jsonl


# ----------------------------------------------------------------------
# levels
# ----------------------------------------------------------------------


def test_level_ladder_is_strict():
    assert TraceLevel.OFF < TraceLevel.SUMMARY < TraceLevel.REQUEST < TraceLevel.CHUNK


def test_level_parse():
    assert TraceLevel.parse("chunk") is TraceLevel.CHUNK
    assert TraceLevel.parse("OFF") is TraceLevel.OFF
    assert TraceLevel.parse(2) is TraceLevel.REQUEST
    assert TraceLevel.parse(TraceLevel.SUMMARY) is TraceLevel.SUMMARY
    with pytest.raises(ValueError):
        TraceLevel.parse("verbose")


def test_recorder_filters_by_level():
    rec = TraceRecorder(level=TraceLevel.REQUEST)
    rec.emit(TraceLevel.SUMMARY, 0.0, EventType.RUN_START, trace="t", scheme="s",
             requests=1, warmup=0)
    rec.emit(TraceLevel.REQUEST, 0.1, EventType.REQUEST_ARRIVE, req_id=0, op="R",
             lba=0, nblocks=1)
    rec.emit(TraceLevel.CHUNK, 0.2, EventType.DISK_OP, disk=0, op="R", pba=0,
             nblocks=1, start=0.2, done=0.3)
    assert len(rec) == 2  # CHUNK event filtered out
    assert [e.etype for e in rec.events] == [EventType.RUN_START, EventType.REQUEST_ARRIVE]


def test_off_recorder_records_nothing():
    rec = TraceRecorder(level=TraceLevel.OFF)
    for lvl in (TraceLevel.SUMMARY, TraceLevel.REQUEST, TraceLevel.CHUNK):
        rec.emit(lvl, 0.0, EventType.RUN_END, events_processed=0, makespan=0.0)
    assert len(rec) == 0
    assert not rec.enabled
    assert NULL_RECORDER.level == TraceLevel.OFF


def test_events_of_and_counts():
    rec = TraceRecorder(level=TraceLevel.CHUNK)
    for i in range(3):
        rec.emit(TraceLevel.CHUNK, float(i), EventType.DISK_OP, disk=0, op="R",
                 pba=i, nblocks=1, start=float(i), done=float(i) + 0.01)
    rec.emit(TraceLevel.SUMMARY, 9.0, EventType.RUN_END, events_processed=3,
             makespan=9.0)
    assert len(rec.events_of(EventType.DISK_OP)) == 3
    assert rec.counts_by_type() == {EventType.DISK_OP: 3, EventType.RUN_END: 1}


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------


def test_ring_buffer_drops_oldest_and_counts():
    rec = TraceRecorder(level=TraceLevel.REQUEST, max_events=3)
    for i in range(5):
        rec.emit(TraceLevel.REQUEST, float(i), EventType.REQUEST_ARRIVE,
                 req_id=i, op="R", lba=i, nblocks=1)
    assert len(rec) == 3
    assert rec.dropped == 2
    assert [e.fields["req_id"] for e in rec.events] == [2, 3, 4]


def test_max_events_must_be_positive():
    with pytest.raises(ConfigError):
        TraceRecorder(max_events=0)


def test_clear_resets_everything():
    rec = TraceRecorder(level=TraceLevel.REQUEST, max_events=1)
    rec.emit(TraceLevel.REQUEST, 0.0, EventType.REQUEST_ARRIVE, req_id=0, op="R",
             lba=0, nblocks=1)
    rec.emit(TraceLevel.REQUEST, 1.0, EventType.REQUEST_ARRIVE, req_id=1, op="R",
             lba=0, nblocks=1)
    assert rec.dropped == 1
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


# ----------------------------------------------------------------------
# JSONL round trip
# ----------------------------------------------------------------------


def test_jsonl_round_trip_preserves_events(tmp_path):
    rec = TraceRecorder(level=TraceLevel.CHUNK)
    rec.emit(TraceLevel.SUMMARY, 0.0, EventType.RUN_START, trace="t", scheme="s",
             requests=2, warmup=1)
    rec.emit(TraceLevel.REQUEST, 0.5, EventType.REQUEST_COMPLETE, req_id=0, op="W",
             nblocks=4, response=0.01, eliminated=False, deduped_blocks=2,
             cache_hit_blocks=0, measured=True)
    path = tmp_path / "t.jsonl"
    lines = rec.write_jsonl(path)
    assert lines == 3  # header + 2 events

    docs = list(read_jsonl(path))
    header, events = docs[0], docs[1:]
    assert header["etype"] == "trace.header"
    assert header["schema_version"] == EVENT_SCHEMA_VERSION
    assert header["events"] == 2
    assert [d["etype"] for d in events] == [EventType.RUN_START, EventType.REQUEST_COMPLETE]
    assert events[1]["deduped_blocks"] == 2
    # Round-trip equals the in-memory dict form exactly.
    assert events == [e.as_dict() for e in rec.events]


def test_jsonl_accepts_file_objects():
    rec = TraceRecorder(level=TraceLevel.SUMMARY)
    rec.emit(TraceLevel.SUMMARY, 1.0, EventType.RUN_END, events_processed=1,
             makespan=1.0)
    buf = io.StringIO()
    rec.write_jsonl(buf)
    buf.seek(0)
    docs = list(read_jsonl(buf))
    assert len(docs) == 2 and docs[1]["etype"] == EventType.RUN_END


def test_event_as_dict_key_order():
    e = TraceEvent(t=1.5, etype="x", fields={"b": 1, "a": 2})
    assert list(e.as_dict()) == ["t", "etype", "b", "a"]
