"""Run-report build / save / load / render / diff tests."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, ReproError
from repro.metrics.collector import MetricsCollector
from repro.obs.report import (
    REPORT_KIND_COMPARE,
    REPORT_KIND_RUN,
    REPORT_VERSION,
    build_compare_report,
    build_run_report,
    diff_reports,
    load_report,
    render_report,
    write_report,
)
from repro.obs.trace import TraceRecorder
from repro.obs.events import EventType, TraceLevel
from repro.sim.replay import ReplayResult
from repro.sim.request import IORequest


def _result(scheme="POD", mean=0.010) -> ReplayResult:
    metrics = MetricsCollector()
    metrics.record(IORequest.read(time=0.0, lba=0, nblocks=2), 0.0, mean)
    metrics.record(
        IORequest.write(time=0.0, lba=0, fingerprints=[1, 2]),
        0.0, mean * 2, eliminated=True, deduped_blocks=2,
    )
    return ReplayResult(
        trace_name="unit",
        scheme_name=scheme,
        metrics=metrics,
        scheme_stats={"map_entries": 5, "nvram_peak_bytes": 100, "scheme": scheme,
                      "nested": {"ignored": True}},
        utilisation={0: {"ops": 2, "blocks": 4, "busy_time": 0.01,
                         "seek_time": 0.0, "rotation_time": 0.0,
                         "transfer_time": 0.01}},
        capacity_blocks=42,
        writes_total=1,
        write_requests_removed=1,
        epoch_timeline=[{"epoch": 0, "t": 1.0, "index_bytes": 10, "read_bytes": 20,
                         "ghost_index_hits": 0, "ghost_read_hits": 1,
                         "index_benefit": 0.0, "read_benefit": 1.0,
                         "direction": "grow_read", "swapped_bytes": 5}],
    )


def test_build_run_report_shape():
    rec = TraceRecorder(level=TraceLevel.SUMMARY)
    rec.emit(TraceLevel.SUMMARY, 0.0, EventType.RUN_END, events_processed=1,
             makespan=1.0)
    rep = build_run_report(
        _result(), seed=7, scale=0.1, trace_level="summary", recorder=rec,
        config={"raid": "raid5"}, overhead={"replay_wall_s": 0.5},
    )
    assert rep["version"] == REPORT_VERSION
    assert rep["kind"] == REPORT_KIND_RUN
    assert rep["seed"] == 7 and rep["scale"] == 0.1
    assert rep["counters"]["writes_eliminated_requests"] == 1
    assert rep["counters"]["writes_eliminated_blocks"] == 2
    assert rep["counters"]["capacity_blocks"] == 42
    assert rep["counters"]["scheme.map_entries"] == 5
    assert "scheme.nested" not in rep["counters"]  # scalars only
    assert set(rep["histograms"]) == {"overall", "read", "write"}
    for h in rep["histograms"].values():
        assert {"count", "mean", "p50", "p95", "p99", "p999", "buckets"} <= set(h)
    assert rep["icache_timeline"][0]["direction"] == "grow_read"
    assert rep["tracing"]["events_recorded"] == 1
    assert rep["overhead"]["replay_wall_s"] == 0.5
    # The whole document is JSON-serialisable as-is.
    json.dumps(rep)


def test_report_round_trip(tmp_path):
    rep = build_run_report(_result(), seed=None, scale=0.25)
    path = tmp_path / "r.json"
    write_report(rep, path)
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(rep))  # tuples -> lists etc.


def test_load_rejects_garbage(tmp_path):
    p = tmp_path / "x.json"
    p.write_text("not json at all{")
    with pytest.raises(ReproError):
        load_report(p)
    p.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ConfigError):
        load_report(p)


def test_load_rejects_future_version(tmp_path):
    rep = build_run_report(_result())
    rep["version"] = REPORT_VERSION + 1
    p = tmp_path / "future.json"
    write_report(rep, p)
    with pytest.raises(ConfigError):
        load_report(p)


def test_load_rejects_unknown_kind(tmp_path):
    rep = build_run_report(_result())
    rep["kind"] = "mystery"
    p = tmp_path / "k.json"
    write_report(rep, p)
    with pytest.raises(ConfigError):
        load_report(p)


def test_render_run_report_mentions_the_essentials():
    text = render_report(build_run_report(_result(), seed=3, scale=0.1))
    assert "POD on unit" in text
    assert "seed=3" in text
    assert "writes_eliminated_blocks" in text
    assert "p999" in text
    assert "iCache epoch timeline" in text
    assert "grow_read" in text


def test_compare_report_bundles_and_renders(tmp_path):
    runs = [build_run_report(_result("POD")), build_run_report(_result("Native"))]
    cmp_rep = build_compare_report(runs)
    assert cmp_rep["kind"] == REPORT_KIND_COMPARE
    p = tmp_path / "cmp.json"
    write_report(cmp_rep, p)
    text = render_report(load_report(p))
    assert "POD on unit" in text and "Native on unit" in text


def test_diff_reports():
    a = build_run_report(_result("POD", mean=0.010))
    b = build_run_report(_result("Native", mean=0.020))
    text = diff_reports(a, b)
    assert "mean_response" in text
    assert "+100.0%" in text
    assert "overall.p95" in text


def test_diff_rejects_compare_reports():
    a = build_run_report(_result())
    c = build_compare_report([a])
    with pytest.raises(ConfigError):
        diff_reports(a, c)
