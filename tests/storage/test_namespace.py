"""Unit tests for the volume-namespace layer.

The mapper is pure address arithmetic; these tests pin the layout
rules (back-to-back, declaration order), both translation directions,
the request-rebasing invariants and every bounds check.
"""

import pytest

from repro.errors import StorageError
from repro.sim.request import IORequest
from repro.storage.namespace import NamespaceMapper, VolumeNamespace


class TestVolumeNamespace:
    def test_translation_round_trip(self):
        ns = VolumeNamespace(volume_id=1, name="mail/t1", logical_blocks=100, base=250)
        assert ns.end == 350
        for lba in (0, 57, 99):
            assert ns.to_local(ns.to_global(lba)) == lba
        assert ns.to_global(0) == 250
        assert ns.to_global(99) == 349

    def test_bounds_are_enforced(self):
        ns = VolumeNamespace(volume_id=0, name="v", logical_blocks=10, base=0)
        with pytest.raises(StorageError):
            ns.to_global(10)
        with pytest.raises(StorageError):
            ns.to_global(-1)
        with pytest.raises(StorageError):
            ns.to_local(10)

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            VolumeNamespace(volume_id=-1, name="v", logical_blocks=1, base=0)
        with pytest.raises(StorageError):
            VolumeNamespace(volume_id=0, name="v", logical_blocks=0, base=0)
        with pytest.raises(StorageError):
            VolumeNamespace(volume_id=0, name="v", logical_blocks=1, base=-5)


class TestNamespaceMapper:
    def test_back_to_back_layout(self):
        mapper = NamespaceMapper([("a", 100), ("b", 50), ("c", 25)])
        assert len(mapper) == 3
        assert [ns.base for ns in mapper] == [0, 100, 150]
        assert mapper.total_logical_blocks == 175
        assert mapper.volume(1).name == "b"

    def test_single_volume_is_identity(self):
        """The N=1 mapper translates every LBA to itself -- the
        property that keeps classic replays bit-identical."""
        mapper = NamespaceMapper([("only", 512)])
        for lba in (0, 1, 255, 511):
            assert mapper.to_global(0, lba) == lba
            assert mapper.locate(lba) == (0, lba)

    def test_locate_reverse_lookup(self):
        mapper = NamespaceMapper([("a", 100), ("b", 50), ("c", 25)])
        assert mapper.locate(0) == (0, 0)
        assert mapper.locate(99) == (0, 99)
        assert mapper.locate(100) == (1, 0)
        assert mapper.locate(149) == (1, 49)
        assert mapper.locate(150) == (2, 0)
        assert mapper.locate(174) == (2, 24)
        with pytest.raises(StorageError):
            mapper.locate(175)
        with pytest.raises(StorageError):
            mapper.locate(-1)

    def test_round_trip_every_volume(self):
        mapper = NamespaceMapper([("a", 7), ("b", 3), ("c", 11)])
        for ns in mapper:
            for lba in range(ns.logical_blocks):
                g = mapper.to_global(ns.volume_id, lba)
                assert mapper.locate(g) == (ns.volume_id, lba)

    def test_unknown_volume_rejected(self):
        mapper = NamespaceMapper([("a", 10)])
        with pytest.raises(StorageError):
            mapper.volume(1)
        with pytest.raises(StorageError):
            mapper.to_global(-1, 0)

    def test_empty_mapper_rejected(self):
        with pytest.raises(StorageError):
            NamespaceMapper([])

    def test_translate_request_rebases_and_tags(self):
        mapper = NamespaceMapper([("a", 100), ("b", 50)])
        req = IORequest.write(time=1.0, lba=10, fingerprints=[7, 8], req_id=42)
        out = mapper.translate_request(req, 1)
        assert out.lba == 110
        assert out.volume_id == 1
        assert out.req_id == 42
        assert out.fingerprints == (7, 8)
        # the original request is untouched
        assert req.lba == 10 and req.volume_id == 0

    def test_translate_request_rejects_overrun(self):
        mapper = NamespaceMapper([("a", 100), ("b", 50)])
        req = IORequest.write(time=1.0, lba=49, fingerprints=[1, 2])
        with pytest.raises(StorageError):
            mapper.translate_request(req, 1)

    def test_for_traces(self):
        from repro.traces.format import Trace, TraceRecord
        from repro.sim.request import OpType

        traces = [
            Trace(
                name=f"t{i}",
                records=[
                    TraceRecord(
                        time=0.0, op=OpType.WRITE, lba=0, nblocks=1,
                        fingerprints=(1,),
                    )
                ],
                logical_blocks=64 * (i + 1),
                warmup_count=0,
            )
            for i in range(2)
        ]
        mapper = NamespaceMapper.for_traces(traces)
        assert [ns.logical_blocks for ns in mapper] == [64, 128]
        assert mapper.total_logical_blocks == 192
