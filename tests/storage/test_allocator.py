"""Unit tests for the region map and the log allocator."""

import pytest

from repro.errors import StorageError
from repro.storage.allocator import LogAllocator, RegionMap


class TestRegionMap:
    def test_layout_is_contiguous(self):
        rm = RegionMap(logical_blocks=100, log_blocks=20, index_blocks=10, swap_blocks=5)
        assert rm.home_base == 0
        assert rm.log_base == 100
        assert rm.index_base == 120
        assert rm.swap_base == 130
        assert rm.total_blocks == 135

    def test_home_of(self):
        rm = RegionMap(100, 10, 10, 10)
        assert rm.home_of(42) == 42
        with pytest.raises(StorageError):
            rm.home_of(100)
        with pytest.raises(StorageError):
            rm.home_of(-1)

    def test_region_predicates(self):
        rm = RegionMap(100, 20, 10, 5)
        assert rm.is_home(0) and rm.is_home(99) and not rm.is_home(100)
        assert rm.is_log(100) and rm.is_log(119) and not rm.is_log(120)
        assert rm.is_index(120) and not rm.is_index(130)
        assert rm.is_swap(130) and rm.is_swap(134) and not rm.is_swap(135)

    def test_for_logical_space(self):
        rm = RegionMap.for_logical_space(1000, log_fraction=0.5)
        assert rm.logical_blocks == 1000
        assert rm.log_blocks == 500

    def test_empty_home_rejected(self):
        with pytest.raises(StorageError):
            RegionMap(0, 1, 1, 1)


class TestLogAllocator:
    def test_sequential_frontier(self):
        a = LogAllocator(base=100, nblocks=10)
        assert [a.allocate() for _ in range(3)] == [100, 101, 102]

    def test_allocate_run(self):
        a = LogAllocator(0, 10)
        assert a.allocate_run(4) == [0, 1, 2, 3]

    def test_free_and_recycle(self):
        a = LogAllocator(0, 3)
        blocks = [a.allocate() for _ in range(3)]
        a.free(blocks[1])
        assert a.allocate() == blocks[1]

    def test_exhaustion(self):
        a = LogAllocator(0, 2)
        a.allocate()
        a.allocate()
        with pytest.raises(StorageError):
            a.allocate()

    def test_double_free_rejected(self):
        a = LogAllocator(0, 4)
        b = a.allocate()
        a.free(b)
        with pytest.raises(StorageError):
            a.free(b)

    def test_foreign_free_rejected(self):
        a = LogAllocator(10, 4)
        with pytest.raises(StorageError):
            a.free(3)

    def test_counters(self):
        a = LogAllocator(0, 5)
        a.allocate()
        a.allocate()
        assert a.allocated_count == 2
        assert a.free_count == 3

    def test_owns_and_is_allocated(self):
        a = LogAllocator(10, 4)
        b = a.allocate()
        assert a.owns(b) and a.is_allocated(b)
        assert not a.owns(9) and not a.owns(14)
        a.free(b)
        assert not a.is_allocated(b)
