"""Unit tests for the NVRAM meter."""

import pytest

from repro.constants import MAP_ENTRY_SIZE
from repro.errors import DedupError
from repro.storage.nvram import NvramMeter


class TestNvramMeter:
    def test_entry_size_default_matches_paper(self):
        assert NvramMeter().entry_size == MAP_ENTRY_SIZE == 20

    def test_add_remove(self):
        m = NvramMeter()
        m.add(3)
        m.remove(1)
        assert m.entries == 2
        assert m.bytes_used == 2 * 20

    def test_peak_tracks_high_water(self):
        m = NvramMeter()
        m.add(5)
        m.remove(4)
        m.add(2)
        assert m.peak_entries == 5
        assert m.peak_bytes == 100

    def test_underflow_rejected(self):
        m = NvramMeter()
        m.add(1)
        with pytest.raises(DedupError):
            m.remove(2)

    def test_negative_args_rejected(self):
        m = NvramMeter()
        with pytest.raises(DedupError):
            m.add(-1)
        with pytest.raises(DedupError):
            m.remove(-1)

    def test_invalid_entry_size(self):
        with pytest.raises(DedupError):
            NvramMeter(entry_size=0)
