"""Unit tests for the HDD service-time model."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import Disk, DiskParams


class TestDiskParams:
    def test_defaults_valid(self):
        p = DiskParams()
        assert p.total_blocks > 0

    def test_avg_rotational_latency_7200rpm(self):
        p = DiskParams(rpm=7200)
        # Half a revolution at 7200 RPM is ~4.17 ms.
        assert p.avg_rotational_latency == pytest.approx(60.0 / 7200 / 2)

    def test_seek_zero_distance_is_free(self):
        assert DiskParams().seek_time(0) == 0.0

    def test_seek_monotone_in_distance(self):
        p = DiskParams()
        seeks = [p.seek_time(d) for d in (1, 10, 1000, 100000, p.total_blocks)]
        assert all(a <= b for a, b in zip(seeks, seeks[1:]))

    def test_seek_bounded_by_min_max(self):
        p = DiskParams()
        assert p.seek_time(1) >= p.seek_min
        assert p.seek_time(p.total_blocks * 10) <= p.seek_max + 1e-12

    def test_negative_seek_distance_rejected(self):
        with pytest.raises(StorageError):
            DiskParams().seek_time(-1)

    def test_transfer_time_linear(self):
        p = DiskParams()
        assert p.transfer_time(8) == pytest.approx(2 * p.transfer_time(4))

    def test_invalid_params_rejected(self):
        with pytest.raises(StorageError):
            DiskParams(total_blocks=0)
        with pytest.raises(StorageError):
            DiskParams(rpm=0)
        with pytest.raises(StorageError):
            DiskParams(seek_min=2e-3, seek_max=1e-3)
        with pytest.raises(StorageError):
            DiskParams(transfer_rate=0)


class TestDiskService:
    def test_sequential_access_skips_seek_and_rotation(self):
        d = Disk(DiskParams())
        d.service(0.0, 100, 4)  # head now at 104
        t_seq = d.service_time(104, 4)
        p = d.params
        assert t_seq == pytest.approx(p.controller_overhead + p.transfer_time(4))

    def test_random_access_pays_seek_and_rotation(self):
        d = Disk(DiskParams())
        t = d.service_time(500000, 1)
        p = d.params
        assert t > p.seek_time(500000) + p.avg_rotational_latency

    def test_fcfs_busy_horizon(self):
        d = Disk(DiskParams())
        first = d.service(0.0, 1000, 1)
        second = d.service(0.0, 1000, 1)
        assert second > first
        assert d.busy_until == second

    def test_idle_disk_starts_at_issue_time(self):
        d = Disk(DiskParams())
        expected = d.service_time(0, 1)  # head at 0: transfer only
        done = d.service(10.0, 0, 1)
        assert done == pytest.approx(10.0 + expected)

    def test_head_advances(self):
        d = Disk(DiskParams())
        d.service(0.0, 200, 8)
        assert d.head == 208

    def test_out_of_range_access_rejected(self):
        d = Disk(DiskParams(total_blocks=100))
        with pytest.raises(StorageError):
            d.service_time(99, 2)
        with pytest.raises(StorageError):
            d.service_time(-1, 1)

    def test_reset(self):
        d = Disk(DiskParams())
        d.service(0.0, 100, 1)
        d.reset()
        assert d.head == 0 and d.busy_until == 0.0 and d.ops_serviced == 0

    def test_counters(self):
        d = Disk(DiskParams())
        d.service(0.0, 0, 4)
        d.service(0.0, 100, 2)
        assert d.ops_serviced == 2
        assert d.blocks_moved == 6
        assert d.busy_time > 0
