"""Unit tests for the event-driven disk scheduler (FCFS / C-LOOK)."""

import pytest

from repro.errors import StorageError
from repro.sim.engine import Simulator
from repro.sim.request import DiskOp, OpType
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.scheduler import DiskScheduler, SchedulingPolicy


def make(policy):
    params = DiskParams(total_blocks=1 << 20)
    disk = Disk(params)
    sched = DiskScheduler(disk, policy)
    sim = Simulator([disk], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)), schedulers=[sched])
    return sim, sched, disk


def op(pba, n=1):
    return DiskOp(0, OpType.READ, pba, n)


class TestFCFS:
    def test_completion_order_is_submit_order(self):
        sim, sched, _disk = make(SchedulingPolicy.FCFS)
        done = []
        for pba in (500_000, 10, 900_000):
            sched.submit(sim, op(pba), lambda p=pba: done.append(p))
        sim.run()
        assert done == [500_000, 10, 900_000]

    def test_matches_analytic_path(self):
        """Event-driven FCFS must reproduce the analytic busy-horizon
        math exactly -- this validates both implementations."""
        pbas = [1000, 700_000, 3, 123_456, 123_460, 999_999]
        # analytic
        disk_a = Disk(DiskParams(total_blocks=1 << 20))
        sim_a = Simulator([disk_a], RaidArray(RaidGeometry(RaidLevel.SINGLE, 1)))
        analytic = sim_a.service_disk_ops(0.0, [op(p) for p in pbas])
        # event-driven
        sim_e, sched, disk_e = make(SchedulingPolicy.FCFS)
        last = []
        sim_e.issue_disk_ops([op(p) for p in pbas], last.append)
        sim_e.run()
        assert last[0] == pytest.approx(analytic)
        assert disk_e.head == disk_a.head


class TestCLOOK:
    def test_serves_ascending_from_head(self):
        sim, sched, disk = make(SchedulingPolicy.CLOOK)
        disk.head = 500
        done = []
        # Queue them while the disk is busy so reordering can happen:
        # first submit keeps the disk busy, the rest queue up.
        sched.submit(sim, op(500), lambda: done.append(500))
        for pba in (900, 100, 600, 300):
            sched.submit(sim, op(pba), lambda p=pba: done.append(p))
        sim.run()
        # After the first (at 500), the elevator sweeps upward (600,
        # 900), then wraps to the lowest (100, 300).
        assert done == [500, 600, 900, 100, 300]

    def test_wraps_when_nothing_ahead(self):
        sim, sched, disk = make(SchedulingPolicy.CLOOK)
        sched.submit(sim, op(800_000), lambda: None)
        done = []
        for pba in (400, 200):
            sched.submit(sim, op(pba), lambda p=pba: done.append(p))
        sim.run()
        assert done == [200, 400]

    def test_clook_total_seek_less_than_fcfs(self):
        """The elevator's reason to exist: less head movement for the
        same op set under queueing."""
        pbas = [900_000, 50, 500_000, 100_000, 999_000, 200, 750_000]

        def total_busy(policy):
            sim, sched, disk = make(policy)
            sim.issue_disk_ops([op(p) for p in pbas], lambda _t: None)
            sim.run()
            return disk.busy_time

        assert total_busy(SchedulingPolicy.CLOOK) < total_busy(SchedulingPolicy.FCFS)

    def test_queue_depth_tracked(self):
        sim, sched, _disk = make(SchedulingPolicy.CLOOK)
        for pba in (1, 2, 3):
            sched.submit(sim, op(pba), lambda: None)
        assert sched.max_queue_depth == 3
        sim.run()
        assert sched.queue_depth == 0


class TestGuards:
    def test_oversized_op_rejected(self):
        sim, sched, _disk = make(SchedulingPolicy.FCFS)
        with pytest.raises(StorageError):
            sched.submit(sim, op((1 << 20) - 1, 2), lambda: None)

    def test_analytic_service_blocked_in_event_mode(self):
        sim, _sched, _disk = make(SchedulingPolicy.FCFS)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim.service_disk_ops(0.0, [op(1)])

    def test_empty_issue_completes_immediately(self):
        sim, _sched, _disk = make(SchedulingPolicy.FCFS)
        got = []
        sim.issue_disk_ops([], got.append)
        assert got == [0.0]
