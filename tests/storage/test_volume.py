"""Unit tests for volume extents, coalescing and the content store."""

import pytest

from repro.errors import StorageError
from repro.sim.request import OpType
from repro.storage.volume import (
    ContentStore,
    VolumeOp,
    coalesce_extents,
    extents_to_ops,
)


class TestVolumeOp:
    def test_end_pba(self):
        assert VolumeOp(OpType.READ, 10, 5).end_pba == 15

    def test_invalid(self):
        with pytest.raises(StorageError):
            VolumeOp(OpType.READ, -1, 1)
        with pytest.raises(StorageError):
            VolumeOp(OpType.READ, 0, 0)


class TestCoalesce:
    def test_empty(self):
        assert coalesce_extents([]) == []

    def test_single(self):
        assert coalesce_extents([5]) == [(5, 1)]

    def test_contiguous_run(self):
        assert coalesce_extents([3, 4, 5]) == [(3, 3)]

    def test_unordered_input(self):
        assert coalesce_extents([7, 3, 4, 5, 9]) == [(3, 3), (7, 1), (9, 1)]

    def test_duplicates_collapse(self):
        assert coalesce_extents([2, 2, 3, 3]) == [(2, 2)]

    def test_fragmentation_visible(self):
        """Scattered blocks produce one extent each -- the read
        amplification that category 2 avoids."""
        scattered = [0, 10, 20, 30]
        assert len(coalesce_extents(scattered)) == 4

    def test_extents_to_ops(self):
        ops = extents_to_ops(OpType.READ, [1, 2, 8])
        assert ops == [VolumeOp(OpType.READ, 1, 2), VolumeOp(OpType.READ, 8, 1)]


class TestContentStore:
    def test_write_read_roundtrip(self):
        cs = ContentStore(100)
        cs.write(5, 1234)
        assert cs.read(5) == 1234

    def test_unwritten_reads_none(self):
        assert ContentStore(100).read(3) is None

    def test_overwrite(self):
        cs = ContentStore(100)
        cs.write(5, 1)
        cs.write(5, 2)
        assert cs.read(5) == 2
        assert cs.occupied_blocks() == 1

    def test_write_run(self):
        cs = ContentStore(100)
        cs.write_run(10, [7, 8, 9])
        assert [cs.read(p) for p in (10, 11, 12)] == [7, 8, 9]

    def test_discard(self):
        cs = ContentStore(100)
        cs.write(5, 1)
        cs.discard(5)
        assert cs.read(5) is None
        assert len(cs) == 0

    def test_bounds_checked(self):
        cs = ContentStore(10)
        with pytest.raises(StorageError):
            cs.write(10, 1)
        with pytest.raises(StorageError):
            cs.read(-1)

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            ContentStore(0)
