"""Unit tests for the write-ahead Map-table journal."""

import pytest

from repro.errors import DedupError, FaultError
from repro.storage.allocator import RegionMap
from repro.storage.journal import (
    KIND_CLEAR,
    KIND_SET,
    JournalRecord,
    MapJournal,
)
from repro.storage.nvram import NvramMeter


class TestRecords:
    def test_make_and_verify(self):
        rec = JournalRecord.make(0, KIND_SET, 5, 99)
        assert rec.verifies()

    def test_tampering_breaks_crc(self):
        rec = JournalRecord.make(3, KIND_SET, 5, 99)
        import dataclasses

        assert not dataclasses.replace(rec, pba=98).verifies()
        assert not dataclasses.replace(rec, lba=6).verifies()
        assert not dataclasses.replace(rec, seq=4).verifies()
        assert not dataclasses.replace(rec, kind=KIND_CLEAR).verifies()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            JournalRecord.make(0, "X", 1, 2)


class TestReplay:
    def test_empty_journal_replays_empty(self):
        mapping, replayed, torn = MapJournal().replay()
        assert mapping == {} and replayed == 0 and not torn

    def test_set_and_clear_replay_in_order(self):
        j = MapJournal()
        j.append_set(1, 100)
        j.append_set(2, 200)
        j.append_set(1, 101)  # remap wins
        j.append_clear(2)
        mapping, replayed, torn = j.replay()
        assert mapping == {1: 101}
        assert replayed == 4 and not torn

    def test_checkpoint_folds_tail(self):
        j = MapJournal()
        j.append_set(1, 100)
        j.checkpoint({1: 100})
        assert len(j) == 0 and j.checkpoint_entries == 1
        j.append_clear(1)
        mapping, replayed, torn = j.replay()
        assert mapping == {} and replayed == 1 and not torn
        assert j.records_appended == 2 and j.checkpoints_taken == 1

    def test_torn_tail_detected_and_discarded(self):
        j = MapJournal()
        for i in range(6):
            j.append_set(i, 100 + i)
        assert j.tear_tail(2) == 2
        mapping, replayed, torn = j.replay()
        assert torn
        assert replayed == 4
        # the torn suffix is untrusted: its mutations are gone
        assert mapping == {i: 100 + i for i in range(4)}
        # and physically discarded so later appends restart cleanly
        assert len(j) == 4

    def test_lost_tail_is_silent(self):
        j = MapJournal()
        for i in range(5):
            j.append_set(i, 100 + i)
        assert j.lose_tail(2) == 2
        mapping, replayed, torn = j.replay()
        # lost records leave no trace: replay succeeds on the prefix
        assert not torn and replayed == 3
        assert mapping == {0: 100, 1: 101, 2: 102}

    def test_lose_then_tear_composes(self):
        j = MapJournal()
        for i in range(8):
            j.append_set(i, 100 + i)
        j.lose_tail(2)
        j.tear_tail(2)
        mapping, replayed, torn = j.replay()
        assert torn and replayed == 4
        assert set(mapping) == {0, 1, 2, 3}

    def test_seq_chain_break_detected(self):
        j = MapJournal()
        j.append_set(1, 100)
        j.append_set(2, 200)
        j.append_set(3, 300)
        # drop the *middle* record: both neighbours still verify, but
        # the sequence chain 0 -> 2 breaks.
        del j._records[1]
        mapping, replayed, torn = j.replay()
        assert torn and replayed == 1
        assert mapping == {1: 100}

    def test_tear_beyond_length_clamped(self):
        j = MapJournal()
        j.append_set(1, 100)
        assert j.tear_tail(10) == 1
        assert j.lose_tail(10) == 1 or j.lose_tail(10) == 0

    def test_negative_amounts_rejected(self):
        j = MapJournal()
        with pytest.raises(FaultError):
            j.tear_tail(-1)
        with pytest.raises(FaultError):
            j.lose_tail(-1)


class TestMapTableIntegration:
    def make_table(self):
        from repro.dedup.map_table import MapTable

        regions = RegionMap(
            logical_blocks=256, log_blocks=64, index_blocks=8, swap_blocks=8
        )
        return MapTable(regions, NvramMeter())

    def attach(self, table):
        j = MapJournal()
        table.attach_journal(j)
        return j

    def test_write_ahead_logging_of_mutations(self):
        table = self.make_table()
        j = self.attach(table)
        log_pba = table.regions.log_base
        table.set_mapping(3, log_pba)
        table.clear_mapping(3)
        assert j.records_appended == 2
        mapping, _, torn = j.replay()
        assert mapping == {} and not torn

    def test_attach_checkpoints_existing_state(self):
        table = self.make_table()
        log_pba = table.regions.log_base
        table.set_mapping(3, log_pba)
        j = self.attach(table)
        assert j.checkpoint_entries == 1
        mapping, _, _ = j.replay()
        assert mapping == {3: log_pba}

    def test_restore_mapping_rederives_refcounts(self):
        table = self.make_table()
        log = table.regions.log_base
        mapping = {1: log, 2: log, 3: log + 1}
        table.restore_mapping(mapping)
        assert len(table) == 3
        assert table.refs(log) == 2 and table.refs(log + 1) == 1
        assert table.nvram.entries == 3
        assert table.translate(1) == log and table.translate(9) == table.regions.home_of(9)

    def test_restore_mapping_validates_targets(self):
        table = self.make_table()
        with pytest.raises(DedupError):
            table.restore_mapping({1: table.regions.total_blocks + 5})

    def test_crash_recovery_round_trip(self):
        """set/clear churn -> journal replay -> restore == snapshot."""
        table = self.make_table()
        self.attach(table)
        log = table.regions.log_base
        for i in range(10):
            table.set_mapping(i, log + (i % 4))
        for i in range(0, 10, 3):
            table.clear_mapping(i)
        truth = table.snapshot()
        mapping, _, torn = table.journal.replay()
        assert not torn and mapping == truth
        # wipe and restore
        table.restore_mapping(mapping)
        assert table.snapshot() == truth
        import collections

        assert table._refs == dict(collections.Counter(truth.values()))
