"""Unit tests for RAID-5 degraded-mode translation."""

import pytest

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import StorageError
from repro.sim.request import OpType
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.volume import VolumeOp

SU = BLOCKS_PER_STRIPE_UNIT


def raid5(ndisks=4):
    return RaidArray(RaidGeometry(RaidLevel.RAID5, ndisks))


class TestDegradedReads:
    def test_surviving_fragment_reads_normally(self):
        r = raid5()
        op = VolumeOp(OpType.READ, 0, 4)
        healthy_disk = r.locate(0)[0]
        failed = (healthy_disk + 1) % 4
        ops = r.map_read_degraded(op, failed)
        assert ops == r.map_read(op)

    def test_failed_fragment_reconstructs_from_all_survivors(self):
        r = raid5()
        op = VolumeOp(OpType.READ, 0, 4)
        failed = r.locate(0)[0]
        ops = r.map_read_degraded(op, failed)
        # one read per surviving member of the row
        assert len(ops) == 3
        assert {o.disk_id for o in ops} == set(range(4)) - {failed}
        assert all(o.op is OpType.READ and o.nblocks == 4 for o in ops)
        assert not any(o.disk_id == failed for o in ops)

    def test_mixed_read_spanning_failed_and_healthy(self):
        r = raid5()
        # two stripe units: one on the failed disk, one not
        failed = r.locate(0)[0]
        ops = r.map_read_degraded(VolumeOp(OpType.READ, 0, 2 * SU), failed)
        assert not any(o.disk_id == failed for o in ops)
        # the healthy unit reads once; the failed one fans out 3x
        assert len(ops) == 1 + 3

    def test_read_amplification_factor(self):
        """Degraded reads of failed-disk data cost ndisks-1 reads."""
        for ndisks in (3, 4, 6):
            r = raid5(ndisks)
            failed = r.locate(0)[0]
            ops = r.map_read_degraded(VolumeOp(OpType.READ, 0, 1), failed)
            assert len(ops) == ndisks - 1

    def test_failed_parity_member_leaves_row_reads_untouched(self):
        """Reads never touch parity, so losing a row's *parity* member
        costs nothing on the read path for that row."""
        r = raid5()
        row_blocks = 3 * SU
        for row in range(4):
            parity = r.parity_disk_of_row(row)
            op = VolumeOp(OpType.READ, row * row_blocks, row_blocks)
            assert r.map_read_degraded(op, parity) == r.map_read(op)

    def test_read_spanning_rotating_parity(self):
        """A long read crosses rows where the failed disk is parity in
        one row (free) and data in another (3x fan-out), thanks to the
        left-symmetric rotation."""
        r = raid5()
        row_blocks = 3 * SU
        failed = r.parity_disk_of_row(0)
        op = VolumeOp(OpType.READ, 0, 2 * row_blocks)
        ops = r.map_read_degraded(op, failed)
        assert not any(o.disk_id == failed for o in ops)
        # expected cost, fragment by fragment
        expected = 0
        for unit in range(6):
            disk = r.locate(unit * SU)[0]
            expected += 3 if disk == failed else 1
        assert len(ops) == expected
        # rotation guarantees the failed disk holds data in row 1
        assert expected > 6

    def test_multi_fragment_reconstruction_reads_align_per_fragment(self):
        """Each failed fragment is reconstructed from the *same* disk
        range on every survivor -- partial units stay partial."""
        r = raid5()
        failed, disk_pba = r.locate(2)[0], r.locate(2)[1]
        ops = r.map_read_degraded(VolumeOp(OpType.READ, 2, 3), failed)
        assert len(ops) == 3
        assert {o.disk_id for o in ops} == set(range(4)) - {failed}
        assert all(o.pba == disk_pba and o.nblocks == 3 for o in ops)

    def test_invalid_args(self):
        with pytest.raises(StorageError):
            raid5().map_read_degraded(VolumeOp(OpType.READ, 0, 1), 9)
        r0 = RaidArray(RaidGeometry(RaidLevel.RAID0, 4))
        with pytest.raises(StorageError):
            r0.map_read_degraded(VolumeOp(OpType.READ, 0, 1), 0)


class TestDegradedWrites:
    def test_never_touches_failed_disk(self):
        r = raid5()
        for start in (0, 5, SU, 3 * SU + 2):
            for failed in range(4):
                ops = r.map_degraded(VolumeOp(OpType.WRITE, start, 7), failed)
                assert not any(o.disk_id == failed for o in ops)

    def test_healthy_rows_unchanged(self):
        r = raid5()
        op = VolumeOp(OpType.WRITE, 0, 4)
        data_disk = r.locate(0)[0]
        parity = r.parity_disk_of_row(0)
        failed = next(d for d in range(4) if d not in (data_disk, parity))
        assert r.map_degraded(op, failed) == r.map_write(op)

    def test_write_to_failed_data_disk_reconstructs_for_parity(self):
        r = raid5()
        op = VolumeOp(OpType.WRITE, 0, 4)
        failed = r.locate(0)[0]
        ops = r.map_degraded(op, failed)
        # No data write happens (data disk gone); parity is still
        # read+written, with reconstruction reads replacing the lost
        # old-data read.
        parity = r.parity_disk_of_row(0)
        writes = [o for o in ops if o.op is OpType.WRITE]
        assert writes and all(o.disk_id == parity for o in writes)
        reads = [o for o in ops if o.op is OpType.READ]
        assert len(reads) >= 2  # survivors consulted

    def test_failed_parity_write_dropped(self):
        r = raid5()
        op = VolumeOp(OpType.WRITE, 0, 4)
        failed = r.parity_disk_of_row(0)
        ops = r.map_degraded(op, failed)
        data_disk = r.locate(0)[0]
        # data still written in place, no parity traffic at all
        assert any(o.disk_id == data_disk and o.op is OpType.WRITE for o in ops)
        assert not any(o.disk_id == failed for o in ops)


class TestDegradedReplay:
    def test_degraded_replay_slower_than_healthy(self):
        from repro.baselines.base import SchemeConfig
        from repro.baselines.native import Native
        from repro.sim.replay import ReplayConfig, replay_trace
        from repro.traces.synthetic import WEB_VM, generate_trace

        trace = generate_trace(WEB_VM, scale=0.01)

        def mean(config):
            scheme = Native(
                SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=64 * 1024)
            )
            return replay_trace(trace, scheme, config).metrics.overall_summary().mean

        healthy = mean(ReplayConfig())
        degraded = mean(ReplayConfig(failed_disk=1))
        assert degraded > healthy
