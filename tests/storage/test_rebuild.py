"""Unit tests for the RAID-5 rebuild controller."""

import pytest

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import StorageError
from repro.sim.request import OpType
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.rebuild import RebuildController

SU = BLOCKS_PER_STRIPE_UNIT


def raid5(ndisks=4):
    return RaidArray(RaidGeometry(RaidLevel.RAID5, ndisks))


class TestBatches:
    def test_one_row_traffic(self):
        rc = RebuildController(raid5(), failed_disk=2, disk_rows=10)
        ops = rc.next_batch(1)
        reads = [o for o in ops if o.op is OpType.READ]
        writes = [o for o in ops if o.op is OpType.WRITE]
        assert len(reads) == 3 and len(writes) == 1
        assert writes[0].disk_id == 2
        assert {o.disk_id for o in reads} == {0, 1, 3}
        assert all(o.nblocks == SU for o in ops)

    def test_rows_advance(self):
        rc = RebuildController(raid5(), failed_disk=0, disk_rows=3)
        for expected_pba in (0, SU, 2 * SU):
            ops = rc.next_batch(1)
            assert all(o.pba == expected_pba for o in ops)
        assert rc.done
        assert rc.next_batch(1) == []
        assert rc.progress == 1.0

    def test_multi_row_batch(self):
        rc = RebuildController(raid5(), failed_disk=1, disk_rows=8)
        ops = rc.next_batch(4)
        assert len(ops) == 4 * 4  # (3 reads + 1 write) x 4 rows
        assert rc.progress == pytest.approx(0.5)

    def test_full_rebuild_covers_every_row_once(self):
        rc = RebuildController(raid5(), failed_disk=3, disk_rows=17)
        pbas = []
        while not rc.done:
            for op in rc.next_batch(5):
                if op.op is OpType.WRITE:
                    pbas.append(op.pba)
        assert pbas == [row * SU for row in range(17)]
        assert rc.rows_rebuilt == 17


class TestCapacityAware:
    def test_dead_rows_skipped(self):
        # live data only in rows 0 and 2 (row = 3 data units of SU)
        row_blocks = 3 * SU
        live = {5, row_blocks * 2 + 7}
        rc = RebuildController(raid5(), failed_disk=1, disk_rows=4, live_pbas=live)
        pbas = []
        while not rc.done:
            for op in rc.next_batch(1):
                if op.op is OpType.WRITE:
                    pbas.append(op.pba)
        assert pbas == [0, 2 * SU]
        assert rc.rows_rebuilt == 2 and rc.rows_skipped == 2

    def test_empty_live_set_skips_everything(self):
        rc = RebuildController(raid5(), failed_disk=1, disk_rows=5, live_pbas=[])
        assert rc.next_batch(10) == []
        assert rc.done and rc.rows_skipped == 5


class TestBoundedScan:
    """next_batch work is bounded by rows *scanned*, not rows rebuilt.

    Regression tests for the unbounded-walk bug: on a mostly-empty
    disk the old controller kept walking until it found ``rows`` live
    rows, so one "paced" batch could scan the whole array in a single
    call and the background-load model charged nothing for it.
    """

    def test_sparse_disk_batches_stay_bounded(self):
        row_blocks = 3 * SU
        # live data only in the very last of 100 rows
        rc = RebuildController(
            raid5(), failed_disk=1, disk_rows=100, live_pbas={99 * row_blocks}
        )
        assert rc.next_batch(10) == []  # nothing live in rows 0..9 ...
        assert rc.rows_scanned == 10  # ... but only 10 rows examined
        assert rc.rows_skipped == 10 and not rc.done
        batches = 1
        while not rc.done:
            before = rc.rows_scanned
            rc.next_batch(10)
            assert rc.rows_scanned - before <= 10
            batches += 1
        assert batches == 10
        assert rc.rows_rebuilt == 1 and rc.rows_skipped == 99

    def test_scanned_equals_rebuilt_plus_skipped(self):
        row_blocks = 3 * SU
        live = {r * row_blocks for r in (0, 3, 4, 9)}
        rc = RebuildController(raid5(), failed_disk=0, disk_rows=12, live_pbas=live)
        while not rc.done:
            rc.next_batch(5)
            assert rc.rows_scanned == rc.rows_rebuilt + rc.rows_skipped
        assert rc.rows_scanned == 12
        assert rc.rows_rebuilt == 4 and rc.rows_skipped == 8

    def test_oblivious_mode_scans_exactly_what_it_rebuilds(self):
        rc = RebuildController(raid5(), failed_disk=2, disk_rows=7)
        while not rc.done:
            rc.next_batch(2)
        assert rc.rows_scanned == rc.rows_rebuilt == 7
        assert rc.rows_skipped == 0

    def test_progress_counts_scanned_rows(self):
        rc = RebuildController(raid5(), failed_disk=1, disk_rows=8, live_pbas=[])
        rc.next_batch(4)
        assert rc.progress == pytest.approx(0.5)
        assert rc.rows_scanned == 4


class TestGuards:
    def test_raid0_rejected(self):
        r0 = RaidArray(RaidGeometry(RaidLevel.RAID0, 4))
        with pytest.raises(StorageError):
            RebuildController(r0, 0, 10)

    def test_bad_disk_rejected(self):
        with pytest.raises(StorageError):
            RebuildController(raid5(), 7, 10)

    def test_bad_rows_rejected(self):
        with pytest.raises(StorageError):
            RebuildController(raid5(), 0, 0)
        rc = RebuildController(raid5(), 0, 5)
        with pytest.raises(StorageError):
            rc.next_batch(0)
