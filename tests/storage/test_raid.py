"""Unit tests for the RAID address mapping and small-write handling."""

import pytest

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import StorageError
from repro.sim.request import OpType
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel, _merge_ranges
from repro.storage.volume import VolumeOp

SU = BLOCKS_PER_STRIPE_UNIT  # 16 blocks = 64 KB


def raid5(ndisks=4):
    return RaidArray(RaidGeometry(level=RaidLevel.RAID5, ndisks=ndisks))


def raid0(ndisks=4):
    return RaidArray(RaidGeometry(level=RaidLevel.RAID0, ndisks=ndisks))


class TestGeometry:
    def test_raid5_needs_three_disks(self):
        with pytest.raises(StorageError):
            RaidGeometry(level=RaidLevel.RAID5, ndisks=2)

    def test_single_means_one_disk(self):
        with pytest.raises(StorageError):
            RaidGeometry(level=RaidLevel.SINGLE, ndisks=2)

    def test_data_disks(self):
        assert RaidGeometry(RaidLevel.RAID5, 4).data_disks == 3
        assert RaidGeometry(RaidLevel.RAID0, 4).data_disks == 4
        assert RaidGeometry(RaidLevel.SINGLE, 1).data_disks == 1

    def test_volume_capacity(self):
        r = raid5(4)
        # 4 disks of 160 blocks = 10 rows; 3 data units/row.
        assert r.volume_capacity_blocks(160) == 10 * 3 * SU


class TestParityRotation:
    def test_left_symmetric_rotation(self):
        r = raid5(4)
        assert [r.parity_disk_of_row(row) for row in range(4)] == [3, 2, 1, 0]
        assert r.parity_disk_of_row(4) == 3

    def test_parity_only_on_raid5(self):
        with pytest.raises(StorageError):
            raid0().parity_disk_of_row(0)


class TestLocate:
    def test_data_never_lands_on_parity_disk(self):
        r = raid5(4)
        for pba in range(0, 3 * SU * 8):
            disk, _dpba, row = r.locate(pba)
            assert disk != r.parity_disk_of_row(row)

    def test_mapping_is_injective(self):
        r = raid5(5)
        seen = set()
        for pba in range(4 * SU * 10):
            disk, dpba, _ = r.locate(pba)
            assert (disk, dpba) not in seen
            seen.add((disk, dpba))

    def test_negative_pba_rejected(self):
        with pytest.raises(StorageError):
            raid5().locate(-1)

    def test_raid0_round_robin(self):
        r = raid0(4)
        disks = [r.locate(unit * SU)[0] for unit in range(8)]
        assert disks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestReads:
    def test_small_read_single_op(self):
        ops = raid5().map_read(VolumeOp(OpType.READ, 0, 4))
        assert len(ops) == 1
        assert ops[0].nblocks == 4

    def test_read_spanning_units_splits(self):
        ops = raid5().map_read(VolumeOp(OpType.READ, SU - 2, 4))
        assert len(ops) == 2
        assert {op.nblocks for op in ops} == {2}
        assert ops[0].disk_id != ops[1].disk_id

    def test_read_preserves_block_count(self):
        for start in (0, 3, SU, 5 * SU + 7):
            for length in (1, SU, 3 * SU, 100):
                ops = raid5().map_read(VolumeOp(OpType.READ, start, length))
                assert sum(op.nblocks for op in ops) == length

    def test_map_read_rejects_write(self):
        with pytest.raises(StorageError):
            raid5().map_read(VolumeOp(OpType.WRITE, 0, 1))


class TestWrites:
    def test_raid0_write_no_parity(self):
        ops = raid0().map_write(VolumeOp(OpType.WRITE, 0, 4))
        assert all(op.op is OpType.WRITE for op in ops)
        assert sum(op.nblocks for op in ops) == 4

    def test_small_write_pays_rmw(self):
        """A sub-stripe write on RAID-5 needs 2 reads + 2 writes."""
        ops = raid5().map_write(VolumeOp(OpType.WRITE, 0, 4))
        reads = [op for op in ops if op.op is OpType.READ]
        writes = [op for op in ops if op.op is OpType.WRITE]
        assert len(reads) == 2 and len(writes) == 2
        parity = raid5().parity_disk_of_row(0)
        assert {op.disk_id for op in ops} == {0, parity}

    def test_full_stripe_write_has_no_reads(self):
        row_blocks = 3 * SU
        ops = raid5().map_write(VolumeOp(OpType.WRITE, 0, row_blocks))
        assert all(op.op is OpType.WRITE for op in ops)
        # 3 data writes + 1 parity write.
        assert len(ops) == 4
        assert sum(op.nblocks for op in ops) == row_blocks + SU

    def test_partial_plus_full_rows(self):
        row_blocks = 3 * SU
        # Half a row then a full row.
        ops = raid5().map_write(VolumeOp(OpType.WRITE, row_blocks // 2, row_blocks + row_blocks // 2))
        data_written = sum(
            op.nblocks for op in ops if op.op is OpType.WRITE
        )
        # All data blocks written plus at least one parity unit.
        assert data_written > row_blocks

    def test_write_data_block_count_preserved(self):
        r = raid5()
        for start in (0, 5, SU + 3):
            for length in (1, 7, SU, 2 * SU + 5):
                ops = r.map_write(VolumeOp(OpType.WRITE, start, length))
                parity_disks = {
                    r.parity_disk_of_row(row)
                    for row in range(start // (3 * SU), (start + length) // (3 * SU) + 1)
                }
                data_writes = sum(
                    op.nblocks
                    for op in ops
                    if op.op is OpType.WRITE and not _is_parity(r, op)
                )
                assert data_writes == length

    def test_map_write_rejects_read(self):
        with pytest.raises(StorageError):
            raid5().map_write(VolumeOp(OpType.READ, 0, 1))


def _is_parity(r, op):
    row = op.pba // SU
    return op.disk_id == r.parity_disk_of_row(row)


class TestMergeRanges:
    def test_disjoint(self):
        assert _merge_ranges([(0, 2), (5, 1)]) == [(0, 2), (5, 1)]

    def test_adjacent_merge(self):
        assert _merge_ranges([(0, 2), (2, 3)]) == [(0, 5)]

    def test_overlap_merge(self):
        assert _merge_ranges([(0, 4), (2, 5)]) == [(0, 7)]

    def test_unsorted_input(self):
        assert _merge_ranges([(5, 2), (0, 3)]) == [(0, 3), (5, 2)]

    def test_empty(self):
        assert _merge_ranges([]) == []
