"""Unit tests for the declarative scheme registry.

One table now feeds the CLI, the experiment runner and the parallel
matrix; these tests pin its resolution semantics (case-insensitive
names + aliases), the paper comparison set's order, and the collision
rules that keep the table unambiguous.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.native import Native
from repro.baselines.registry import (
    DEFAULT_REGISTRY,
    SchemeEntry,
    SchemeRegistry,
)
from repro.errors import ConfigError


class TestDefaultRegistry:
    def test_paper_schemes_match_figure_legends(self):
        assert DEFAULT_REGISTRY.paper_schemes() == (
            "Native",
            "Full-Dedupe",
            "iDedup",
            "Select-Dedupe",
            "POD",
        )

    def test_every_scheme_resolves_case_insensitively(self):
        for name in DEFAULT_REGISTRY.names():
            assert DEFAULT_REGISTRY.resolve_name(name.lower()) == name
            assert DEFAULT_REGISTRY.resolve_name(name.upper()) == name

    def test_aliases(self):
        assert DEFAULT_REGISTRY.resolve_name("pod") == "POD"
        assert DEFAULT_REGISTRY.resolve_name("full") == "Full-Dedupe"
        assert DEFAULT_REGISTRY.resolve_name("baseline") == "Native"
        assert DEFAULT_REGISTRY.resolve_name("select") == "Select-Dedupe"
        assert DEFAULT_REGISTRY.resolve_name("offline") == "Post-Process"
        assert DEFAULT_REGISTRY.resolve_name("iodedup") == "I/O-Dedup"

    def test_unknown_scheme_lists_candidates(self):
        with pytest.raises(ConfigError, match="unknown scheme"):
            DEFAULT_REGISTRY.resolve("no-such-scheme")

    def test_contains(self):
        assert "POD" in DEFAULT_REGISTRY
        assert "pod" in DEFAULT_REGISTRY
        assert "nope" not in DEFAULT_REGISTRY
        assert 7 not in DEFAULT_REGISTRY

    def test_build_constructs_configured_scheme(self):
        scheme = DEFAULT_REGISTRY.build(
            "native", SchemeConfig(logical_blocks=64, memory_bytes=4096)
        )
        assert isinstance(scheme, Native)
        assert scheme.config.logical_blocks == 64

    def test_classes_view_matches_runner_table(self):
        from repro.experiments.runner import PAPER_SCHEMES, SCHEME_CLASSES

        assert SCHEME_CLASSES == DEFAULT_REGISTRY.classes()
        assert PAPER_SCHEMES == DEFAULT_REGISTRY.paper_schemes()


class TestRegistryRules:
    def test_duplicate_name_rejected(self):
        reg = SchemeRegistry([SchemeEntry("A", Native)])
        with pytest.raises(ConfigError, match="already registered"):
            reg.register(SchemeEntry("A", Native))

    def test_alias_collision_rejected(self):
        reg = SchemeRegistry([SchemeEntry("A", Native, aliases=("x",))])
        with pytest.raises(ConfigError, match="collides"):
            reg.register(SchemeEntry("B", Native, aliases=("X",)))

    def test_registration_order_is_preserved(self):
        reg = SchemeRegistry(
            [
                SchemeEntry("Z", Native, paper=True),
                SchemeEntry("A", Native),
                SchemeEntry("M", Native, paper=True),
            ]
        )
        assert reg.names() == ["Z", "A", "M"]
        assert reg.paper_schemes() == ("Z", "M")
        assert len(reg) == 3
