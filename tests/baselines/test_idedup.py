"""Behavioural tests for the iDedup baseline."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.idedup import IDedup
from tests.conftest import Oracle


@pytest.fixture
def idedup():
    return IDedup(
        SchemeConfig(
            logical_blocks=4096,
            memory_bytes=256 * 1024,
            idedup_threshold=4,
        )
    )


class TestIDedup:
    def test_small_redundant_write_ignored(self, idedup):
        """The behaviour POD's paper criticises: a fully redundant
        4 KB write passes straight through."""
        o = Oracle(idedup)
        o.write(0, [1])
        planned = o.write(100, [1])
        assert not planned.eliminated
        assert idedup.write_requests_removed == 0
        o.check()

    def test_below_threshold_run_ignored(self, idedup):
        o = Oracle(idedup)
        o.write(0, [1, 2, 3])
        planned = o.write(100, [1, 2, 3])  # run of 3 < threshold 4
        assert not planned.eliminated
        o.check()

    def test_long_sequential_run_deduplicated(self, idedup):
        o = Oracle(idedup)
        o.write(0, [1, 2, 3, 4, 5])
        planned = o.write(100, [1, 2, 3, 4, 5])
        assert planned.eliminated
        assert idedup.map_table.translate_many(range(100, 105)) == list(range(5))
        o.check()

    def test_partial_long_run_dedupes_run_only(self, idedup):
        o = Oracle(idedup)
        o.write(0, [1, 2, 3, 4])
        planned = o.write(100, [1, 2, 3, 4, 90, 91])
        written = sum(op.nblocks for op in planned.volume_ops)
        assert written == 2
        o.check()

    def test_scattered_duplicates_never_deduplicated(self, idedup):
        o = Oracle(idedup)
        o.write(0, [1])
        o.write(2, [2])
        o.write(4, [3])
        o.write(6, [4])
        planned = o.write(100, [1, 2, 3, 4])  # redundant but scattered
        assert not planned.eliminated
        written = sum(op.nblocks for op in planned.volume_ops)
        assert written == 4
        o.check()

    def test_no_disk_index_lookups(self, idedup, rng):
        o = Oracle(idedup)
        for _ in range(100):
            o.write(int(rng.integers(0, 500)), [int(rng.integers(1, 30))])
        assert idedup.disk_index_lookups == 0

    def test_threshold_comes_from_config(self):
        s = IDedup(
            SchemeConfig(logical_blocks=2048, memory_bytes=64 * 1024, idedup_threshold=2)
        )
        o = Oracle(s)
        o.write(0, [1, 2])
        planned = o.write(100, [1, 2])
        assert planned.eliminated
        o.check()

    def test_integrity_under_churn(self, idedup, rng):
        o = Oracle(idedup)
        for _ in range(300):
            lba = int(rng.integers(0, 600))
            n = int(rng.integers(1, 8))
            o.write(lba, [int(rng.integers(1, 40)) for _ in range(n)])
        o.check()
