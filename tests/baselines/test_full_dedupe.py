"""Behavioural tests for the Full-Dedupe baseline."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.full_dedupe import FullDedupe
from repro.constants import INDEX_ENTRY_SIZE
from repro.sim.request import OpType
from tests.conftest import Oracle


def make(entries=1024, charge_index_io=True):
    # memory sized so the index cache holds `entries` fingerprints
    memory = entries * INDEX_ENTRY_SIZE * 2
    return FullDedupe(
        SchemeConfig(
            logical_blocks=4096,
            memory_bytes=memory,
            charge_index_io=charge_index_io,
        )
    )


class TestFullDedupe:
    def test_dedupes_everything_redundant(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(2, [2])
        # scattered partial: Full-Dedupe dedupes it anyway
        planned = o.write(100, [1, 50, 2, 51])
        written = sum(op.nblocks for op in planned.volume_ops if op.op is OpType.WRITE)
        assert written == 2  # both duplicates removed
        assert s.write_blocks_deduped >= 2
        o.check()

    def test_fragmented_write_is_multiple_extents(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(2, [2])
        planned = o.write(100, [50, 1, 51, 2, 52])
        writes = [op for op in planned.volume_ops if op.op is OpType.WRITE]
        assert len(writes) >= 2  # holes fragment the residual write

    def test_cold_lookup_pays_index_region_read(self):
        s = make(entries=2)  # tiny hot cache
        o = Oracle(s)
        for i in range(10):
            o.write(i * 4, [100 + i])
        before = s.disk_index_lookups
        o.write(200, [100])  # fp 100 long evicted from the hot cache
        assert s.disk_index_lookups > before
        o.check()

    def test_cold_lookup_ops_target_index_region(self):
        s = make(entries=2)
        o = Oracle(s)
        for i in range(10):
            o.write(i * 4, [100 + i])
        planned = o.write(200, [100])
        index_reads = [
            op for op in planned.volume_ops if s.regions.is_index(op.pba)
        ]
        assert index_reads and all(op.op is OpType.READ for op in index_reads)

    def test_charge_index_io_can_be_disabled(self):
        s = make(entries=2, charge_index_io=False)
        o = Oracle(s)
        for i in range(10):
            o.write(i * 4, [100 + i])
        planned = o.write(200, [100])
        assert not any(s.regions.is_index(op.pba) for op in planned.volume_ops)
        assert s.disk_index_lookups > 0  # still counted

    def test_full_index_finds_evicted_duplicates(self):
        """The defining difference from Select-Dedupe: cold
        duplicates are still detected (at disk-lookup cost)."""
        s = make(entries=2)
        o = Oracle(s)
        o.write(0, [777])
        for i in range(10):  # push fp 777 out of the hot cache
            o.write(4 + i * 4, [1000 + i])
        planned = o.write(400, [777])
        assert planned.eliminated is True
        o.check()

    def test_full_index_invalidated_on_overwrite(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(0, [2])  # PBA 0 content changed
        planned = o.write(100, [1])  # fp 1 no longer on disk
        assert not planned.eliminated
        o.check()

    def test_full_index_entry_count_reported(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1, 2, 3])
        assert s.stats()["full_index_entries"] == 3

    def test_reclaimed_log_block_leaves_full_index(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(100, [1])   # LBA 100 -> PBA 0
        o.write(0, [2])     # LBA 0 redirected to log with fp 2
        log_pba = s.map_table.translate(0)
        o.write(100, [3])   # unpin home
        o.write(0, [4])     # back to home; log block freed
        assert not s.log_alloc.is_allocated(log_pba)
        # fp 2 must not resolve to the freed block anymore
        planned = o.write(300, [2])
        assert not planned.eliminated or s.map_table.translate(300) != log_pba
        o.check()

    def test_integrity_under_churn(self, rng):
        s = make(entries=16)
        o = Oracle(s)
        for _ in range(400):
            lba = int(rng.integers(0, 600))
            n = int(rng.integers(1, 5))
            o.write(lba, [int(rng.integers(1, 60)) for _ in range(n)])
        o.check()
