"""Behavioural tests for the I/O-Deduplication extension baseline."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.iodedup import IODedup
from tests.conftest import Oracle


@pytest.fixture
def iod():
    return IODedup(SchemeConfig(logical_blocks=2048, memory_bytes=256 * 1024))


class TestIODedup:
    def test_never_removes_writes(self, iod):
        o = Oracle(iod)
        o.write(0, [1])
        planned = o.write(100, [1])
        assert not planned.eliminated
        assert iod.write_requests_removed == 0
        o.check()

    def test_no_capacity_saving(self, iod):
        o = Oracle(iod)
        o.write(0, [1])
        o.write(100, [1])
        assert iod.capacity_blocks() == 2

    def test_content_addressed_cache_shares_entries(self, iod):
        """Reading LBA A caches its *content*; reading LBA B with the
        same content hits without a disk access."""
        o = Oracle(iod)
        o.write(0, [777])
        o.write(100, [777])
        o.read(0, 1)  # miss, caches content 777
        planned = o.read(100, 1)  # different LBA, same content
        assert planned.cache_hit_blocks == 1
        assert planned.volume_ops == []

    def test_lba_cache_would_have_missed(self, iod):
        """Contrast: different content at the other LBA still misses."""
        o = Oracle(iod)
        o.write(0, [777])
        o.write(100, [888])
        o.read(0, 1)
        planned = o.read(100, 1)
        assert planned.cache_hit_blocks == 0

    def test_overwrite_switches_content_key(self, iod):
        o = Oracle(iod)
        o.write(0, [1])
        o.read(0, 1)
        o.write(0, [2])
        planned = o.read(0, 1)  # content changed: must miss
        assert planned.cache_hit_blocks == 0
        o.check()

    def test_features_match_table1(self, iod):
        assert iod.features["capacity_saving"] is False
        assert iod.features["performance_enhancement"] is True
        assert iod.features["small_writes_elimination"] is False

    def test_integrity(self, iod, rng):
        o = Oracle(iod)
        for _ in range(200):
            lba = int(rng.integers(0, 400))
            o.write(lba, [int(rng.integers(1, 30))])
        o.check()
