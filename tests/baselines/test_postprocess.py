"""Behavioural tests for the post-processing dedup baseline."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.postprocess import PostProcessDedupe
from repro.sim.request import OpType
from tests.conftest import Oracle


@pytest.fixture
def pp():
    return PostProcessDedupe(
        SchemeConfig(logical_blocks=4096, memory_bytes=128 * 1024)
    )


class TestForegroundPath:
    def test_writes_are_native_speed(self, pp):
        o = Oracle(pp)
        planned = o.write(0, [1, 2])
        assert planned.delay == 0.0  # no inline fingerprinting
        assert pp.hash_engine.chunks_hashed == 0

    def test_no_foreground_write_elimination(self, pp):
        o = Oracle(pp)
        o.write(0, [1])
        planned = o.write(100, [1])  # duplicate content, still written
        assert not planned.eliminated
        assert pp.write_requests_removed == 0


class TestBackgroundPass:
    def test_duplicates_reclaimed_offline(self, pp):
        o = Oracle(pp)
        o.write(0, [1, 2])
        o.write(100, [1, 2])
        assert pp.capacity_blocks() == 4  # both copies on disk
        pp.on_epoch(1.0)
        assert pp.capacity_blocks() == 2  # the copy was reclaimed
        assert pp.offline_deduped_blocks == 2
        o.check()

    def test_scan_returns_read_traffic(self, pp):
        o = Oracle(pp)
        o.write(0, [1, 2, 3])
        ops = pp.on_epoch(1.0)
        assert ops and all(op.op is OpType.READ for op in ops)
        assert sum(op.nblocks for op in ops) == 3

    def test_second_pass_scans_only_new_writes(self, pp):
        o = Oracle(pp)
        o.write(0, [1, 2])
        pp.on_epoch(1.0)
        assert pp.on_epoch(2.0) == []  # nothing dirty
        o.write(50, [9])
        ops = pp.on_epoch(3.0)
        assert sum(op.nblocks for op in ops) == 1

    def test_same_location_redundancy_reclaims_nothing(self, pp):
        """Section II-A: a rewrite of identical content to the same
        LBA leaves nothing for an offline pass to reclaim -- the I/O
        redundancy post-processing cannot harvest."""
        o = Oracle(pp)
        o.write(0, [1])
        pp.on_epoch(1.0)
        o.write(0, [1])  # same location, same content
        pp.on_epoch(2.0)
        assert pp.offline_deduped_blocks == 0
        assert pp.capacity_blocks() == 1

    def test_overwrite_after_dedupe_respects_consistency(self, pp):
        o = Oracle(pp)
        o.write(0, [7])
        o.write(100, [7])
        pp.on_epoch(1.0)  # LBA 100 now shares LBA 0's block
        o.write(0, [8])  # must redirect, not clobber the shared block
        assert pp.content.read(pp.map_table.translate(100)) == 7
        o.check()

    def test_canonical_overwritten_between_passes(self, pp):
        """If the canonical copy changes before a duplicate is found,
        the stale index entry must not cause a false dedup."""
        o = Oracle(pp)
        o.write(0, [5])
        pp.on_epoch(1.0)  # fp 5 canonical at block 0
        o.write(0, [6])  # canonical content replaced
        o.write(100, [5])  # duplicate of the *old* content
        pp.on_epoch(2.0)
        assert pp.content.read(pp.map_table.translate(100)) == 5
        o.check()

    def test_integrity_under_churn(self, pp, rng):
        o = Oracle(pp)
        for step in range(300):
            lba = int(rng.integers(0, 800))
            n = int(rng.integers(1, 5))
            o.write(lba, [int(rng.integers(1, 50)) for _ in range(n)])
            if step % 20 == 0:
                pp.on_epoch(float(step))
        pp.on_epoch(1e6)
        o.check()


class TestTable1Profile:
    def test_features(self, pp):
        assert pp.features["capacity_saving"] is True
        assert pp.features["performance_enhancement"] is False
        assert pp.features["small_writes_elimination"] is False
        assert pp.features["cache_partitioning"] == "static"

    def test_stats_keys(self, pp):
        o = Oracle(pp)
        o.write(0, [1])
        pp.on_epoch(1.0)
        s = pp.stats()
        assert s["offline_scans"] == 1
        assert s["offline_scan_blocks"] == 1
        assert "offline_index_entries" in s
