"""Tests of the shared DedupScheme machinery, driven directly.

The scheme subclasses are covered by their own behavioural suites;
these tests pin down the *base-class* contracts: swap-op placement,
stale-dedupe fallback, counter bookkeeping, the eliminated flag, and
the write-target interplay with the log allocator.
"""

import pytest

from repro.baselines.base import PlannedIO, SchemeConfig
from repro.core.select_dedupe import SelectDedupe
from repro.sim.request import OpType
from tests.conftest import Oracle


@pytest.fixture
def scheme():
    return SelectDedupe(
        SchemeConfig(logical_blocks=2048, memory_bytes=128 * 1024)
    )


class TestPlannedIO:
    def test_defaults(self):
        p = PlannedIO()
        assert p.delay == 0.0
        assert p.volume_ops == [] and p.background_ops == []
        assert not p.eliminated
        assert p.ssd_read_blocks == 0 and p.ssd_write_blocks == 0


class TestSwapOps:
    def test_swap_ops_stay_in_swap_region(self, scheme):
        ops = scheme._swap_ops(64 * 4096)
        assert len(ops) == 2
        for op in ops:
            assert scheme.regions.is_swap(op.pba)
            assert scheme.regions.is_swap(op.pba + op.nblocks - 1)
        assert ops[0].op is OpType.READ and ops[1].op is OpType.WRITE

    def test_zero_bytes_no_ops(self, scheme):
        assert scheme._swap_ops(0.0) == []

    def test_cursor_advances_and_wraps(self, scheme):
        starts = []
        for _ in range(6):
            ops = scheme._swap_ops(16 * 4096)
            if ops:
                starts.append(ops[0].pba)
        # the cursor rotates through the region and wraps to its base
        assert len(set(starts)) >= 3
        assert starts[0] == scheme.regions.swap_base
        assert scheme.regions.swap_base in starts[1:]  # wrapped around


class TestEliminatedFlag:
    def test_eliminated_iff_no_data_ops(self, scheme):
        o = Oracle(scheme)
        unique = o.write(0, [1, 2])
        assert not unique.eliminated and unique.volume_ops
        dup = o.write(100, [1, 2])
        assert dup.eliminated and not dup.volume_ops


class TestWriteTargetAndLog:
    def test_redirect_counts(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(100, [1])  # pin home 0
        before = scheme.redirected_writes
        o.write(0, [2])  # must redirect
        assert scheme.redirected_writes == before + 1
        assert scheme.log_alloc.allocated_count == 1
        o.check()

    def test_log_block_update_in_place_no_new_alloc(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(100, [1])
        o.write(0, [2])  # redirected to log
        allocated = scheme.log_alloc.allocated_count
        o.write(0, [3])  # private log block: update in place
        assert scheme.log_alloc.allocated_count == allocated
        o.check()


class TestCounters:
    def test_block_accounting_balances(self, scheme, rng):
        o = Oracle(scheme)
        total = 0
        for _ in range(100):
            n = int(rng.integers(1, 5))
            o.write(int(rng.integers(0, 900)), [int(rng.integers(1, 30)) for _ in range(n)])
            total += n
        assert scheme.write_blocks_total == total
        assert (
            scheme.write_blocks_written + scheme.write_blocks_deduped == total
        )

    def test_stats_contains_cache_and_index_sections(self, scheme):
        s = scheme.stats()
        assert any(k.startswith("cache_") for k in s)
        assert any(k.startswith("index_") for k in s)
        assert s["scheme"] == "Select-Dedupe"

    def test_read_counters(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1, 2, 3])
        o.read(0, 3)
        o.read(0, 3)
        assert scheme.reads_total == 2
        assert scheme.read_blocks_total == 6
        assert scheme.read_cache_hit_blocks == 3  # second read hits


class TestIntraRequestStaleness:
    def test_duplicate_of_chunk_overwritten_in_same_request(self, scheme):
        """A request that overwrites a donor block and later dedupes
        onto it must fall back to a plain write (content check)."""
        o = Oracle(scheme)
        o.write(10, [7])         # donor: fp 7 at PBA 10
        # one request: chunk 0 overwrites LBA 10 (new content), the
        # index still claims fp 7 @ 10 at lookup time for chunk 1...
        planned = o.write(10, [8, 7])
        # ...but the commit must not dedupe onto the now-stale block.
        o.check()
        assert scheme.stale_dedupe_avoided >= 0  # counted when it happens
