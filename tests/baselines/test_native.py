"""Behavioural tests for the Native (no-dedup) baseline."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.native import Native
from repro.sim.request import OpType
from tests.conftest import Oracle


@pytest.fixture
def native():
    return Native(SchemeConfig(logical_blocks=2048, memory_bytes=128 * 1024))


class TestNative:
    def test_no_fingerprinting(self, native):
        o = Oracle(native)
        planned = o.write(0, [1, 2])
        assert planned.delay == 0.0
        assert native.hash_engine.chunks_hashed == 0

    def test_never_eliminates_writes(self, native):
        o = Oracle(native)
        o.write(0, [1])
        planned = o.write(100, [1])  # duplicate content, still written
        assert not planned.eliminated
        assert native.write_requests_removed == 0

    def test_writes_land_in_place(self, native):
        o = Oracle(native)
        o.write(5, [1, 2, 3])
        assert native.map_table.translate_many([5, 6, 7]) == [5, 6, 7]
        assert len(native.map_table) == 0

    def test_full_memory_is_read_cache(self, native):
        assert native.cache.index.capacity_bytes == 0
        assert native.cache.read.capacity_bytes == native.config.memory_bytes

    def test_read_hits_after_miss(self, native):
        o = Oracle(native)
        o.write(0, [1, 2])
        first = o.read(0, 2)
        assert first.cache_hit_blocks == 0
        second = o.read(0, 2)
        assert second.cache_hit_blocks == 2
        assert second.volume_ops == []

    def test_write_invalidates_read_cache(self, native):
        o = Oracle(native)
        o.write(0, [1])
        o.read(0, 1)
        o.write(0, [2])
        planned = o.read(0, 1)
        assert planned.cache_hit_blocks == 0  # stale entry was dropped

    def test_reads_are_single_extents(self, native):
        o = Oracle(native)
        o.write(10, [1, 2, 3, 4])
        planned = o.read(10, 4)
        assert len(planned.volume_ops) == 1
        assert planned.volume_ops[0].op is OpType.READ

    def test_capacity_equals_unique_lbas(self, native):
        o = Oracle(native)
        o.write(0, [1, 2])
        o.write(1, [3, 4])  # overlaps one block
        assert native.capacity_blocks() == 3

    def test_integrity(self, native, rng):
        o = Oracle(native)
        for _ in range(200):
            lba = int(rng.integers(0, 500))
            o.write(lba, [int(rng.integers(1, 50))])
        o.check()
