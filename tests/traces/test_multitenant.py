"""Tests for the multi-tenant clone-family workload generator.

``clone_tenants`` models K tenants provisioned from one golden image:
tenant 0 is the pristine base, later tenants privatise a ``divergence``
fraction of the base content and arrive at skewed rates.  These tests
pin determinism, the divergence/sharing arithmetic and the
fingerprint-space salting that keeps unrelated trace families from
aliasing as duplicates.
"""

import pytest

from repro.errors import TraceError
from repro.traces.synthetic import (
    FP_FAMILY_STRIDE,
    FP_TENANT_STRIDE,
    clone_tenants,
    generate_trace,
    paper_traces,
    salt_fingerprints,
)


def _base_trace(scale=0.02, seed=3):
    return generate_trace(paper_traces()["web-vm"].scaled(scale), seed=seed)


def _fps(trace):
    out = set()
    for rec in trace.records:
        if rec.fingerprints:
            out.update(rec.fingerprints)
    return out


class TestSaltFingerprints:
    def test_shifts_every_fingerprint(self):
        base = _base_trace()
        salted = salt_fingerprints(base, FP_FAMILY_STRIDE, name="web-vm/f1")
        assert salted.name == "web-vm/f1"
        assert len(salted.records) == len(base.records)
        assert min(_fps(salted)) >= FP_FAMILY_STRIDE
        # content relations are preserved: same shift everywhere
        assert _fps(salted) == {fp + FP_FAMILY_STRIDE for fp in _fps(base)}

    def test_zero_salt_without_rename_is_identity(self):
        base = _base_trace()
        assert salt_fingerprints(base, 0) is base

    def test_negative_salt_rejected(self):
        with pytest.raises(TraceError):
            salt_fingerprints(_base_trace(), -1)


class TestCloneTenants:
    def test_deterministic(self):
        base = _base_trace()
        a = clone_tenants(base, 3, divergence=0.2, seed=77)
        b = clone_tenants(base, 3, divergence=0.2, seed=77)
        for ta, tb in zip(a, b):
            assert ta.name == tb.name
            assert list(ta.records) == list(tb.records)

    def test_tenant_zero_is_pristine(self):
        base = _base_trace()
        fam = clone_tenants(base, 2, divergence=0.5, seed=1)
        assert list(fam[0].records) == list(base.records)
        assert fam[0].name == f"{base.name}/t0"

    def test_single_copy_returns_base_unchanged(self):
        base = _base_trace()
        assert clone_tenants(base, 1) == [base]

    def test_divergence_controls_sharing(self):
        base = _base_trace()
        fam = clone_tenants(base, 2, divergence=0.2, seed=77)
        fps0, fps1 = _fps(fam[0]), _fps(fam[1])
        shared = len(fps0 & fps1)
        diverged = sum(1 for fp in fps1 if fp >= FP_TENANT_STRIDE)
        # roughly 80% of distinct content stays shared with the image
        assert 0.6 * len(fps0) <= shared <= 0.95 * len(fps0)
        assert diverged == len(fps1) - shared
        # full divergence shares nothing, zero divergence everything
        all_private = clone_tenants(base, 2, divergence=1.0, seed=77)
        assert not (_fps(all_private[0]) & _fps(all_private[1]))
        all_shared = clone_tenants(base, 2, divergence=0.0, seed=77)
        assert _fps(all_shared[0]) == _fps(all_shared[1])

    def test_divergence_remap_is_consistent(self):
        """A diverged fingerprint is remapped the same way at every
        occurrence, so intra-tenant redundancy survives cloning."""
        base = _base_trace()
        fam = clone_tenants(base, 2, divergence=0.5, seed=9)
        remap = {}
        for rec, brec in zip(fam[1].records, base.records):
            if rec.fingerprints is None:
                continue
            for fp, bfp in zip(rec.fingerprints, brec.fingerprints):
                assert remap.setdefault(bfp, fp) == fp

    def test_arrival_skew_stretches_later_tenants(self):
        base = _base_trace()
        fam = clone_tenants(base, 3, arrival_skew=0.5, seed=77)
        ends = [t.records[-1].time for t in fam]
        assert ends[0] < ends[1] < ends[2]
        # tenant k's timeline is the base timeline divided by (k+1)^-skew
        assert ends[1] == pytest.approx(ends[0] * 2 ** 0.5)

    def test_no_skew_keeps_timestamps(self):
        base = _base_trace()
        fam = clone_tenants(base, 2, arrival_skew=0.0, seed=77)
        assert [r.time for r in fam[1].records] == [r.time for r in base.records]

    def test_validation(self):
        base = _base_trace()
        with pytest.raises(TraceError):
            clone_tenants(base, 0)
        with pytest.raises(TraceError):
            clone_tenants(base, 2, divergence=1.5)
        with pytest.raises(TraceError):
            clone_tenants(base, 2, divergence=-0.1)
        with pytest.raises(TraceError):
            clone_tenants(base, 2, arrival_skew=-1.0)
