"""Unit tests for the trace-analysis functions on hand-built traces."""

import pytest

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord
from repro.traces.stats import (
    burstiness_profile,
    io_vs_capacity_redundancy,
    redundancy_by_size,
    trace_characteristics,
)


def make_trace(records, warmup=0, blocks=1024):
    return Trace(name="t", records=records, logical_blocks=blocks, warmup_count=warmup)


def w(t, lba, fps):
    return TraceRecord(t, OpType.WRITE, lba, len(fps), tuple(fps))


def r(t, lba, n):
    return TraceRecord(t, OpType.READ, lba, n)


class TestCharacteristics:
    def test_basic(self):
        t = make_trace([w(0, 0, [1]), w(1, 4, [2, 3]), r(2, 0, 1)])
        ch = trace_characteristics(t)
        assert ch.write_ratio == pytest.approx(2 / 3)
        assert ch.io_count == 3
        assert ch.mean_request_kb == pytest.approx(4 * 4 / 3)

    def test_warmup_excluded(self):
        t = make_trace([w(0, 0, [1]), r(1, 0, 1)], warmup=1)
        ch = trace_characteristics(t)
        assert ch.io_count == 1 and ch.write_ratio == 0.0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            trace_characteristics(make_trace([]))


class TestRedundancyBySize:
    def test_buckets(self):
        t = make_trace(
            [
                w(0, 0, [1]),           # 4 KB, unique
                w(1, 10, [1]),          # 4 KB, fully redundant
                w(2, 20, [1, 9]),       # 8 KB, partially redundant
                w(3, 30, [8, 7, 6, 5]), # 16 KB, unique
            ]
        )
        rows = {row.bucket_kb: row for row in redundancy_by_size(t)}
        assert rows[4].total == 2 and rows[4].fully_redundant == 1
        assert rows[8].partially_redundant == 1
        assert rows[16].total == 1 and rows[16].redundant == 0

    def test_warmup_fingerprints_seed_history(self):
        t = make_trace([w(0, 0, [1]), w(1, 10, [1])], warmup=1)
        rows = {row.bucket_kb: row for row in redundancy_by_size(t)}
        # the measured write duplicates warm-up content
        assert rows[4].total == 1 and rows[4].fully_redundant == 1

    def test_reads_ignored(self):
        t = make_trace([w(0, 0, [1]), r(1, 0, 1)])
        assert sum(row.total for row in redundancy_by_size(t)) == 1


class TestIoVsCapacity:
    def test_same_location_rewrite(self):
        t = make_trace([w(0, 0, [1]), w(1, 0, [1])])
        b = io_vs_capacity_redundancy(t)
        assert b.same_location_pct == pytest.approx(50.0)
        assert b.different_location_pct == 0.0

    def test_different_location_duplicate(self):
        t = make_trace([w(0, 0, [1]), w(1, 10, [1])])
        b = io_vs_capacity_redundancy(t)
        assert b.different_location_pct == pytest.approx(50.0)
        assert b.io_redundancy_pct == pytest.approx(50.0)

    def test_overwritten_content_no_longer_capacity_redundant(self):
        t = make_trace(
            [
                w(0, 0, [1]),
                w(1, 0, [2]),   # LBA 0 now holds 2; content 1 gone
                w(2, 10, [1]),  # not redundant anymore
            ]
        )
        b = io_vs_capacity_redundancy(t)
        assert b.different_location_pct == 0.0
        assert b.same_location_pct == 0.0

    def test_no_writes_rejected(self):
        with pytest.raises(TraceError):
            io_vs_capacity_redundancy(make_trace([r(0, 0, 1)]))

    def test_warmup_populates_state_not_counts(self):
        t = make_trace([w(0, 0, [1]), w(1, 10, [1])], warmup=1)
        b = io_vs_capacity_redundancy(t)
        # only the measured write counts, and it is redundant
        assert b.io_redundancy_pct == pytest.approx(100.0)


class TestBurstiness:
    def test_windows(self):
        t = make_trace([w(0.1, 0, [1]), r(0.2, 0, 1), w(1.5, 4, [2])])
        rows = burstiness_profile(t, window=1.0)
        assert rows[0] == (0.0, 1, 1)
        assert rows[1] == (1.0, 0, 1)

    def test_invalid_window(self):
        with pytest.raises(TraceError):
            burstiness_profile(make_trace([]), window=0)
