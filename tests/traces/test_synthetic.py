"""Tests for the synthetic trace generators: determinism and
calibration against the paper's published statistics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.stats import (
    io_vs_capacity_redundancy,
    redundancy_by_size,
    trace_characteristics,
)
from repro.traces.synthetic import (
    CLASSES,
    HOMES,
    MAIL,
    TraceSpec,
    WEB_VM,
    generate_trace,
    paper_traces,
)

#: (spec, paper write ratio, paper mean request KB)
PAPER = [(WEB_VM, 0.698, 14.8), (HOMES, 0.805, 13.1), (MAIL, 0.785, 40.8)]

GEN_SCALE = 0.15


@pytest.fixture(scope="module")
def traces():
    return {spec.name: generate_trace(spec, scale=GEN_SCALE) for spec, _, _ in PAPER}


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(WEB_VM, scale=0.02)
        b = generate_trace(WEB_VM, scale=0.02)
        assert a.records == b.records

    def test_different_seed_different_trace(self):
        a = generate_trace(WEB_VM, seed=1, scale=0.02)
        b = generate_trace(WEB_VM, seed=2, scale=0.02)
        assert a.records != b.records


class TestStructure:
    def test_counts_and_warmup(self, traces):
        t = traces["web-vm"]
        spec = WEB_VM.scaled(GEN_SCALE)
        assert len(t) == spec.n_requests + spec.warmup_requests
        assert t.warmup_count == spec.warmup_requests

    def test_records_within_logical_space(self, traces):
        for t in traces.values():
            for rec in t.records:
                assert rec.lba + rec.nblocks <= t.logical_blocks

    def test_writes_carry_fingerprints(self, traces):
        for t in traces.values():
            for rec in t.records[:500]:
                if rec.is_write:
                    assert rec.fingerprints is not None
                    assert len(rec.fingerprints) == rec.nblocks

    def test_timestamps_monotone(self, traces):
        times = [r.time for r in traces["mail"].records]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestTableII:
    def test_write_ratio_matches_paper(self, traces):
        for spec, ratio, _size in PAPER:
            ch = trace_characteristics(traces[spec.name])
            assert ch.write_ratio == pytest.approx(ratio, abs=0.05)

    def test_mean_request_size_matches_paper(self, traces):
        for spec, _ratio, size_kb in PAPER:
            ch = trace_characteristics(traces[spec.name])
            assert ch.mean_request_kb == pytest.approx(size_kb, rel=0.20)

    def test_relative_trace_sizes(self):
        """mail > web-vm > homes in request count, like Table II."""
        assert MAIL.n_requests > WEB_VM.n_requests > HOMES.n_requests


class TestFig1Shapes:
    def test_small_writes_dominate_and_carry_redundancy(self, traces):
        for name, t in traces.items():
            rows = redundancy_by_size(t)
            totals = [r.total for r in rows]
            redundant = [r.redundant for r in rows]
            # the 4 KB bucket has the most requests and (essentially)
            # the most redundant requests (Fig. 1's headline
            # observation); on mail, redundant at every size, the
            # biggest bucket can tie it within a few percent
            assert totals[0] == max(totals), name
            assert redundant[0] >= 0.85 * max(redundant), name

    def test_large_requests_mostly_partially_redundant(self, traces):
        """Section II-A: 'large I/O requests are mostly partially
        redundant' -- holds for the two mixed-redundancy traces."""
        for name in ("web-vm", "homes"):
            rows = redundancy_by_size(traces[name])
            big = rows[-1]
            assert big.partially_redundant > big.fully_redundant, name


class TestFig2Shapes:
    def test_io_redundancy_exceeds_capacity_redundancy(self, traces):
        for name, t in traces.items():
            b = io_vs_capacity_redundancy(t)
            assert b.io_redundancy_pct > b.capacity_redundancy_pct, name
            assert b.same_location_pct > 3.0, name

    def test_mail_most_redundant(self, traces):
        reds = {
            name: io_vs_capacity_redundancy(t).io_redundancy_pct
            for name, t in traces.items()
        }
        assert reds["mail"] == max(reds.values())


class TestScaled:
    def test_scaling_shrinks_proportionally(self):
        s = WEB_VM.scaled(0.1)
        assert s.n_requests == WEB_VM.n_requests // 10
        assert s.logical_blocks == pytest.approx(WEB_VM.logical_blocks * 0.1, rel=0.01)

    def test_invalid_scale(self):
        with pytest.raises(TraceError):
            WEB_VM.scaled(0)

    def test_paper_traces_registry(self):
        specs = paper_traces()
        assert set(specs) == {"web-vm", "homes", "mail"}

    def test_class_probs_validated(self):
        with pytest.raises(TraceError):
            TraceSpec(
                name="bad",
                n_requests=10,
                warmup_requests=0,
                logical_blocks=4096,
                write_ratio=0.5,
                write_sizes={1: 1.0},
                read_sizes={1: 1.0},
                class_probs={"unique": 1.0},  # missing keys
                p_same_lba=0.5,
            )

    def test_class_names_fixed(self):
        assert CLASSES == ("unique", "full", "partial_seq", "partial_scat")
