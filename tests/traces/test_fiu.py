"""Tests for FIU-style per-block records and request reconstruction."""

import pytest

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.fiu import (
    FiuRecord,
    explode_trace,
    load_fiu_trace,
    read_fiu,
    reconstruct_requests,
    write_fiu,
)
from repro.traces.format import Trace, TraceRecord
from repro.traces.synthetic import WEB_VM, generate_trace


def sample_trace():
    return Trace(
        name="s",
        records=[
            TraceRecord(0.0, OpType.WRITE, 0, 3, (10, 11, 12)),
            TraceRecord(0.5, OpType.READ, 0, 2),
            TraceRecord(1.0, OpType.WRITE, 100, 1, (55,)),
        ],
        logical_blocks=256,
    )


class TestExplode:
    def test_one_record_per_block(self):
        records = list(explode_trace(sample_trace()))
        assert len(records) == 3 + 2 + 1

    def test_write_records_carry_hashes(self):
        records = list(explode_trace(sample_trace()))
        assert [r.fingerprint for r in records[:3]] == [10, 11, 12]
        assert records[3].fingerprint is None  # read


class TestReconstruct:
    def test_roundtrip(self):
        trace = sample_trace()
        rebuilt = reconstruct_requests(explode_trace(trace))
        assert rebuilt == trace.records

    def test_roundtrip_through_file(self, tmp_path):
        trace = generate_trace(WEB_VM, scale=0.005)
        path = tmp_path / "t.fiu"
        lines = write_fiu(trace, path)
        assert lines == sum(r.nblocks for r in trace.records)
        loaded = load_fiu_trace(path, logical_blocks=trace.logical_blocks)
        assert loaded.records == trace.records

    def test_non_consecutive_blocks_split(self):
        records = [
            FiuRecord(0.0, 1, "p", 0, OpType.WRITE, 1),
            FiuRecord(0.0, 1, "p", 5, OpType.WRITE, 2),  # gap
        ]
        rebuilt = reconstruct_requests(records)
        assert len(rebuilt) == 2

    def test_different_ops_split(self):
        records = [
            FiuRecord(0.0, 1, "p", 0, OpType.WRITE, 1),
            FiuRecord(0.0, 1, "p", 1, OpType.READ, None),
        ]
        assert len(reconstruct_requests(records)) == 2

    def test_time_epsilon_groups_near_records(self):
        records = [
            FiuRecord(0.000, 1, "p", 0, OpType.READ, None),
            FiuRecord(0.001, 1, "p", 1, OpType.READ, None),
        ]
        assert len(reconstruct_requests(records, time_epsilon=0.0)) == 2
        assert len(reconstruct_requests(records, time_epsilon=0.01)) == 1


class TestParsing:
    def test_read_rejects_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.fiu"
        path.write_text("0.0 1 p 0 1 W\n")
        with pytest.raises(TraceError):
            read_fiu(path)

    def test_read_rejects_write_without_hash(self, tmp_path):
        path = tmp_path / "bad.fiu"
        path.write_text("0.0 1 p 0 1 W 8 0 -\n")
        with pytest.raises(TraceError):
            read_fiu(path)

    def test_sector_addressing_converted(self, tmp_path):
        path = tmp_path / "s.fiu"
        path.write_text("0.0 1 p 16 1 W 8 0 ff\n")  # sector 16 = block 2
        records = read_fiu(path, sector_addressing=True)
        assert records[0].lba == 2

    def test_sector_addressing_misaligned_rejected(self, tmp_path):
        path = tmp_path / "s.fiu"
        path.write_text("0.0 1 p 3 1 W 8 0 ff\n")
        with pytest.raises(TraceError):
            read_fiu(path, sector_addressing=True)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.fiu"
        path.write_text("# header\n0.0 1 p 0 1 R 8 0 -\n")
        assert len(read_fiu(path)) == 1

    def test_loaded_trace_is_replayable(self, tmp_path):
        from repro.baselines.base import SchemeConfig
        from repro.core.pod import POD
        from repro.sim.replay import replay_trace

        trace = generate_trace(WEB_VM, scale=0.005)
        path = tmp_path / "t.fiu"
        write_fiu(trace, path)
        loaded = load_fiu_trace(path, logical_blocks=trace.logical_blocks)
        scheme = POD(SchemeConfig(logical_blocks=loaded.logical_blocks, memory_bytes=64 * 1024))
        result = replay_trace(loaded, scheme)
        assert result.metrics.requests == len(loaded)
