"""Statistical validation of the synthetic generators.

Beyond the Table-II-level checks, these tests verify that the
generator's *internal* distributions actually follow the spec: size
mixes, redundancy-class composition, same-location share, and the
temporal-locality skew that the cache results depend on.
"""

import numpy as np
import pytest

from repro.traces.format import Trace
from repro.traces.stats import io_vs_capacity_redundancy
from repro.traces.synthetic import HOMES, MAIL, WEB_VM, generate_trace

SCALE = 0.2


@pytest.fixture(scope="module")
def webvm() -> Trace:
    return generate_trace(WEB_VM, scale=SCALE)


@pytest.fixture(scope="module")
def mail() -> Trace:
    return generate_trace(MAIL, scale=SCALE)


class TestSizeDistributions:
    def test_write_size_mix_tracks_spec(self, webvm):
        spec = WEB_VM.scaled(SCALE)
        writes = [r for r in webvm.records if r.is_write]
        sizes, counts = np.unique([r.nblocks for r in writes], return_counts=True)
        observed = dict(zip(sizes.tolist(), (counts / counts.sum()).tolist()))
        for size, prob in spec.write_sizes.items():
            # partial-class redraws and donor truncation perturb the
            # raw mix; sizes of 1-2 blocks must still match closely
            if size <= 2:
                assert observed.get(size, 0.0) == pytest.approx(prob, abs=0.08), size

    def test_small_requests_dominate(self, webvm, mail):
        for trace in (webvm, mail):
            writes = [r.nblocks for r in trace.records if r.is_write]
            assert np.mean(np.asarray(writes) <= 2) > 0.40


class TestRedundancyComposition:
    def test_mail_mostly_fully_redundant(self, mail):
        """The class mix shows through: most of mail's redundant
        writes duplicate whole earlier requests."""
        seen = set()
        full = partial = 0
        for r in mail.records:
            if not r.is_write:
                continue
            dup = sum(1 for fp in r.fingerprints if fp in seen)
            seen.update(r.fingerprints)
            if dup == r.nblocks:
                full += 1
            elif dup:
                partial += 1
        assert full > 4 * partial

    def test_same_location_share_tracks_p_same_lba(self):
        """Raising p_same_lba must raise the same-location share."""
        from dataclasses import replace

        lo = generate_trace(replace(WEB_VM, p_same_lba=0.1), scale=0.1)
        hi = generate_trace(replace(WEB_VM, p_same_lba=0.8), scale=0.1)
        assert (
            io_vs_capacity_redundancy(hi).same_location_pct
            > io_vs_capacity_redundancy(lo).same_location_pct + 5.0
        )


class TestTemporalLocality:
    def test_reads_prefer_recent_writes(self, webvm):
        """Read targets are recency-skewed: the median age (in
        requests) of the last write covering a read target is small
        relative to the trace length."""
        last_writer = {}
        ages = []
        for i, rec in enumerate(webvm.records):
            if rec.is_write:
                for lba in range(rec.lba, rec.lba + rec.nblocks):
                    last_writer[lba] = i
            elif rec.lba in last_writer:
                ages.append(i - last_writer[rec.lba])
        assert ages, "no reads hit written data at all"
        assert np.median(ages) < len(webvm) * 0.05

    def test_duplicates_prefer_recent_content(self, webvm):
        """Donor choice is recency-skewed too (what makes a hot LRU
        index effective)."""
        first_seen = {}
        gaps = []
        for i, rec in enumerate(webvm.records):
            if not rec.is_write:
                continue
            for fp in rec.fingerprints:
                if fp in first_seen:
                    gaps.append(i - first_seen[fp])
                else:
                    first_seen[fp] = i
        assert gaps
        assert np.median(gaps) < len(webvm) * 0.10


class TestBurstStructure:
    def test_interarrival_bimodality(self, mail):
        times = np.array([r.time for r in mail.records])
        gaps = np.diff(times)
        assert np.median(gaps) < 2e-3  # intra-burst
        assert np.percentile(gaps, 99) > 0.05  # inter-burst pauses

    def test_homes_lighter_than_mail(self):
        """The per-trace burst models differ deliberately: homes runs
        at a lighter sustained load than mail."""
        homes = generate_trace(HOMES, scale=0.1)
        mail = generate_trace(MAIL, scale=0.1)
        rate_h = len(homes) / homes.records[-1].time
        rate_m = len(mail) / mail.records[-1].time
        assert rate_m > 1.5 * rate_h
