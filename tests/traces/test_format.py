"""Unit tests for trace records and serialisation."""

import pytest

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord, load_trace, save_trace


def sample_trace():
    return Trace(
        name="sample",
        records=[
            TraceRecord(0.0, OpType.WRITE, 0, 2, (11, 22)),
            TraceRecord(0.5, OpType.READ, 0, 2),
            TraceRecord(1.0, OpType.WRITE, 10, 1, (33,)),
        ],
        logical_blocks=64,
        warmup_count=1,
    )


class TestTraceRecord:
    def test_to_request(self):
        rec = TraceRecord(1.0, OpType.WRITE, 5, 2, (1, 2))
        req = rec.to_request(req_id=7)
        assert req.req_id == 7 and req.lba == 5 and req.fingerprints == (1, 2)

    def test_is_write(self):
        assert TraceRecord(0.0, OpType.WRITE, 0, 1, (1,)).is_write
        assert not TraceRecord(0.0, OpType.READ, 0, 1).is_write


class TestTraceValidation:
    def test_time_must_be_monotone(self):
        with pytest.raises(TraceError):
            Trace(
                name="bad",
                records=[
                    TraceRecord(1.0, OpType.READ, 0, 1),
                    TraceRecord(0.5, OpType.READ, 0, 1),
                ],
                logical_blocks=64,
            )

    def test_records_must_fit_logical_space(self):
        with pytest.raises(TraceError):
            Trace(
                name="bad",
                records=[TraceRecord(0.0, OpType.READ, 63, 2)],
                logical_blocks=64,
            )

    def test_warmup_count_bounded(self):
        with pytest.raises(TraceError):
            Trace(name="bad", records=[], logical_blocks=64, warmup_count=1)

    def test_measured_records(self):
        t = sample_trace()
        assert len(t.measured_records) == 2
        m = t.measured_only()
        assert m.warmup_count == 0 and len(m) == 2

    def test_requests_have_stable_ids(self):
        reqs = list(sample_trace().requests())
        assert [r.req_id for r in reqs] == [0, 1, 2]


class TestRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "sample.trace"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded.name == t.name
        assert loaded.logical_blocks == t.logical_blocks
        assert loaded.warmup_count == t.warmup_count
        assert loaded.records == t.records

    def test_load_infers_logical_space_when_missing(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("0.0 W 5 2 1,2\n")
        t = load_trace(path)
        assert t.logical_blocks == 7

    def test_load_rejects_bad_op(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("0.0 Z 0 1 -\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_load_rejects_bad_field_count(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("0.0 R 0\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("# a comment\n\n0.0 R 0 1 -\n")
        assert len(load_trace(path)) == 1
