"""Unit tests for the workload primitives."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.workload import (
    ArrivalProcess,
    BurstModel,
    PhaseModel,
    PhaseProcess,
    SizeDistribution,
    ZipfChooser,
)


class TestZipfChooser:
    def test_skews_to_low_ranks(self, rng):
        z = ZipfChooser(100, s=1.2)
        draws = z.draw_many(rng, 5000)
        assert np.mean(draws < 10) > np.mean((draws >= 10) & (draws < 20))

    def test_uniform_when_s_zero(self, rng):
        z = ZipfChooser(10, s=0.0)
        draws = z.draw_many(rng, 20000)
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_resize_grows(self, rng):
        z = ZipfChooser(4)
        z.resize(100)
        assert z.n == 100
        assert 0 <= z.draw(rng) < 100

    def test_invalid(self):
        with pytest.raises(TraceError):
            ZipfChooser(0)
        with pytest.raises(TraceError):
            ZipfChooser(4, s=-1)


class TestSizeDistribution:
    def test_mean(self):
        d = SizeDistribution.of({1: 0.5, 4: 0.5})
        assert d.mean_blocks == pytest.approx(2.5)
        assert d.mean_kb == pytest.approx(10.0)

    def test_draws_only_listed_sizes(self, rng):
        d = SizeDistribution.of({2: 0.3, 8: 0.7})
        draws = {d.draw(rng) for _ in range(200)}
        assert draws <= {2, 8}

    def test_probs_must_sum_to_one(self):
        with pytest.raises(TraceError):
            SizeDistribution.of({1: 0.4, 2: 0.4})

    def test_sizes_positive(self):
        with pytest.raises(TraceError):
            SizeDistribution.of({0: 1.0})


class TestArrivalProcess:
    def test_times_are_increasing(self, rng):
        ap = ArrivalProcess(BurstModel(), rng)
        times = [ap.next_time() for _ in range(500)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_burstiness_visible(self, rng):
        """Intra-burst gaps must be much smaller than inter-burst
        gaps: the gap distribution should be strongly bimodal."""
        ap = ArrivalProcess(BurstModel(mean_burst_size=10, intra_gap=1e-4, inter_gap=0.5), rng)
        times = np.array([ap.next_time() for _ in range(2000)])
        gaps = np.diff(times)
        assert np.median(gaps) < 1e-3  # most gaps are intra-burst
        assert gaps.max() > 0.1  # but long pauses exist

    def test_invalid_model(self):
        with pytest.raises(TraceError):
            BurstModel(mean_burst_size=0.5)
        with pytest.raises(TraceError):
            BurstModel(intra_gap=-1)


class TestPhaseProcess:
    def test_long_run_write_ratio(self):
        for wr in (0.6, 0.698, 0.805):
            rng = np.random.default_rng(1)
            pp = PhaseProcess(PhaseModel(write_ratio=wr, mean_phase_len=100), rng)
            xs = [pp.next_is_write() for _ in range(20000)]
            assert np.mean(xs) == pytest.approx(wr, abs=0.03)

    def test_phases_alternate(self, rng):
        pp = PhaseProcess(PhaseModel(write_ratio=0.7, mean_phase_len=50), rng)
        kinds = []
        last = None
        for _ in range(2000):
            pp.next_is_write()
            if pp.in_write_phase != last:
                kinds.append(pp.in_write_phase)
                last = pp.in_write_phase
        # strict alternation: no two consecutive phases the same type
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        assert pp.phases_seen > 5

    def test_write_phase_is_write_heavy(self, rng):
        pp = PhaseProcess(PhaseModel(write_ratio=0.7, mean_phase_len=200), rng)
        by_phase = {True: [], False: []}
        for _ in range(5000):
            w = pp.next_is_write()
            by_phase[pp.in_write_phase].append(w)
        assert np.mean(by_phase[True]) > 0.85
        assert np.mean(by_phase[False]) < 0.3

    def test_invalid_model(self):
        with pytest.raises(TraceError):
            PhaseModel(write_ratio=1.5)
        with pytest.raises(TraceError):
            PhaseModel(write_ratio=0.5, mean_phase_len=0)
        with pytest.raises(TraceError):
            PhaseModel(write_ratio=0.5, write_phase_bias=0.2)
