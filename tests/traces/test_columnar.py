"""Columnar trace representation: lossless round-trips, payload
shipping, vectorized fingerprint classification, and the native
columnar loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.columnar import (
    ColumnarTrace,
    classify_chunks,
    first_occurrence_mask,
    load_trace_columnar,
    merge_columnar,
)
from repro.traces.format import Trace, TraceRecord, load_trace, save_trace
from repro.traces.synthetic import WEB_VM, generate_trace

LOGICAL = 128

# Fingerprint values deliberately include > 2**63 (FIU MD5s are
# 128-bit): the interned pool must stay exact, not silently truncate
# to an int64 column.
fingerprints = st.integers(min_value=0, max_value=1 << 130)


@st.composite
def small_traces(draw) -> Trace:
    n = draw(st.integers(min_value=0, max_value=25))
    deltas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    records = []
    t = 0.0
    for delta in deltas:
        t += delta
        nblocks = draw(st.integers(min_value=1, max_value=8))
        lba = draw(st.integers(min_value=0, max_value=LOGICAL - nblocks))
        is_write = draw(st.booleans())
        fps = (
            tuple(
                draw(fingerprints) for _ in range(nblocks)
            )
            if is_write
            else None
        )
        records.append(
            TraceRecord(
                time=t,
                op=OpType.WRITE if is_write else OpType.READ,
                lba=lba,
                nblocks=nblocks,
                fingerprints=fps,
            )
        )
    warmup = draw(st.integers(min_value=0, max_value=n))
    return Trace(
        name="prop", records=records, logical_blocks=LOGICAL, warmup_count=warmup
    )


class TestRoundTrip:
    @given(trace=small_traces())
    @settings(max_examples=150, deadline=None)
    def test_from_trace_to_trace_is_lossless(self, trace):
        back = ColumnarTrace.from_trace(trace).to_trace()
        assert back.name == trace.name
        assert back.logical_blocks == trace.logical_blocks
        assert back.warmup_count == trace.warmup_count
        assert back.records == trace.records

    @given(trace=small_traces())
    @settings(max_examples=75, deadline=None)
    def test_payload_round_trip(self, trace):
        ct = ColumnarTrace.from_trace(trace)
        rebuilt = ColumnarTrace.from_payload(ct.payload())
        assert rebuilt.to_trace().records == trace.records
        assert rebuilt.pool == ct.pool
        for col in ("times", "ops", "lbas", "nblocks", "fp_offsets", "fp_ids"):
            np.testing.assert_array_equal(
                getattr(rebuilt, col), getattr(ct, col)
            )

    def test_paper_trace_round_trips(self):
        trace = generate_trace(WEB_VM, scale=0.01)
        ct = ColumnarTrace.from_trace(trace)
        assert len(ct) == len(trace.records)
        assert ct.to_trace().records == trace.records

    def test_pool_preserves_wide_fingerprints(self):
        fp = (1 << 127) + 12345
        trace = Trace(
            name="wide",
            records=[
                TraceRecord(0.0, OpType.WRITE, 0, 1, (fp,)),
            ],
            logical_blocks=4,
        )
        ct = ColumnarTrace.from_trace(trace)
        assert ct.pool == [fp]
        assert ct.to_trace().records[0].fingerprints == (fp,)


class TestValidation:
    def _columns(self, **over):
        cols = dict(
            name="v",
            logical_blocks=8,
            warmup_count=0,
            times=np.asarray([0.0, 1.0]),
            ops=np.asarray([1, 0], dtype=np.uint8),
            lbas=np.asarray([0, 2], dtype=np.int64),
            nblocks=np.asarray([2, 1], dtype=np.int64),
            fp_offsets=np.asarray([0, 2, 2], dtype=np.int64),
            fp_ids=np.asarray([0, 1], dtype=np.int64),
            pool=[11, 22],
        )
        cols.update(over)
        return cols

    def test_valid_columns_pass(self):
        ColumnarTrace(**self._columns())

    @pytest.mark.parametrize(
        "over",
        [
            {"times": np.asarray([1.0, 0.5])},
            {"times": np.asarray([-1.0, 0.5])},
            {"lbas": np.asarray([0, 8], dtype=np.int64)},
            {"lbas": np.asarray([-1, 2], dtype=np.int64)},
            {"nblocks": np.asarray([0, 1], dtype=np.int64)},
            {"fp_offsets": np.asarray([0, 1, 1], dtype=np.int64)},
            {"fp_ids": np.asarray([0, 5], dtype=np.int64)},
            {"warmup_count": 7},
            {"logical_blocks": 0},
        ],
    )
    def test_bad_columns_rejected(self, over):
        with pytest.raises(TraceError):
            ColumnarTrace(**self._columns(**over))


class TestClassification:
    @given(
        ids=st.lists(st.integers(min_value=0, max_value=12), max_size=60)
    )
    @settings(max_examples=150, deadline=None)
    def test_first_occurrence_mask_matches_scan(self, ids):
        fp_ids = np.asarray(ids, dtype=np.int64)
        mask = first_occurrence_mask(fp_ids)
        seen = set()
        for k, fid in enumerate(ids):
            assert mask[k] == (fid not in seen)
            seen.add(fid)

    @given(
        ids=st.lists(st.integers(min_value=0, max_value=12), max_size=60),
        threshold=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_classify_chunks_partitions(self, ids, threshold):
        fp_ids = np.asarray(ids, dtype=np.int64)
        out = classify_chunks(fp_ids, hot_threshold=threshold)
        assert out["chunks"] == len(ids)
        assert out["unique"] + out["cold"] + out["hot"] == out["chunks"]
        assert out["distinct"] == len(set(ids))
        assert out["unique"] == sum(1 for f in ids if ids.count(f) == 1)

    def test_hot_threshold_validated(self):
        with pytest.raises(TraceError):
            classify_chunks(np.asarray([0], dtype=np.int64), hot_threshold=1)


class TestMerge:
    @given(ts=st.lists(small_traces(), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_object_merge(self, ts):
        """The stable column merge reproduces heapq.merge order: sort
        by time, ties broken by volume order then within-volume
        order."""
        bases = []
        base = 0
        for t in ts:
            bases.append(base)
            base += t.logical_blocks
        merged = merge_columnar(
            [ColumnarTrace.from_trace(t) for t in ts], bases
        )
        expect = sorted(
            (
                (rec.time, vid, i, rec, bases[vid])
                for vid, t in enumerate(ts)
                for i, rec in enumerate(t.records)
            ),
            key=lambda item: (item[0], item[1], item[2]),
        )
        assert len(merged) == len(expect)
        for k, (time, vid, i, rec, b) in enumerate(expect):
            assert merged.times[k] == time
            assert merged.volume_ids[k] == vid
            assert merged.lbas[k] == b + rec.lba
            assert merged.nblocks[k] == rec.nblocks
            assert bool(merged.measured[k]) == (i >= ts[vid].warmup_count)
            lo, hi = merged.fp_offsets[k], merged.fp_offsets[k + 1]
            fps = tuple(merged.pool[j] for j in merged.fp_ids[lo:hi])
            assert fps == (rec.fingerprints or ())

    def test_requires_matching_bases(self):
        ct = ColumnarTrace.from_trace(generate_trace(WEB_VM, scale=0.005))
        with pytest.raises(TraceError):
            merge_columnar([ct], [0, 1])
        with pytest.raises(TraceError):
            merge_columnar([], [])


class TestLoader:
    @given(trace=small_traces())
    @settings(max_examples=40, deadline=None)
    def test_loader_matches_object_loader(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("col") / "t.trace"
        save_trace(trace, path)
        ct = load_trace_columnar(path)
        assert ct.to_trace().records == load_trace(path).records
        assert ct.warmup_count == trace.warmup_count
        assert ct.logical_blocks == trace.logical_blocks

    def test_fiu_columnar_loader(self, tmp_path):
        from repro.traces.fiu import (
            load_fiu_trace,
            load_fiu_trace_columnar,
            write_fiu,
        )

        trace = generate_trace(WEB_VM, scale=0.005)
        path = tmp_path / "t.fiu"
        write_fiu(trace, path)
        ct = load_fiu_trace_columnar(path)
        assert ct.to_trace().records == load_fiu_trace(path).records
