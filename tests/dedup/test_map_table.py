"""Unit tests for the Map table (LBA -> PBA with refcounts)."""

import pytest

from repro.dedup.map_table import MapTable
from repro.errors import DedupError
from repro.storage.allocator import RegionMap
from repro.storage.nvram import NvramMeter


@pytest.fixture
def regions():
    return RegionMap(logical_blocks=100, log_blocks=50, index_blocks=10, swap_blocks=10)


@pytest.fixture
def table(regions):
    return MapTable(regions)


class TestTranslate:
    def test_identity_by_default(self, table):
        assert table.translate(7) == 7

    def test_explicit_mapping(self, table):
        table.set_mapping(5, 40)
        assert table.translate(5) == 40
        assert table.is_redirected(5)

    def test_translate_many(self, table):
        table.set_mapping(1, 90)
        assert table.translate_many([0, 1, 2]) == [0, 90, 2]

    def test_identity_mapping_stored_as_no_entry(self, table):
        table.set_mapping(5, 5)
        assert len(table) == 0
        assert not table.is_redirected(5)


class TestRefcounts:
    def test_refs_counted(self, table):
        table.set_mapping(1, 40)
        table.set_mapping(2, 40)
        assert table.refs(40) == 2
        assert table.is_referenced(40)

    def test_clear_decrements(self, table):
        table.set_mapping(1, 40)
        table.set_mapping(2, 40)
        assert table.clear_mapping(1) is None  # still referenced by 2
        assert table.clear_mapping(2) == 40  # last reference gone
        assert not table.is_referenced(40)

    def test_remap_releases_old_target(self, table):
        table.set_mapping(1, 40)
        freed = table.set_mapping(1, 41)
        assert freed == 40
        assert table.refs(41) == 1

    def test_clear_unmapped_is_noop(self, table):
        assert table.clear_mapping(3) is None

    def test_referencing_lbas(self, table):
        table.set_mapping(1, 40)
        table.set_mapping(2, 40)
        assert table.referencing_lbas(40) == {1, 2}

    def test_nvram_tracks_entries(self, regions):
        nvram = NvramMeter()
        t = MapTable(regions, nvram)
        t.set_mapping(1, 40)
        t.set_mapping(2, 41)
        assert nvram.entries == 2
        t.clear_mapping(1)
        assert nvram.entries == 1
        assert nvram.peak_entries == 2

    def test_out_of_range_rejected(self, table, regions):
        with pytest.raises(Exception):
            table.set_mapping(1000, 0)
        with pytest.raises(DedupError):
            table.set_mapping(1, regions.total_blocks)


class TestWriteTargetPolicy:
    def test_unreferenced_home_is_in_place(self, table):
        assert table.choose_write_target(5) == 5

    def test_referenced_home_forces_redirect(self, table):
        table.set_mapping(1, 5)  # LBA 1 references LBA 5's home block
        assert table.choose_write_target(5) is None

    def test_private_log_block_updated_in_place(self, table, regions):
        log_block = regions.log_base + 3
        # Home 5 is shared with LBA 1, so LBA 5 was redirected.
        table.set_mapping(1, 5)
        table.set_mapping(5, log_block)
        assert table.choose_write_target(5) == log_block

    def test_shared_log_block_forces_redirect(self, table, regions):
        log_block = regions.log_base + 3
        table.set_mapping(1, 5)  # home of 5 is referenced
        table.set_mapping(5, log_block)
        table.set_mapping(6, log_block)  # the log block is now shared
        assert table.choose_write_target(5) is None

    def test_stale_redirection_reclaims_home(self, table, regions):
        """LBA redirected but home free again -> write home."""
        log_block = regions.log_base + 3
        table.set_mapping(5, log_block)
        assert table.choose_write_target(5) == 5


class TestLivePbas:
    def test_counts_shared_once(self, table):
        table.set_mapping(1, 40)
        table.set_mapping(2, 40)
        live = table.live_pbas([1, 2, 3])
        assert live == {40, 3}

    def test_native_identity(self, table):
        assert table.live_pbas(range(5)) == set(range(5))
