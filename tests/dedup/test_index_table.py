"""Unit tests for the Index table (hot fingerprints with Count)."""

import pytest

from repro.cache.lru import LRUCache
from repro.constants import INDEX_ENTRY_SIZE
from repro.dedup.index_table import IndexEntry, IndexTable
from repro.errors import DedupError


def make_table(entries=8):
    lru = LRUCache(entries * INDEX_ENTRY_SIZE, default_entry_size=INDEX_ENTRY_SIZE)
    return IndexTable(lru)


class TestLookupInsert:
    def test_insert_and_lookup(self):
        t = make_table()
        t.insert(101, 7)
        entry = t.lookup(101)
        assert entry is not None and entry.pba == 7

    def test_count_starts_zero_and_increments_on_hits(self):
        t = make_table()
        t.insert(101, 7)
        assert t.peek(101).count == 0
        t.lookup(101)
        t.lookup(101)
        assert t.peek(101).count == 2

    def test_peek_does_not_count(self):
        t = make_table()
        t.insert(101, 7)
        t.peek(101)
        assert t.peek(101).count == 0

    def test_miss_returns_none(self):
        assert make_table().lookup(999) is None

    def test_contains_len(self):
        t = make_table()
        t.insert(1, 1)
        assert 1 in t and len(t) == 1

    def test_requires_index_sized_lru(self):
        with pytest.raises(DedupError):
            IndexTable(LRUCache(100, default_entry_size=1))


class TestInvalidation:
    def test_invalidate_pba_removes_entry(self):
        t = make_table()
        t.insert(101, 7)
        assert t.invalidate_pba(7) is True
        assert t.lookup(101) is None

    def test_invalidate_unknown_pba(self):
        assert make_table().invalidate_pba(99) is False

    def test_insert_displaces_stale_pba_claim(self):
        t = make_table()
        t.insert(101, 7)
        t.insert(202, 7)  # the content at PBA 7 changed
        assert t.lookup(101) is None
        assert t.lookup(202).pba == 7

    def test_reinsert_same_fingerprint_new_pba(self):
        t = make_table()
        t.insert(101, 7)
        t.insert(101, 9)
        assert t.lookup(101).pba == 9
        # the old PBA claim must be gone
        assert t.invalidate_pba(7) is False

    def test_remove(self):
        t = make_table()
        t.insert(101, 7)
        assert t.remove(101) is True
        assert t.invalidate_pba(7) is False
        assert t.remove(101) is False


class TestEvictionFlow:
    def test_lru_eviction_reported_via_drain(self):
        t = make_table(entries=2)
        t.insert(1, 10)
        t.insert(2, 11)
        t.insert(3, 12)
        evicted = t.drain_evicted()
        assert [fp for fp, _ in evicted] == [1]
        assert t.drain_evicted() == []

    def test_evicted_entry_pba_claim_dropped(self):
        t = make_table(entries=2)
        t.insert(1, 10)
        t.insert(2, 11)
        t.insert(3, 12)
        t.drain_evicted()
        assert t.invalidate_pba(10) is False


class TestResizeRestore:
    def test_resize_returns_victims_and_cleans_reverse_map(self):
        t = make_table(entries=4)
        for fp in range(4):
            t.insert(fp, fp + 100)
        victims = t.resize(2 * INDEX_ENTRY_SIZE)
        assert [fp for fp, _ in victims] == [0, 1]
        assert t.invalidate_pba(100) is False
        assert len(t) == 2

    def test_restore_roundtrip(self):
        t = make_table(entries=4)
        for fp in range(4):
            t.insert(fp, fp + 100)
        victims = t.resize(2 * INDEX_ENTRY_SIZE)
        t.resize(4 * INDEX_ENTRY_SIZE)
        fp, entry = victims[0]
        assert t.restore(fp, entry) is True
        assert t.lookup(fp).pba == entry.pba

    def test_restore_refuses_when_full(self):
        t = make_table(entries=1)
        t.insert(1, 10)
        assert t.restore(2, IndexEntry(pba=11)) is False

    def test_restore_refuses_conflicts(self):
        t = make_table(entries=4)
        t.insert(1, 10)
        assert t.restore(1, IndexEntry(pba=99)) is False  # fp present
        assert t.restore(2, IndexEntry(pba=10)) is False  # pba claimed

    def test_stats(self):
        t = make_table()
        t.insert(1, 10)
        t.lookup(1)
        t.lookup(2)
        s = t.stats()
        assert s["entries"] == 1 and s["hits"] == 1 and s["misses"] == 1
