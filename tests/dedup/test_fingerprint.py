"""Unit tests for the hash engine and content fingerprinting."""

import pytest

from repro.constants import BLOCK_SIZE, FINGERPRINT_DELAY
from repro.dedup.fingerprint import (
    HashEngine,
    chunk_bytes,
    fingerprint_bytes,
    fingerprints_of,
)
from repro.errors import DedupError


class TestHashEngine:
    def test_paper_delay_constant(self):
        assert FINGERPRINT_DELAY == pytest.approx(32e-6)

    def test_delay_linear_in_chunks(self):
        e = HashEngine()
        assert e.delay_for(10) == pytest.approx(10 * FINGERPRINT_DELAY)

    def test_counts_chunks(self):
        e = HashEngine()
        e.delay_for(3)
        e.delay_for(4)
        assert e.chunks_hashed == 7

    def test_zero_chunks_free(self):
        assert HashEngine().delay_for(0) == 0.0

    def test_custom_delay(self):
        assert HashEngine(per_chunk_delay=1e-3).delay_for(2) == pytest.approx(2e-3)

    def test_invalid(self):
        with pytest.raises(DedupError):
            HashEngine(per_chunk_delay=-1)
        with pytest.raises(DedupError):
            HashEngine().delay_for(-1)


class TestFingerprintBytes:
    def test_deterministic(self):
        assert fingerprint_bytes(b"hello") == fingerprint_bytes(b"hello")

    def test_different_content_differs(self):
        assert fingerprint_bytes(b"hello") != fingerprint_bytes(b"world")

    def test_64_bit_range(self):
        fp = fingerprint_bytes(b"x" * 1000)
        assert 0 <= fp < 2**64


class TestChunking:
    def test_exact_chunks(self):
        data = b"a" * (2 * BLOCK_SIZE)
        chunks = list(chunk_bytes(data))
        assert len(chunks) == 2
        assert all(len(c) == BLOCK_SIZE for c in chunks)

    def test_tail_zero_padded(self):
        data = b"a" * (BLOCK_SIZE + 10)
        chunks = list(chunk_bytes(data))
        assert len(chunks) == 2
        assert chunks[1][:10] == b"a" * 10
        assert chunks[1][10:] == b"\x00" * (BLOCK_SIZE - 10)

    def test_custom_chunk_size(self):
        assert len(list(chunk_bytes(b"abcdef", chunk_size=2))) == 3

    def test_invalid_chunk_size(self):
        with pytest.raises(DedupError):
            list(chunk_bytes(b"abc", chunk_size=0))

    def test_fingerprints_of_duplicate_chunks_match(self):
        data = b"A" * BLOCK_SIZE + b"B" * BLOCK_SIZE + b"A" * BLOCK_SIZE
        fps = fingerprints_of(data)
        assert fps[0] == fps[2] != fps[1]
