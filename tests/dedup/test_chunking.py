"""Content-defined chunking: config validation, the streaming
fingerprint transform, and the vectorized byte-level Gear."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup.chunking import (
    GEAR_TABLE,
    MAX_CHUNK_BLOCKS,
    OFFSET_BITS,
    RABIN_MULTIPLIER,
    RABIN_TABLE,
    RABIN_WINDOW,
    ChunkingConfig,
    ChunkTransform,
    cut_points,
    gear_hashes,
)
from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


class TestConfig:
    def test_defaults_valid(self):
        cfg = ChunkingConfig()
        assert cfg.min_blocks <= cfg.avg_blocks <= cfg.max_blocks
        assert cfg.mask == cfg.avg_blocks - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_blocks": 0},
            {"avg_blocks": 3},  # not a power of two
            {"min_blocks": 8, "avg_blocks": 4},
            {"avg_blocks": 32, "max_blocks": 16},
            {"max_blocks": MAX_CHUNK_BLOCKS + 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ChunkingConfig(**kwargs)

    def test_gear_table_shape(self):
        assert len(GEAR_TABLE) == 256
        assert all(0 <= g <= _MASK64 for g in GEAR_TABLE)
        # Deterministic: the table is part of the trace-compatibility
        # contract (changing it changes every CDC dedup decision).
        assert GEAR_TABLE[0] == gear_hashes(bytes([0]))[0]

    def test_rabin_table_shape(self):
        assert len(RABIN_TABLE) == 256
        assert all(0 <= g <= _MASK64 for g in RABIN_TABLE)
        # Same splitmix64 stream as the gear table, continued past it:
        # the two tables must never share an entry.
        assert not set(RABIN_TABLE) & set(GEAR_TABLE)
        # The multiplier is odd (invertible mod 2^64), so the rolling
        # hash never collapses.
        assert RABIN_MULTIPLIER % 2 == 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            ChunkingConfig(algorithm="buzhash")


fp_streams = st.lists(
    st.lists(st.integers(min_value=0, max_value=1 << 64), min_size=1, max_size=12),
    max_size=12,
)


class TestTransform:
    @given(stream=fp_streams)
    @settings(max_examples=150, deadline=None)
    def test_shape_preserved_and_deterministic(self, stream):
        a = ChunkTransform(ChunkingConfig())
        b = ChunkTransform(ChunkingConfig())
        for request in stream:
            out_a = a.transform(tuple(request))
            assert len(out_a) == len(request)
            assert out_a == b.transform(tuple(request))
        assert a.stats() == b.stats()
        assert a.blocks_processed == sum(len(r) for r in stream)

    @given(stream=fp_streams)
    @settings(max_examples=150, deadline=None)
    def test_encoding_decomposes(self, stream):
        """Every effective fingerprint is (anchor << OFFSET_BITS) |
        offset with the anchor being a real input fingerprint, offsets
        consecutive from zero within a chunk, and chunk lengths bounded
        by max_blocks.  Injectivity follows: (anchor, offset) pairs
        decode uniquely because offset < 2**OFFSET_BITS."""
        cfg = ChunkingConfig()
        t = ChunkTransform(cfg)
        flat = [fp for request in stream for fp in request]
        out = [
            eff for request in stream for eff in t.transform(tuple(request))
        ]
        prev_offset = None
        for k, eff in enumerate(out):
            anchor, offset = eff >> OFFSET_BITS, eff & (MAX_CHUNK_BLOCKS - 1)
            assert offset < cfg.max_blocks
            if offset == 0:
                assert anchor == flat[k]  # chunk opens at its own block
            else:
                assert prev_offset is not None and offset == prev_offset + 1
            prev_offset = offset

    def test_request_framing_does_not_move_cuts(self):
        """CDC boundaries depend on the written stream, not on how it
        is split into requests."""
        fps = tuple(range(100, 140))
        whole = ChunkTransform(ChunkingConfig()).transform(fps)
        t = ChunkTransform(ChunkingConfig())
        split = t.transform(fps[:7]) + t.transform(fps[7:23]) + t.transform(fps[23:])
        assert split == whole

    def test_forced_cut_at_max_blocks(self):
        # min == avg == max: the forced-cut rule fires before the mask
        # ever gets a chance, so every chunk is exactly max_blocks long.
        cfg = ChunkingConfig(min_blocks=4, avg_blocks=4, max_blocks=4)
        t = ChunkTransform(cfg)
        out = t.transform(tuple([7] * 12))
        offsets = [eff & (MAX_CHUNK_BLOCKS - 1) for eff in out]
        assert offsets == [0, 1, 2, 3] * 3  # every chunk exactly max len


class TestRabinTransform:
    """The Rabin variant satisfies the same contract as the Gear path
    (round-trip shape/determinism, framing and cut invariance) while
    making different cut decisions."""

    @given(stream=fp_streams)
    @settings(max_examples=150, deadline=None)
    def test_shape_preserved_and_deterministic(self, stream):
        a = ChunkTransform(ChunkingConfig(algorithm="rabin"))
        b = ChunkTransform(ChunkingConfig(algorithm="rabin"))
        for request in stream:
            out_a = a.transform(tuple(request))
            assert len(out_a) == len(request)
            assert out_a == b.transform(tuple(request))
        assert a.stats() == b.stats()
        assert a.blocks_processed == sum(len(r) for r in stream)

    @given(stream=fp_streams)
    @settings(max_examples=150, deadline=None)
    def test_encoding_decomposes(self, stream):
        cfg = ChunkingConfig(algorithm="rabin")
        t = ChunkTransform(cfg)
        flat = [fp for request in stream for fp in request]
        out = [
            eff for request in stream for eff in t.transform(tuple(request))
        ]
        prev_offset = None
        for k, eff in enumerate(out):
            anchor, offset = eff >> OFFSET_BITS, eff & (MAX_CHUNK_BLOCKS - 1)
            assert offset < cfg.max_blocks
            if offset == 0:
                assert anchor == flat[k]
            else:
                assert prev_offset is not None and offset == prev_offset + 1
            prev_offset = offset

    def test_request_framing_does_not_move_cuts(self):
        fps = tuple(range(100, 140))
        whole = ChunkTransform(ChunkingConfig(algorithm="rabin")).transform(fps)
        t = ChunkTransform(ChunkingConfig(algorithm="rabin"))
        split = t.transform(fps[:7]) + t.transform(fps[7:23]) + t.transform(fps[23:])
        assert split == whole

    def test_forced_cut_at_max_blocks(self):
        cfg = ChunkingConfig(min_blocks=4, avg_blocks=4, max_blocks=4,
                             algorithm="rabin")
        t = ChunkTransform(cfg)
        out = t.transform(tuple([7] * 12))
        offsets = [eff & (MAX_CHUNK_BLOCKS - 1) for eff in out]
        assert offsets == [0, 1, 2, 3] * 3

    def test_cut_invariance_after_insert(self):
        """The windowed hash has finite memory (RABIN_WINDOW tokens):
        an insert near the front perturbs boundaries only locally and
        downstream cut decisions re-synchronise -- the property that
        keeps duplicate detection alive across shifted streams."""
        import random

        rng = random.Random(7)
        stream = [rng.getrandbits(64) for _ in range(3000)]
        a = ChunkTransform(ChunkingConfig(algorithm="rabin")).transform(
            tuple(stream)
        )
        b = ChunkTransform(ChunkingConfig(algorithm="rabin")).transform(
            tuple(stream[:10] + [0xDEAD] + stream[10:])
        )
        anchors_a = [eff >> OFFSET_BITS for eff in a[-2000:]]
        anchors_b = [eff >> OFFSET_BITS for eff in b[-2000:]]
        assert anchors_a == anchors_b

    def test_differs_from_gear(self):
        """Same stream, different algorithm => different cut decisions
        (the tables share a seed stream but no entries)."""
        import random

        rng = random.Random(11)
        stream = tuple(rng.getrandbits(64) for _ in range(2000))
        gear = ChunkTransform(ChunkingConfig()).transform(stream)
        rabin = ChunkTransform(ChunkingConfig(algorithm="rabin")).transform(
            stream
        )
        assert gear != rabin

    def test_window_constant_sane(self):
        assert 1 < RABIN_WINDOW <= 64


class TestGearHashes:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_recurrence(self, data):
        got = gear_hashes(data)
        h = 0
        for i, byte in enumerate(data):
            h = ((h << 1) + GEAR_TABLE[byte]) & _MASK64
            assert int(got[i]) == h

    def test_empty(self):
        assert len(gear_hashes(b"")) == 0


class TestCutPoints:
    @given(
        data=st.binary(max_size=400),
        min_size=st.integers(min_value=1, max_value=8),
        avg_pow=st.integers(min_value=0, max_value=5),
        slack=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_bounds_and_coverage(self, data, min_size, avg_pow, slack):
        avg = max(min_size, 1 << avg_pow)
        if avg & (avg - 1):
            avg = 1 << (avg.bit_length())
        max_size = avg + slack
        cuts = cut_points(data, min_size, avg, max_size)
        if not data:
            assert cuts == []
            return
        assert cuts[-1] == len(data)
        assert cuts == sorted(set(cuts))
        start = 0
        for end in cuts:
            length = end - start
            assert length <= max_size
            # Only the final chunk may undershoot min_size (stream tail).
            if end != len(data):
                assert length >= min_size
            start = end

    def test_validation(self):
        with pytest.raises(ConfigError):
            cut_points(b"abc", 0, 4, 8)
        with pytest.raises(ConfigError):
            cut_points(b"abc", 2, 3, 8)  # avg not a power of two
        with pytest.raises(ConfigError):
            cut_points(b"abc", 4, 2, 8)  # min > avg
