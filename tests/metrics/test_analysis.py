"""Tests for the result-analysis helpers."""

import pytest

from repro.errors import SimulationError
from repro.metrics.analysis import (
    DetailedCollector,
    latency_by_size,
    latency_timeseries,
    slowdown_profile,
)
from repro.sim.request import IORequest, OpType


def rec(collector, op, nblocks, arrival, response, rid=0):
    req = (
        IORequest.write(arrival, 0, [1] * nblocks, req_id=rid)
        if op is OpType.WRITE
        else IORequest.read(arrival, 0, nblocks, req_id=rid)
    )
    collector.record(req, arrival, arrival + response)


class TestDetailedCollector:
    def test_samples_recorded_alongside_summaries(self):
        c = DetailedCollector()
        rec(c, OpType.READ, 1, 0.0, 0.010)
        rec(c, OpType.WRITE, 4, 1.0, 0.020)
        assert c.requests == 2
        assert len(c.samples) == 2
        assert c.samples[0].response == pytest.approx(0.010)
        assert c.read_summary().mean == pytest.approx(0.010)

    def test_sample_fields(self):
        c = DetailedCollector()
        rec(c, OpType.WRITE, 8, 2.0, 0.005, rid=42)
        s = c.samples[0]
        assert s.req_id == 42 and s.op is OpType.WRITE and s.nblocks == 8


class TestLatencyBySize:
    def test_buckets_and_means(self):
        c = DetailedCollector()
        rec(c, OpType.WRITE, 1, 0.0, 0.010)  # 4 KB
        rec(c, OpType.WRITE, 1, 0.0, 0.030)  # 4 KB
        rec(c, OpType.WRITE, 4, 0.0, 0.050)  # 16 KB
        out = latency_by_size(c)
        assert out[4] == (2, pytest.approx(0.020))
        assert out[16] == (1, pytest.approx(0.050))
        assert 8 not in out

    def test_op_filter(self):
        c = DetailedCollector()
        rec(c, OpType.WRITE, 1, 0.0, 0.010)
        rec(c, OpType.READ, 1, 0.0, 0.090)
        out = latency_by_size(c, op=OpType.READ)
        assert out[4] == (1, pytest.approx(0.090))


class TestTimeseries:
    def test_windows(self):
        c = DetailedCollector()
        rec(c, OpType.READ, 1, 0.5, 0.010)
        rec(c, OpType.READ, 1, 0.9, 0.030)
        rec(c, OpType.READ, 1, 7.0, 0.050)
        rows = latency_timeseries(c, window=5.0)
        assert rows[0] == (0.0, 2, pytest.approx(0.020))
        assert rows[1] == (5.0, 1, pytest.approx(0.050))

    def test_empty(self):
        assert latency_timeseries(DetailedCollector()) == []

    def test_bad_window(self):
        with pytest.raises(SimulationError):
            latency_timeseries(DetailedCollector(), window=0)


class TestSlowdown:
    def test_profile(self):
        c = DetailedCollector()
        rec(c, OpType.READ, 1, 0.0, 0.010)
        rec(c, OpType.READ, 1, 0.0, 0.030)
        profile = slowdown_profile(c, service_estimate=0.010)
        assert profile.mean == pytest.approx(2.0)
        assert profile.median == pytest.approx(2.0)

    def test_empty(self):
        p = slowdown_profile(DetailedCollector())
        assert p.mean == 0.0

    def test_bad_estimate(self):
        with pytest.raises(SimulationError):
            slowdown_profile(DetailedCollector(), service_estimate=0)


class TestReplayIntegration:
    def test_detailed_collector_through_replay(self):
        from repro.baselines.base import SchemeConfig
        from repro.baselines.native import Native
        from repro.sim.replay import replay_trace
        from repro.traces.synthetic import WEB_VM, generate_trace

        trace = generate_trace(WEB_VM, scale=0.005)
        collector = DetailedCollector()
        scheme = Native(
            SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=64 * 1024)
        )
        result = replay_trace(trace, scheme, collector=collector)
        assert result.metrics is collector
        assert len(collector.samples) == result.metrics.requests
        by_size = latency_by_size(collector)
        assert sum(count for count, _mean in by_size.values()) == len(collector.samples)
