"""Unit tests for the metrics collector."""

import pytest

from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector, ResponseSummary
from repro.sim.request import IORequest


def wreq(t=0.0):
    return IORequest.write(time=t, lba=0, fingerprints=[1])


def rreq(t=0.0, n=1):
    return IORequest.read(time=t, lba=0, nblocks=n)


class TestRecord:
    def test_split_by_op(self):
        m = MetricsCollector()
        m.record(wreq(), 0.0, 0.010)
        m.record(rreq(), 0.0, 0.002)
        assert m.write_summary().mean == pytest.approx(0.010)
        assert m.read_summary().mean == pytest.approx(0.002)
        assert m.overall_summary().mean == pytest.approx(0.006)

    def test_counts(self):
        m = MetricsCollector()
        for i in range(3):
            m.record(rreq(), float(i), float(i) + 0.001)
        assert m.requests == 3
        assert m.read_summary().count == 3
        assert m.write_summary().count == 0

    def test_completion_before_arrival_rejected(self):
        m = MetricsCollector()
        with pytest.raises(SimulationError):
            m.record(rreq(), 1.0, 0.5)

    def test_eliminated_and_cache_hits_accumulate(self):
        m = MetricsCollector()
        m.record(wreq(), 0.0, 0.0, eliminated=True)
        m.record(rreq(n=4), 0.0, 0.0, cache_hit_blocks=3)
        assert m.writes_eliminated == 1
        assert m.read_cache_hit_blocks == 3

    def test_eliminated_requests_vs_blocks_are_distinct(self):
        """An eliminated *request* skips its whole extent; a partially
        deduplicated write only removes some blocks.  The collector
        tracks the two separately."""
        m = MetricsCollector()
        # Whole write request eliminated: 1 request, its 1 block gone
        # (schemes report both the flag and the block count).
        m.record(wreq(), 0.0, 0.0, eliminated=True, deduped_blocks=1)
        # Partial dedup: request still issued, 2 of its blocks removed.
        partial = IORequest.write(time=0.0, lba=0, fingerprints=[1, 2, 3, 4])
        m.record(partial, 0.0, 0.001, deduped_blocks=2)
        assert m.writes_eliminated_requests == 1
        assert m.writes_eliminated_blocks == 1 + 2
        # Back-compat alias keeps the request meaning.
        assert m.writes_eliminated == m.writes_eliminated_requests
        d = m.as_dict()
        assert d["writes_eliminated_requests"] == 1
        assert d["writes_eliminated_blocks"] == 3
        assert d["writes_eliminated"] == 1

    def test_eliminated_read_does_not_count_as_write(self):
        m = MetricsCollector()
        m.record(rreq(n=2), 0.0, 0.0, cache_hit_blocks=2)
        assert m.writes_eliminated_requests == 0
        assert m.writes_eliminated_blocks == 0

    def test_makespan(self):
        m = MetricsCollector()
        m.record(rreq(), 1.0, 2.0)
        m.record(rreq(), 3.0, 7.0)
        assert m.as_dict()["makespan"] == pytest.approx(6.0)

    def test_percentiles(self):
        m = MetricsCollector()
        for i in range(1, 101):
            m.record(rreq(), 0.0, i / 1000.0)
        s = m.read_summary()
        assert s.median == pytest.approx(0.0505, rel=0.02)
        assert s.p95 >= s.median
        assert s.p99 >= s.p95

    def test_block_totals(self):
        m = MetricsCollector()
        m.record(rreq(n=4), 0.0, 0.001)
        assert m.read_summary().total_blocks == 4


class TestSummary:
    def test_empty_summary(self):
        s = ResponseSummary.empty()
        assert s.count == 0 and s.mean == 0.0

    def test_as_dict_keys(self):
        m = MetricsCollector()
        m.record(wreq(), 0.0, 0.001)
        d = m.as_dict()
        for key in (
            "requests",
            "mean_response",
            "read_mean_response",
            "write_mean_response",
            "writes_eliminated",
            "makespan",
        ):
            assert key in d

    def test_empty_collector_as_dict(self):
        d = MetricsCollector().as_dict()
        assert d["requests"] == 0 and d["makespan"] == 0.0
