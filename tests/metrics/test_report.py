"""Unit tests for normalisation and table rendering."""

import pytest

from repro.errors import ConfigError
from repro.metrics.report import improvement_pct, normalize_to, render_table


class TestNormalize:
    def test_baseline_is_100(self):
        out = normalize_to({"Native": 0.05, "POD": 0.025}, "Native")
        assert out["Native"] == pytest.approx(100.0)
        assert out["POD"] == pytest.approx(50.0)

    def test_unit_normalisation(self):
        out = normalize_to({"a": 4.0, "b": 2.0}, "a", percent=False)
        assert out["b"] == pytest.approx(0.5)

    def test_missing_baseline(self):
        with pytest.raises(ConfigError):
            normalize_to({"a": 1.0}, "zz")

    def test_zero_baseline(self):
        with pytest.raises(ConfigError):
            normalize_to({"a": 0.0}, "a")


class TestImprovement:
    def test_positive_means_faster(self):
        assert improvement_pct(100.0, 50.0) == pytest.approx(50.0)

    def test_negative_means_slower(self):
        assert improvement_pct(100.0, 110.0) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        with pytest.raises(ConfigError):
            improvement_pct(0.0, 1.0)


class TestRenderTable:
    def test_contains_title_and_cells(self):
        text = render_table("My Table", ["a", "b"], [[1, 2.5], ["x", True]])
        assert "== My Table ==" in text
        assert "2.50" in text
        assert "yes" in text

    def test_note_rendered(self):
        text = render_table("T", ["a"], [[1]], note="hello")
        assert "note: hello" in text

    def test_column_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            render_table("T", ["a", "b"], [[1]])

    def test_alignment(self):
        text = render_table("T", ["col"], [["verylongcell"], ["s"]])
        lines = text.splitlines()
        # all body lines padded to equal width
        assert len(lines[2]) == len(lines[3])
