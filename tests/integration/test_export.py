"""Tests for the CSV/JSON figure export."""

import csv
import json

import pytest

from repro.experiments import runner
from repro.experiments.export import export_all

SCALE = 0.02

EXPECTED_FILES = [
    "table1_features.csv",
    "table2_characteristics.csv",
    "fig1_redundancy_by_size.csv",
    "fig2_io_vs_capacity.csv",
    "fig3_partition_sweep.csv",
    "fig8_overall_response.csv",
    "fig9_read_write_split.csv",
    "fig10_capacity.csv",
    "fig11_write_reduction.csv",
    "nvram_overhead.csv",
    "figures.json",
]


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    runner.clear_run_cache()
    out = tmp_path_factory.mktemp("export")
    doc = export_all(out, scale=SCALE)
    yield out, doc
    runner.clear_run_cache()


def test_all_files_written(exported):
    out, _doc = exported
    for name in EXPECTED_FILES:
        assert (out / name).exists(), name
        assert (out / name).stat().st_size > 0, name


def test_json_document_complete(exported):
    out, doc = exported
    loaded = json.loads((out / "figures.json").read_text())
    for key in ("table2", "fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "nvram"):
        assert key in loaded and loaded[key], key
    assert loaded["scale"] == SCALE
    assert doc["scale"] == SCALE


def test_csv_roundtrip_fig8(exported):
    out, doc = exported
    with (out / "fig8_overall_response.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == len(doc["fig8"])
    native = [r for r in rows if r["scheme"] == "Native"]
    assert all(float(r["normalized_pct"]) == pytest.approx(100.0) for r in native)


def test_fig1_rows_cover_all_buckets(exported):
    out, _doc = exported
    with (out / "fig1_redundancy_by_size.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 3 * 5  # 3 traces x 5 buckets
