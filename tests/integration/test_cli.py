"""Integration tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main
from repro.experiments import runner


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--trace", "mail", "--scheme", "POD", "--scale", "0.02"]
        )
        assert args.trace == "mail" and args.scheme == "POD" and args.scale == 0.02

    def test_bad_trace_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "nope", "--scheme", "POD"])


class TestCommands:
    def test_run(self, capsys):
        rc = main(["run", "--trace", "web-vm", "--scheme", "POD", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "POD on web-vm" in out
        assert "mean response" in out

    def test_run_with_index_fraction(self, capsys):
        rc = main(
            [
                "run", "--trace", "web-vm", "--scheme", "Full-Dedupe",
                "--scale", "0.02", "--index-fraction", "0.3",
            ]
        )
        assert rc == 0

    def test_run_unknown_scheme_is_an_error(self, capsys):
        rc = main(["run", "--trace", "web-vm", "--scheme", "nope", "--scale", "0.02"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_compare(self, capsys):
        rc = main(["compare", "--trace", "homes", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        for scheme in ("Native", "Full-Dedupe", "iDedup", "Select-Dedupe", "POD"):
            assert scheme in out

    def test_figures_selected(self, capsys):
        rc = main(["figures", "--only", "table1,fig2", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table I" in out and "Fig. 2" in out

    def test_figures_unknown_name(self, capsys):
        rc = main(["figures", "--only", "fig99", "--scale", "0.02"])
        assert rc == 2

    def test_figures_registry_complete(self):
        from repro.experiments import figures

        for attr in FIGURES.values():
            assert hasattr(figures, attr)

    def test_trace_generate_and_analyze(self, capsys, tmp_path):
        out_file = tmp_path / "t.trace"
        rc = main(
            ["trace", "generate", "--trace", "web-vm", "--scale", "0.02",
             "--out", str(out_file)]
        )
        assert rc == 0 and out_file.exists()
        rc = main(["trace", "analyze", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "write ratio" in out and "I/O redundancy" in out

    def test_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["report", "--scale", "0.02"])
        assert rc == 0
        assert (tmp_path / "EXPERIMENTS.md").exists()
        content = (tmp_path / "EXPERIMENTS.md").read_text()
        assert "Fig. 11" in content and "Table II" in content

    def test_run_with_scheduler_and_raid(self, capsys):
        rc = main(
            ["run", "--trace", "web-vm", "--scheme", "Native", "--scale", "0.02",
             "--scheduler", "clook", "--raid", "raid0", "--ndisks", "2"]
        )
        assert rc == 0
        assert "Native on web-vm" in capsys.readouterr().out

    def test_run_degraded(self, capsys):
        rc = main(
            ["run", "--trace", "web-vm", "--scheme", "Native", "--scale", "0.02",
             "--failed-disk", "1"]
        )
        assert rc == 0

    def test_export(self, capsys, tmp_path):
        out = tmp_path / "figs"
        rc = main(["export", "--out", str(out), "--scale", "0.02"])
        assert rc == 0
        assert (out / "figures.json").exists()
        assert (out / "fig8_overall_response.csv").exists()


class TestDirectoryFlags:
    """The replicated-directory and chunking flag parsers."""

    def _args(self, extra):
        return build_parser().parse_args(
            ["run-cluster", "--trace", "web-vm", "--nodes", "3"] + extra
        )

    def test_no_flags_means_legacy_path(self):
        from repro.cli import _directory_config

        assert _directory_config(self._args([])) is None

    def test_replication_and_consistency(self):
        from repro.cli import _directory_config

        cfg = _directory_config(
            self._args(["--replication", "3", "--consistency", "all"])
        )
        assert cfg.replication == 3 and cfg.consistency.value == "all"
        assert cfg.gc is None and cfg.kill is None

    def test_gc_and_kill_imply_replication_one(self):
        from repro.cli import _directory_config

        cfg = _directory_config(
            self._args(["--gc", "--kill-metadata-node", "1:10.5"])
        )
        assert cfg.replication == 1
        assert cfg.gc.mode == "online"
        assert cfg.kill.node == 1 and cfg.kill.time == 10.5

    def test_gc_stw_mode(self):
        from repro.cli import _directory_config

        cfg = _directory_config(self._args(["--gc", "stw", "--gc-start", "5"]))
        assert cfg.gc.mode == "stw" and cfg.gc.start == 5.0

    def test_bad_kill_spec_rejected(self):
        from repro.cli import _directory_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            _directory_config(self._args(["--kill-metadata-node", "one:ten"]))
        with pytest.raises(ConfigError):
            _directory_config(self._args(["--kill-metadata-node", "1"]))


class TestChunkingFlag:
    def _args(self, spec):
        return build_parser().parse_args(
            ["run", "--trace", "web-vm", "--scheme", "POD", "--chunking", spec]
        )

    def test_algorithm_names(self):
        from repro.cli import _chunking_config

        assert _chunking_config(self._args("gear")).algorithm == "gear"
        assert _chunking_config(self._args("rabin")).algorithm == "rabin"

    def test_bounds_with_algorithm_prefix(self):
        from repro.cli import _chunking_config

        cfg = _chunking_config(self._args("rabin:2:8:16"))
        assert cfg.algorithm == "rabin"
        assert (cfg.min_blocks, cfg.avg_blocks, cfg.max_blocks) == (2, 8, 16)
        # bare bounds keep the gear default
        assert _chunking_config(self._args("2:8:16")).algorithm == "gear"

    def test_bad_specs_rejected(self):
        from repro.cli import _chunking_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            _chunking_config(self._args("buzhash"))
        with pytest.raises(ConfigError):
            _chunking_config(self._args("rabin:2:8"))
