"""Smoke tests: the example applications run end-to-end.

The heavyweight examples are exercised at their smallest useful size;
the point is that every public API they demonstrate keeps working.
"""

import runpy
import sys

import pytest


def run_example(name, argv=()):
    sys_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_module(f"examples.{name}", run_name="__main__")
    finally:
        sys.argv = sys_argv


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    monkeypatch.syspath_prepend(str(root))


def test_quickstart(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "POD:" in out and "Native:" in out
    assert "write requests removed" in out


def test_vm_image_dedupe(capsys):
    run_example("vm_image_dedupe")
    out = capsys.readouterr().out
    assert "verified: all" in out
    assert "deterministic run" in out


def test_custom_trace(capsys):
    run_example("custom_trace")
    out = capsys.readouterr().out
    assert "I/O redundancy" in out
    assert "RAID5" in out and "RAID0" in out


def test_mail_server_comparison_small(capsys):
    run_example("mail_server_comparison", ["0.02"])
    out = capsys.readouterr().out
    for scheme in ("Native", "Full-Dedupe", "iDedup", "Select-Dedupe", "POD"):
        assert scheme in out


def test_ssd_assisted_restore(capsys):
    run_example("ssd_assisted_restore")
    out = capsys.readouterr().out
    assert "SAR" in out and "SSD-served blocks" in out


def test_latency_breakdown(capsys):
    run_example("latency_breakdown", ["0.02"])
    out = capsys.readouterr().out
    assert "latency by request size" in out
    assert "queue-pressure slowdowns" in out
