"""Integration tests for the experiment runners and figure drivers.

These run at a very small scale (shapes are asserted at bench scale in
benchmarks/); here we only check the plumbing: memoisation, override
handling, table rendering, and the qualitative Table I content.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import figures, runner

SCALE = 0.02


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


class TestRunner:
    def test_run_single_returns_result(self):
        r = runner.run_single("web-vm", "Native", scale=SCALE)
        assert r.trace_name == "web-vm" and r.scheme_name == "Native"

    def test_memoisation_returns_same_object(self):
        a = runner.run_single("web-vm", "Native", scale=SCALE)
        b = runner.run_single("web-vm", "Native", scale=SCALE)
        assert a is b

    def test_overrides_change_the_key(self):
        a = runner.run_single("web-vm", "Full-Dedupe", scale=SCALE)
        b = runner.run_single("web-vm", "Full-Dedupe", scale=SCALE, index_fraction=0.2)
        assert a is not b

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            runner.run_single("nope", "Native", scale=SCALE)
        with pytest.raises(ConfigError):
            runner.run_single("web-vm", "nope", scale=SCALE)

    def test_run_matrix_covers_all_pairs(self):
        m = runner.run_matrix(["web-vm"], ["Native", "POD"], scale=SCALE)
        assert set(m) == {("web-vm", "Native"), ("web-vm", "POD")}

    def test_trace_memoised_across_schemes(self):
        runner.run_single("web-vm", "Native", scale=SCALE)
        runner.run_single("web-vm", "POD", scale=SCALE)
        spec = __import__("repro.traces.synthetic", fromlist=["WEB_VM"]).WEB_VM
        assert len(runner._trace_cache) == 1

    def test_scheme_config_overrides(self):
        cfg = runner.scheme_config_for(
            __import__("repro.traces.synthetic", fromlist=["WEB_VM"]).WEB_VM,
            scale=SCALE,
            select_threshold=5,
        )
        assert cfg.select_threshold == 5


class TestFigureDrivers:
    def test_table1_matches_paper_flags(self):
        rows, text = figures.table1_features()
        by_name = {r["scheme"]: r for r in rows}
        # Table I of the paper
        assert by_name["POD"]["capacity_saving"] is True
        assert by_name["POD"]["small_writes_elimination"] is True
        assert by_name["POD"]["cache_partitioning"] == "dynamic/adaptive"
        assert by_name["iDedup"]["small_writes_elimination"] is False
        assert by_name["I/O-Dedup"]["capacity_saving"] is False
        assert "Table I" in text

    def test_table2_renders(self):
        rows, text = figures.table2_characteristics(scale=SCALE)
        assert len(rows) == 3 and "Table II" in text

    def test_fig1_has_all_buckets(self):
        data, text = figures.fig1_redundancy_by_size(scale=SCALE)
        for name, rows in data.items():
            assert [r.bucket_kb for r in rows] == [4, 8, 16, 32, 64]

    def test_fig2_io_exceeds_capacity(self):
        rows, _ = figures.fig2_io_vs_capacity(scale=SCALE)
        for r in rows:
            assert r["io_redundancy_pct"] >= r["capacity_redundancy_pct"]

    def test_fig3_sweep_rows(self):
        rows, text = figures.fig3_partition_sweep(
            trace_name="web-vm", fractions=(0.3, 0.7), scale=SCALE
        )
        assert [r["index_fraction"] for r in rows] == [0.3, 0.7]
        assert "Fig. 3" in text

    def test_fig8_normalized_to_native(self):
        data, _ = figures.fig8_overall_response(scale=SCALE)
        for trace, vals in data.items():
            assert vals["Native"] == pytest.approx(100.0)

    def test_fig9_has_both_directions(self):
        data, text = figures.fig9_read_write_split(scale=SCALE)
        assert set(data) == {"read", "write"}
        assert "Fig. 9a" in text and "Fig. 9b" in text

    def test_fig10_capacity_normalized(self):
        data, _ = figures.fig10_capacity(scale=SCALE)
        for vals in data.values():
            assert vals["Native"] == pytest.approx(100.0)
            assert vals["Full-Dedupe"] <= 100.0

    def test_fig11_percentages_bounded(self):
        data, _ = figures.fig11_write_reduction(scale=SCALE)
        for vals in data.values():
            for v in vals.values():
                assert 0.0 <= v <= 100.0

    def test_nvram_overhead_positive(self):
        data, text = figures.nvram_overhead(scale=SCALE)
        assert all(v >= 0 for v in data.values())
        assert "NVRAM" in text
