"""Tests for the parallel experiment runner."""

import pytest

from repro.experiments import runner
from repro.experiments.parallel import run_matrix_parallel

SCALE = 0.02


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


def test_parallel_matches_serial():
    """The parallel matrix is bit-identical to the serial one."""
    serial = runner.run_matrix(["web-vm"], ["Native", "POD"], scale=SCALE)
    runner.clear_run_cache()
    parallel = run_matrix_parallel(
        ["web-vm"], ["Native", "POD"], scale=SCALE, max_workers=2
    )
    assert set(parallel) == set(serial)
    for key in serial:
        assert parallel[key].metrics.as_dict() == serial[key].metrics.as_dict()
        assert parallel[key].capacity_blocks == serial[key].capacity_blocks


def test_results_folded_into_memo_cache():
    run_matrix_parallel(["homes"], ["Native"], scale=SCALE, max_workers=2)
    # a subsequent serial call must not resimulate: same object back
    cached = runner.run_single("homes", "Native", scale=SCALE)
    assert cached.trace_name == "homes"
    assert len(runner._run_cache) == 1


def test_single_worker_path():
    out = run_matrix_parallel(["homes"], ["Native"], scale=SCALE, max_workers=1)
    assert out[("homes", "Native")].metrics.requests > 0


def test_defaults_cover_paper_grid():
    out = run_matrix_parallel(scale=0.01, max_workers=2)
    assert len(out) == 3 * len(runner.PAPER_SCHEMES)


def _fingerprints(matrix):
    return {
        key: (
            result.metrics.as_dict(),
            result.scheme_stats,
            result.capacity_blocks,
        )
        for key, result in matrix.items()
    }


def test_worker_count_invariance():
    """Shipping traces as column payloads must not leak any worker-
    count dependence: 1, 2 and 3 workers produce bit-identical
    matrices, with and without the columnar batch driver."""
    grid = dict(
        trace_names=["web-vm", "homes"], scheme_names=["Native", "POD"],
        scale=SCALE,
    )
    for batch_size in (None, 4096):
        base = None
        for workers in (1, 2, 3):
            runner.clear_run_cache()
            got = _fingerprints(
                run_matrix_parallel(
                    max_workers=workers, batch_size=batch_size, **grid
                )
            )
            if base is None:
                base = got
            assert got == base, (
                f"matrix differs at max_workers={workers}, "
                f"batch_size={batch_size}"
            )


def test_batch_size_matches_object_path():
    """The batched parallel matrix equals the object-path serial one
    (the columnar driver's bit-identity, end to end through workers)."""
    serial = runner.run_matrix(["web-vm"], ["POD"], scale=SCALE)
    runner.clear_run_cache()
    batched = run_matrix_parallel(
        ["web-vm"], ["POD"], scale=SCALE, max_workers=2, batch_size=4096
    )
    assert _fingerprints(batched) == _fingerprints(serial)
