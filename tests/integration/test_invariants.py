"""Integration: ``--check-invariants`` replays are clean and identical.

The sanitizer is observation-only; enabling it must not shift a single
simulated completion time.  These tests replay the seeded web-vm trace
with checking on and off and compare the metric documents, and run the
CLI end to end with the flag.
"""

from __future__ import annotations

import pytest

from repro.baselines.base import SchemeConfig
from repro.cli import main
from repro.experiments import runner
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace
from tests.conftest import DEDUP_SCHEMES


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


def build(cls, trace):
    return cls(
        SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=128 * 1024)
    )


class TestCheckedReplay:
    @pytest.mark.parametrize("cls", DEDUP_SCHEMES, ids=lambda c: c.name)
    def test_seeded_web_vm_replay_is_clean(self, cls):
        trace = generate_trace(WEB_VM, scale=0.02)
        config = ReplayConfig(check_invariants=True, sanitize_every=200)
        result = replay_trace(trace, build(cls, trace), config)
        assert result.sanitizer is not None
        assert result.sanitizer.stats.checks_run > 0
        assert result.sanitizer.stats.violations_found == 0

    @pytest.mark.parametrize("cls", DEDUP_SCHEMES[:2], ids=lambda c: c.name)
    def test_checking_never_changes_simulated_times(self, cls):
        trace = generate_trace(WEB_VM, scale=0.02)
        plain = replay_trace(trace, build(cls, trace), ReplayConfig())
        checked = replay_trace(
            trace,
            build(cls, trace),
            ReplayConfig(check_invariants=True, sanitize_every=100),
        )
        assert plain.metrics.as_dict() == checked.metrics.as_dict()
        assert plain.utilisation == checked.utilisation
        assert plain.capacity_blocks == checked.capacity_blocks

    def test_decisions_validated_for_select_family(self):
        trace = generate_trace(WEB_VM, scale=0.02)
        from repro.core.pod import POD

        config = ReplayConfig(check_invariants=True, sanitize_every=500)
        result = replay_trace(trace, build(POD, trace), config)
        assert result.sanitizer.stats.decisions_validated > 0

    def test_invalid_sanitize_every_rejected(self):
        from repro.errors import ConfigError

        trace = generate_trace(WEB_VM, scale=0.01)
        from repro.core.pod import POD

        with pytest.raises(ConfigError):
            replay_trace(
                trace,
                build(POD, trace),
                ReplayConfig(check_invariants=True, sanitize_every=0),
            )


class TestCli:
    def test_run_with_check_invariants(self, capsys):
        rc = main(
            [
                "run",
                "--trace",
                "web-vm",
                "--scheme",
                "POD",
                "--scale",
                "0.02",
                "--check-invariants",
                "--sanitize-every",
                "250",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "invariants clean" in out

    def test_compare_with_check_invariants(self, capsys):
        rc = main(
            [
                "compare",
                "--trace",
                "mail",
                "--scale",
                "0.01",
                "--check-invariants",
            ]
        )
        assert rc == 0
        assert "POD" in capsys.readouterr().out

    def test_report_carries_sanitizer_summary(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        rc = main(
            [
                "run",
                "--trace",
                "web-vm",
                "--scheme",
                "POD",
                "--scale",
                "0.02",
                "--check-invariants",
                "--report-out",
                str(out_path),
            ]
        )
        assert rc == 0
        import json

        doc = json.loads(out_path.read_text())
        assert doc["sanitizer"]["violations_found"] == 0
        assert doc["sanitizer"]["checks_run"] > 0
