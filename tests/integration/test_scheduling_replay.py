"""Replay-level validation of the event-driven scheduling modes."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.native import Native
from repro.core.pod import POD
from repro.sim.replay import ReplayConfig, replay_trace
from repro.storage.scheduler import SchedulingPolicy
from repro.traces.synthetic import WEB_VM, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WEB_VM, scale=0.01)


def run(trace, cls, scheduler):
    scheme = cls(
        SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=128 * 1024)
    )
    return replay_trace(trace, scheme, ReplayConfig(scheduler=scheduler))


class TestEquivalence:
    def test_event_fcfs_matches_analytic(self, trace):
        """The event-driven FCFS replay must reproduce the analytic
        path's response times exactly (same order, same math)."""
        analytic = run(trace, Native, None).metrics
        event = run(trace, Native, SchedulingPolicy.FCFS).metrics
        assert event.requests == analytic.requests
        assert event.overall_summary().mean == pytest.approx(
            analytic.overall_summary().mean, rel=1e-9
        )
        assert event.read_summary().mean == pytest.approx(
            analytic.read_summary().mean, rel=1e-9
        )

    def test_pod_works_in_event_mode(self, trace):
        result = run(trace, POD, SchedulingPolicy.CLOOK)
        assert result.metrics.requests == len(trace) - trace.warmup_count
        assert result.metrics.overall_summary().mean > 0


class TestElevator:
    def test_clook_no_slower_than_fcfs_under_load(self, trace):
        fcfs = run(trace, Native, SchedulingPolicy.FCFS).metrics.overall_summary().mean
        clook = run(trace, Native, SchedulingPolicy.CLOOK).metrics.overall_summary().mean
        assert clook <= fcfs * 1.05

    def test_clook_moves_head_less(self, trace):
        fcfs = run(trace, Native, SchedulingPolicy.FCFS)
        clook = run(trace, Native, SchedulingPolicy.CLOOK)
        busy_fcfs = sum(d["busy_time"] for d in fcfs.utilisation.values())
        busy_clook = sum(d["busy_time"] for d in clook.utilisation.values())
        assert busy_clook <= busy_fcfs
