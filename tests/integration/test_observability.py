"""End-to-end observability tests.

The two load-bearing guarantees:

1. **Observation does not perturb the simulation** -- a replay with a
   CHUNK-level recorder attached produces byte-identical per-request
   completion times to an un-instrumented replay.
2. **The CLI artifacts are real** -- ``run --report-out/--trace-out``
   writes a valid versioned report and parseable JSONL, and ``stats``
   renders/diffs them.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.metrics.analysis import DetailedCollector
from repro.obs import (
    EVENT_FIELDS,
    EVENT_SCHEMA_VERSION,
    EventType,
    TraceLevel,
    TraceRecorder,
    load_report,
    read_jsonl,
)
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import generate_trace, paper_traces


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


SCALE = 0.02


def _replay(recorder=None, scheme_name="POD", collector=None):
    spec = paper_traces()["web-vm"]
    trace = generate_trace(spec, seed=11, scale=SCALE)
    scheme = runner.build_scheme(scheme_name, spec, scale=SCALE)
    return replay_trace(
        trace, scheme, ReplayConfig(), collector=collector, recorder=recorder
    )


class TestObservationIsPure:
    @pytest.mark.parametrize("scheme_name", ["POD", "Select-Dedupe", "Native"])
    def test_tracing_enabled_does_not_change_results(self, scheme_name):
        plain = _replay(collector=DetailedCollector(), scheme_name=scheme_name)
        traced = _replay(
            recorder=TraceRecorder(level=TraceLevel.CHUNK),
            collector=DetailedCollector(),
            scheme_name=scheme_name,
        )
        assert len(traced.recorder.events) > 0
        # Exact per-request samples, not just aggregates.
        assert [
            (s.req_id, s.arrival, s.completion) for s in plain.metrics.samples
        ] == [
            (s.req_id, s.arrival, s.completion) for s in traced.metrics.samples
        ]
        assert plain.metrics.as_dict() == traced.metrics.as_dict()
        assert plain.utilisation == traced.utilisation
        assert plain.scheme_stats == traced.scheme_stats
        assert plain.epoch_timeline == traced.epoch_timeline

    def test_off_recorder_records_nothing_and_changes_nothing(self):
        plain = _replay(collector=DetailedCollector())
        off = _replay(
            recorder=TraceRecorder(level=TraceLevel.OFF),
            collector=DetailedCollector(),
        )
        assert len(off.recorder.events) == 0
        assert plain.metrics.as_dict() == off.metrics.as_dict()

    def test_epoch_timeline_surfaces_in_result(self):
        result = _replay()
        assert result.epoch_timeline, "POD replay should record iCache epochs"
        first = result.epoch_timeline[0]
        assert {"epoch", "t", "index_bytes", "read_bytes", "direction"} <= set(first)

    def test_event_fields_honour_schema_on_real_replay(self):
        result = _replay(recorder=TraceRecorder(level=TraceLevel.CHUNK))
        seen = set()
        for event in result.recorder.events:
            seen.add(event.etype)
            assert set(event.fields) == set(EVENT_FIELDS[event.etype])
        assert EventType.REQUEST_ARRIVE in seen
        assert EventType.ICACHE_EPOCH in seen
        assert EventType.DISK_OP in seen


class TestSeedReproducibility:
    def test_same_seed_same_report(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            runner.clear_run_cache()
            rc = main([
                "run", "--trace", "web-vm", "--scheme", "pod",
                "--scale", str(SCALE), "--seed", "5", "--report-out", str(path),
            ])
            assert rc == 0
        ra, rb = load_report(a), load_report(b)
        assert ra["seed"] == rb["seed"] == 5
        assert ra["counters"] == rb["counters"]
        assert ra["histograms"] == rb["histograms"]
        assert ra["icache_timeline"] == rb["icache_timeline"]

    def test_different_seed_different_trace(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["run", "--trace", "web-vm", "--scheme", "pod",
              "--scale", str(SCALE), "--seed", "1", "--report-out", str(a)])
        main(["run", "--trace", "web-vm", "--scheme", "pod",
              "--scale", str(SCALE), "--seed", "2", "--report-out", str(b)])
        ra, rb = load_report(a), load_report(b)
        assert ra["counters"] != rb["counters"]


class TestCliArtifacts:
    def test_run_writes_report_and_trace(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        trace_path = tmp_path / "t.jsonl"
        rc = main([
            "run", "--trace", "web-vm", "--scheme", "pod", "--scale", str(SCALE),
            "--report-out", str(report_path), "--trace-out", str(trace_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out

        report = load_report(report_path)
        assert report["version"] == 1
        assert report["scheme"] == "POD"  # case-insensitive lookup
        assert report["counters"]["requests"] > 0
        assert report["counters"]["writes_eliminated_blocks"] >= report[
            "counters"]["writes_eliminated_requests"]
        for series in ("overall", "read", "write"):
            h = report["histograms"][series]
            assert h["p50"] <= h["p95"] <= h["p99"] <= h["p999"]
        assert report["icache_timeline"], "POD report must carry epoch timeline"
        assert report["tracing"]["level"] == "request"
        assert report["overhead"]["replay_wall_s"] > 0

        docs = list(read_jsonl(trace_path))
        header = docs[0]
        assert header["schema_version"] == EVENT_SCHEMA_VERSION
        assert header["events"] == len(docs) - 1
        etypes = {d["etype"] for d in docs[1:]}
        assert EventType.REQUEST_COMPLETE in etypes
        assert EventType.ICACHE_EPOCH in etypes

    def test_trace_level_off_writes_report_without_events(self, tmp_path):
        report_path = tmp_path / "r.json"
        rc = main([
            "run", "--trace", "web-vm", "--scheme", "POD", "--scale", str(SCALE),
            "--trace-level", "off", "--report-out", str(report_path),
        ])
        assert rc == 0
        report = load_report(report_path)
        assert report["tracing"]["level"] == "off"
        assert report["tracing"]["events_recorded"] == 0
        assert report["icache_timeline"], "timeline is independent of tracing"

    def test_report_identical_with_tracing_off_and_chunk(self, tmp_path):
        """The acceptance check: --trace-level off does not change the
        simulated numbers."""
        a, b = tmp_path / "off.json", tmp_path / "chunk.json"
        main(["run", "--trace", "web-vm", "--scheme", "POD", "--scale", str(SCALE),
              "--seed", "3", "--trace-level", "off", "--report-out", str(a)])
        runner.clear_run_cache()
        main(["run", "--trace", "web-vm", "--scheme", "POD", "--scale", str(SCALE),
              "--seed", "3", "--trace-level", "chunk", "--report-out", str(b)])
        ra, rb = load_report(a), load_report(b)
        assert ra["counters"] == rb["counters"]
        assert ra["histograms"] == rb["histograms"]
        assert ra["utilisation"] == rb["utilisation"]

    def test_stats_renders_report(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        main(["run", "--trace", "web-vm", "--scheme", "POD", "--scale", str(SCALE),
              "--seed", "1", "--report-out", str(report_path)])
        capsys.readouterr()
        rc = main(["stats", str(report_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "POD on web-vm" in out
        assert "p999" in out
        assert "iCache epoch timeline" in out

    def test_stats_diffs_two_reports(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["run", "--trace", "web-vm", "--scheme", "POD", "--scale", str(SCALE),
              "--seed", "1", "--report-out", str(a)])
        main(["run", "--trace", "web-vm", "--scheme", "Native",
              "--scale", str(SCALE), "--seed", "1", "--report-out", str(b)])
        capsys.readouterr()
        rc = main(["stats", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "vs" in out
        assert "overall.p95" in out

    def test_stats_rejects_three_paths(self, tmp_path, capsys):
        rc = main(["stats", "a", "b", "c"])
        assert rc == 2

    def test_stats_missing_file_is_an_error(self, capsys):
        rc = main(["stats", "/nonexistent/report.json"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_report_out(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        rc = main(["compare", "--trace", "web-vm", "--scale", str(SCALE),
                   "--seed", "2", "--report-out", str(path)])
        assert rc == 0
        report = load_report(path)
        assert report["kind"] == "pod-compare-report"
        assert [r["scheme"] for r in report["runs"]] == list(
            runner.PAPER_SCHEMES)
        assert all(r["seed"] == 2 for r in report["runs"])
        capsys.readouterr()
        rc = main(["stats", str(path)])
        assert rc == 0
        assert "POD on web-vm" in capsys.readouterr().out

    def test_lowercase_scheme_accepted(self):
        result = runner.run_single("web-vm", "select-dedupe", scale=SCALE)
        assert result.scheme_name == "Select-Dedupe"
