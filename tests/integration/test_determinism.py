"""Determinism: identical inputs give bit-identical results.

Reproducibility is a first-class requirement for a simulation-based
reproduction -- every published number must be regenerable exactly.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.sim.replay import ReplayConfig, replay_trace
from repro.storage.scheduler import SchedulingPolicy
from repro.traces.synthetic import HOMES, generate_trace
from tests.conftest import ALL_SCHEMES


@pytest.fixture(scope="module")
def trace():
    return generate_trace(HOMES, scale=0.02)


def run_once(trace, cls, scheduler=None):
    scheme = cls(
        SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=128 * 1024)
    )
    return replay_trace(trace, scheme, ReplayConfig(scheduler=scheduler))


@pytest.mark.parametrize("cls", ALL_SCHEMES, ids=lambda c: c.name)
def test_replay_deterministic(trace, cls):
    a = run_once(trace, cls)
    b = run_once(trace, cls)
    assert a.metrics.as_dict() == b.metrics.as_dict()
    assert a.scheme_stats == b.scheme_stats
    assert a.capacity_blocks == b.capacity_blocks


def test_event_mode_deterministic(trace):
    cls = ALL_SCHEMES[0]
    a = run_once(trace, cls, SchedulingPolicy.CLOOK)
    b = run_once(trace, cls, SchedulingPolicy.CLOOK)
    assert a.metrics.as_dict() == b.metrics.as_dict()


def test_trace_generation_bit_identical():
    a = generate_trace(HOMES, scale=0.02)
    b = generate_trace(HOMES, scale=0.02)
    assert a.records == b.records
    assert a.warmup_count == b.warmup_count
