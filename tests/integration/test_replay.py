"""Integration tests: full trace replay through every scheme."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.sim.replay import ReplayConfig, replay_trace
from repro.sim.request import OpType
from repro.storage.raid import RaidLevel
from repro.traces.format import Trace, TraceRecord
from repro.traces.synthetic import WEB_VM, generate_trace
from tests.conftest import ALL_SCHEMES


def tiny_trace():
    return generate_trace(WEB_VM, scale=0.01)


def scheme_for(cls, trace):
    return cls(SchemeConfig(logical_blocks=trace.logical_blocks, memory_bytes=128 * 1024))


class TestReplayAllSchemes:
    @pytest.mark.parametrize("cls", ALL_SCHEMES, ids=lambda c: c.name)
    def test_replay_completes_and_measures(self, cls):
        trace = tiny_trace()
        result = replay_trace(trace, scheme_for(cls, trace))
        measured = len(trace) - trace.warmup_count
        assert result.metrics.requests == measured
        assert result.metrics.overall_summary().mean > 0
        assert result.capacity_blocks > 0
        assert result.scheme_name == cls.name

    @pytest.mark.parametrize("cls", ALL_SCHEMES, ids=lambda c: c.name)
    def test_raid0_and_single_also_work(self, cls):
        trace = tiny_trace()
        for config in (
            ReplayConfig(raid_level=RaidLevel.RAID0, ndisks=2),
            ReplayConfig(raid_level=RaidLevel.SINGLE, ndisks=1),
        ):
            result = replay_trace(trace, scheme_for(cls, trace), config)
            assert result.metrics.requests > 0


class TestReplayMechanics:
    def test_warmup_excluded_from_metrics(self):
        trace = tiny_trace()
        result = replay_trace(trace, scheme_for(ALL_SCHEMES[0], trace))
        assert result.metrics.requests == len(trace) - trace.warmup_count

    def test_collect_warmup_includes_everything(self):
        trace = tiny_trace()
        result = replay_trace(
            trace, scheme_for(ALL_SCHEMES[0], trace), ReplayConfig(collect_warmup=True)
        )
        assert result.metrics.requests == len(trace)

    def test_removed_write_pct_counts_measured_day_only(self):
        from repro.core.select_dedupe import SelectDedupe

        trace = tiny_trace()
        scheme = scheme_for(SelectDedupe, trace)
        result = replay_trace(trace, scheme)
        measured_writes = sum(1 for r in trace.measured_records if r.is_write)
        assert result.writes_total == measured_writes
        assert 0.0 <= result.removed_write_pct <= 100.0

    def test_response_times_nonnegative_and_bounded(self):
        trace = tiny_trace()
        result = replay_trace(trace, scheme_for(ALL_SCHEMES[0], trace))
        s = result.metrics.overall_summary()
        assert 0 <= s.median <= s.p95 <= s.p99
        assert s.mean < 10.0  # seconds; sanity bound

    def test_trace_larger_than_scheme_rejected(self):
        trace = tiny_trace()
        small = ALL_SCHEMES[0](
            SchemeConfig(logical_blocks=64, memory_bytes=1024)
        )
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            replay_trace(trace, small)

    def test_pod_epochs_fire_during_replay(self):
        from repro.core.pod import POD

        trace = tiny_trace()
        scheme = POD(
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=128 * 1024,
                icache_epoch=0.5,
            )
        )
        replay_trace(trace, scheme)
        duration = trace.records[-1].time - trace.records[0].time
        assert len(scheme.cache.partition_history) >= int(duration / 0.5) - 1

    def test_summary_dict(self):
        trace = tiny_trace()
        result = replay_trace(trace, scheme_for(ALL_SCHEMES[0], trace))
        s = result.summary()
        assert s["trace"] == "web-vm"
        assert "mean_response" in s and "removed_write_pct" in s


class TestQueueingBehaviour:
    @staticmethod
    def _mean_response(gap):
        records = [
            TraceRecord(i * gap, OpType.WRITE, i * 8, 4, tuple(range(i * 10, i * 10 + 4)))
            for i in range(20)
        ]
        trace = Trace(name="burst", records=records, logical_blocks=4096)
        scheme = scheme_for(ALL_SCHEMES[0], trace)
        result = replay_trace(trace, scheme, ReplayConfig(collect_warmup=True))
        return result.metrics.write_summary().mean

    def test_bursts_cause_queueing(self):
        """The same 20 writes cost much more per request when they
        arrive as one burst than when spaced out -- the queue-pressure
        premise behind POD's read-latency benefit."""
        bursty = self._mean_response(gap=0.0)
        spaced = self._mean_response(gap=10.0)
        assert bursty > 3 * spaced
