"""Cross-checks between figure data and the underlying replays.

The figure drivers aggregate the run matrix; these tests verify the
aggregation itself (normalisation arithmetic, row/percentage
consistency) against independently fetched results.
"""

import pytest

from repro.experiments import figures, runner

SCALE = 0.02


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    runner.clear_run_cache()
    yield
    runner.clear_run_cache()


class TestFig8Arithmetic:
    def test_normalisation_matches_raw_means(self):
        data, _ = figures.fig8_overall_response(scale=SCALE)
        for trace, by_scheme in data.items():
            native = runner.run_single(trace, "Native", scale=SCALE)
            native_mean = native.metrics.overall_summary().mean
            for scheme, normalized in by_scheme.items():
                raw = runner.run_single(trace, scheme, scale=SCALE)
                expected = raw.metrics.overall_summary().mean / native_mean * 100.0
                assert normalized == pytest.approx(expected)


class TestFig10Arithmetic:
    def test_capacity_normalisation(self):
        data, _ = figures.fig10_capacity(scale=SCALE)
        for trace, by_scheme in data.items():
            native = runner.run_single(trace, "Native", scale=SCALE)
            for scheme, normalized in by_scheme.items():
                raw = runner.run_single(trace, scheme, scale=SCALE)
                expected = raw.capacity_blocks / native.capacity_blocks * 100.0
                assert normalized == pytest.approx(expected)


class TestFig11Consistency:
    def test_percentages_match_results(self):
        data, _ = figures.fig11_write_reduction(scale=SCALE)
        for trace, by_scheme in data.items():
            for scheme, pct in by_scheme.items():
                raw = runner.run_single(trace, scheme, scale=SCALE)
                assert pct == pytest.approx(raw.removed_write_pct)

    def test_removed_bounded_by_writes(self):
        data, _ = figures.fig11_write_reduction(scale=SCALE)
        for by_scheme in data.values():
            for pct in by_scheme.values():
                assert 0.0 <= pct <= 100.0


class TestFig1Totals:
    def test_bucket_totals_equal_measured_writes(self):
        from repro.traces.synthetic import paper_traces

        data, _ = figures.fig1_redundancy_by_size(scale=SCALE)
        for trace_name, rows in data.items():
            trace = runner.get_trace(paper_traces()[trace_name], scale=SCALE)
            writes = sum(1 for r in trace.measured_records if r.is_write)
            assert sum(r.total for r in rows) == writes
            for r in rows:
                assert r.fully_redundant + r.partially_redundant <= r.total


class TestFig2Bounds:
    def test_percentages_partition_write_blocks(self):
        rows, _ = figures.fig2_io_vs_capacity(scale=SCALE)
        for r in rows:
            assert 0.0 <= r["same_location_pct"]
            assert 0.0 <= r["different_location_pct"]
            assert r["io_redundancy_pct"] <= 100.0
            assert r["io_redundancy_pct"] == pytest.approx(
                r["same_location_pct"] + r["different_location_pct"]
            )
