"""Golden regression + multi-volume shared-dedup-domain integration.

Two contracts of the namespace refactor:

1. **Single-volume bit-identity.**  ``replay_trace`` is now the N=1
   special case of ``replay_traces``; the exact summary values below
   were captured from the pre-refactor code path (same seeds, same
   scale) and must keep reproducing to the last bit.  Any deviation
   means the refactor changed the classic replay semantics.

2. **Shared dedup domain.**  Replaying K tenant clones through ONE
   scheme instance must collapse cross-volume duplicates: POD's
   capacity grows sublinearly in K while Native's stays linear, and
   the per-volume metric breakdowns attribute the dedupe correctly.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.registry import DEFAULT_REGISTRY
from repro.experiments import runner
from repro.sim.replay import ReplayConfig, replay_trace, replay_traces
from repro.traces.synthetic import clone_tenants, generate_trace, paper_traces

SCALE = 0.05
SEED = 7

#: (trace, scheme) -> (requests, mean_response, read_mean_response,
#: write_mean_response, capacity_blocks, removed_write_pct,
#: writes_eliminated_blocks), captured on the pre-namespace main.
GOLDEN = {
    ("web-vm", "POD"): (
        1500, 0.029931439484267297, 0.02682216193888085,
        0.031189124783524737, 4658, 38.670411985018724, 1244,
    ),
    ("web-vm", "Native"): (
        1500, 0.05601857263412324, 0.02816170419471166,
        0.06728651941860433, 5778, 0.0, 0,
    ),
    ("mail", "Select-Dedupe"): (
        3200, 0.04327705286316734, 0.05207815840063561,
        0.04074018025252834, 24592, 48.470209339774556, 13614,
    ),
}


class TestGoldenSingleVolume:
    @pytest.mark.parametrize("trace_name,scheme_name", sorted(GOLDEN))
    def test_summary_bit_identical_to_pre_refactor(self, trace_name, scheme_name):
        result = runner.run_observed(
            trace_name, scheme_name, scale=SCALE, seed=SEED
        )
        s = result.summary()
        got = (
            s["requests"],
            s["mean_response"],
            s["read_mean_response"],
            s["write_mean_response"],
            s["capacity_blocks"],
            s["removed_write_pct"],
            s["writes_eliminated_blocks"],
        )
        # exact == on floats is deliberate: the contract is
        # bit-identity, not closeness.
        assert got == GOLDEN[(trace_name, scheme_name)]
        # classic replays carry no per-volume section
        assert result.volumes == []
        assert "volumes" not in s

    def test_replay_trace_equals_replay_traces_of_one(self):
        spec = paper_traces()["web-vm"]
        trace = generate_trace(spec, seed=SEED, scale=SCALE)

        def build():
            return DEFAULT_REGISTRY.build(
                "POD",
                SchemeConfig(
                    logical_blocks=trace.logical_blocks,
                    memory_bytes=spec.scaled(SCALE).memory_bytes,
                    icache_epoch=max(1.0, 16.0 * SCALE),
                ),
            )

        a = replay_trace(trace, build(), ReplayConfig())
        b = replay_traces([trace], build(), ReplayConfig(),
                          per_volume_metrics=False)
        sa, sb = a.summary(), b.summary()
        assert sa == sb
        assert a.scheme_stats == b.scheme_stats


def _family(copies):
    spec = paper_traces()["web-vm"].scaled(SCALE)
    base = generate_trace(spec, seed=SEED, scale=1.0)
    return spec, clone_tenants(base, copies, divergence=0.15, seed=SEED)


def _shared_run(scheme_name, copies):
    spec, volumes = _family(copies)
    scheme = DEFAULT_REGISTRY.build(
        scheme_name,
        SchemeConfig(
            logical_blocks=sum(t.logical_blocks for t in volumes),
            memory_bytes=spec.memory_bytes * copies,
            icache_epoch=max(1.0, 16.0 * SCALE),
        ),
    )
    return replay_traces(volumes, scheme, ReplayConfig())


def _isolated_capacity(scheme_name, copies):
    spec, volumes = _family(copies)
    total = 0
    for trace in volumes:
        scheme = DEFAULT_REGISTRY.build(
            scheme_name,
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=spec.memory_bytes,
                icache_epoch=max(1.0, 16.0 * SCALE),
            ),
        )
        total += replay_trace(trace, scheme, ReplayConfig()).capacity_blocks
    return total


class TestSharedDedupDomain:
    def test_pod_capacity_sublinear_native_linear(self):
        pod1 = _shared_run("POD", 1).capacity_blocks
        pod3 = _shared_run("POD", 3).capacity_blocks
        native1 = _shared_run("Native", 1).capacity_blocks
        native3 = _shared_run("Native", 3).capacity_blocks
        # Native stores every tenant's blocks privately: linear in K.
        assert native3 == pytest.approx(3 * native1, rel=0.02)
        # POD collapses the shared golden image across tenants: clearly
        # sublinear in K.  (Select-Dedupe only removes *performance-
        # profitable* duplicates, so the collapse is partial -- the
        # contract is sublinearity, not perfect dedupe.)
        assert pod3 / pod1 < 0.8 * (native3 / native1)
        assert pod3 < 0.8 * native3

    def test_shared_domain_beats_isolated_volumes(self):
        """Consolidating K tenants into one dedup domain must never
        store more than K isolated per-tenant deployments."""
        shared = _shared_run("POD", 3).capacity_blocks
        isolated = _isolated_capacity("POD", 3)
        assert shared < isolated

    def test_per_volume_breakdowns(self):
        result = _shared_run("POD", 3)
        assert len(result.volumes) == 3
        ids = [v["volume_id"] for v in result.volumes]
        assert ids == [0, 1, 2]
        for v in result.volumes:
            assert v["requests"] > 0
            assert v["mean_response"] > 0.0
        # tenant 0 writes first at every shared fingerprint, so its
        # dedupes are intra-volume; the clones dedupe against it.
        assert result.volumes[0]["cross_volume_deduped_blocks"] == 0
        clones_cross = sum(
            v["cross_volume_deduped_blocks"] for v in result.volumes[1:]
        )
        assert clones_cross > 0
        # summary carries the same section
        assert result.summary()["volumes"] == result.volumes

    def test_run_multi_driver(self):
        """The runner-level driver: families salted apart, per-volume
        metrics attached, invariants clean."""
        result = runner.run_multi(
            ["web-vm", "mail"], "POD", copies=2, scale=SCALE, seed=SEED,
            replay_config=ReplayConfig(check_invariants=True,
                                       sanitize_every=500),
        )
        assert len(result.volumes) == 4
        names = [v["name"] for v in result.volumes]
        assert names == ["web-vm/t0", "web-vm/t1", "mail/t0", "mail/t1"]
        # family salting: the first tenant of EVERY family is a first
        # writer, so neither t0 shows cross-volume dedupe (no aliasing
        # between unrelated web-vm and mail content).
        assert result.volumes[0]["cross_volume_deduped_blocks"] == 0
        assert result.volumes[2]["cross_volume_deduped_blocks"] == 0
        assert result.volumes[1]["cross_volume_deduped_blocks"] > 0
        assert result.volumes[3]["cross_volume_deduped_blocks"] > 0
        assert result.sanitizer is not None
        assert result.sanitizer.summary()["violations_found"] == 0
