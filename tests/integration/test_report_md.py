"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.experiments import runner
from repro.experiments.report_md import build_report


@pytest.fixture(scope="module")
def report():
    runner.clear_run_cache()
    try:
        return build_report(scale=0.02)
    finally:
        runner.clear_run_cache()


REQUIRED_SECTIONS = [
    "## Table I",
    "## Table II",
    "## Fig. 1",
    "## Fig. 2",
    "## Fig. 3",
    "## Figs. 8 & 9",
    "## Fig. 10",
    "## Fig. 11",
    "## Section IV-D.2",
    "## Ablations",
]


def test_all_sections_present(report):
    for section in REQUIRED_SECTIONS:
        assert section in report, section


def test_paper_numbers_quoted(report):
    # the published headline values appear for side-by-side reading
    for quoted in ("70.7", "21.9", "91.6", "+53.9"):
        assert quoted in report, quoted


def test_markdown_tables_wellformed(report):
    for line in report.splitlines():
        if line.startswith("|") and not line.startswith("|-"):
            assert line.rstrip().endswith("|"), line


def test_deviations_recorded(report):
    assert "Deviations" in report
