"""End-to-end telemetry acceptance tests.

Pins the three contracts the telemetry stack promises:

1. **Observation only.**  Arming any combination of timeline, span
   tracer and SLO policy never changes a single simulated decision or
   timestamp -- summaries are bit-identical to the unarmed run, on the
   single-node and the cluster path.  The armed-but-*empty* SLO policy
   is the sharpest corner (it arms the sampler implicitly), mirroring
   the armed-but-empty fault-plan contract.
2. **Localization.**  A fail-slow disk window and a mid-run cluster
   rebalance are *visible where they happened*: elevated per-window
   latency inside the window, activity annotations on those windows,
   and SLO violation windows carrying the concurrent activity.
3. **Surfacing.**  Reports gain timeline/spans/slo sections exactly
   when armed; the runner memo never leaks a stale sampler; the CLI
   timeline/dash commands round-trip a written report.
"""

import json

import pytest

from repro.experiments import runner
from repro.experiments.runner import telemetry_armed
from repro.faults.plan import FailSlowSpec, FaultPlan
from repro.obs.dash import build_dashboard_html
from repro.obs.openmetrics import to_openmetrics
from repro.obs.report import build_run_report
from repro.obs.slo import SloObjective, SloPolicy
from repro.obs.timeline import TimelineConfig
from repro.cluster.rebalance import RebalanceSpec
from repro.cluster.replay import ClusterConfig
from repro.sim.replay import ReplayConfig

TELEMETRY = ReplayConfig(
    timeline=TimelineConfig(window=1.0),
    spans=True,
    slo=SloPolicy(objectives=(
        SloObjective(name="wr", metric="latency", threshold=0.02,
                     op="write", target=0.9),
    )),
)


def canonical_without_telemetry(report):
    doc = dict(report)
    for key in ("timeline", "spans", "slo"):
        doc.pop(key, None)
    return json.dumps(doc, sort_keys=True)


class TestObservationOnly:
    def test_single_node_summary_bit_identical(self):
        base = runner.run_single("web-vm", "POD", scale=0.02)
        armed = runner.run_single(
            "web-vm", "POD", scale=0.02, replay_config=TELEMETRY
        )
        assert base.summary() == armed.summary()
        assert base.timeline is None and armed.timeline is not None

    def test_cluster_summary_bit_identical(self):
        kw = dict(nodes=2, copies=1, scale=0.02, seed=3)
        base = runner.run_cluster(["web-vm", "mail"], "POD", **kw)
        armed = runner.run_cluster(
            ["web-vm", "mail"], "POD", replay_config=TELEMETRY, **kw
        )
        assert base.summary() == armed.summary()
        assert armed.spans is not None and len(armed.spans.spans) > 0

    def test_armed_but_empty_slo_policy_bit_identity(self):
        """An empty policy arms the sampler (the sharpest off-by-one
        corner) yet the run and the rest of the report stay identical --
        the telemetry sections are the only delta."""
        base = runner.run_single("web-vm", "POD", scale=0.02, seed=11)
        armed = runner.run_single(
            "web-vm", "POD", scale=0.02, seed=11,
            replay_config=ReplayConfig(slo=SloPolicy()),
        )
        assert base.summary() == armed.summary()
        report_base = build_run_report(base, seed=11, clock=lambda: 0.0)
        report_armed = build_run_report(armed, seed=11, clock=lambda: 0.0)
        assert "timeline" not in report_base
        assert "timeline" in report_armed
        assert report_armed["slo"]["objectives"] == []
        assert canonical_without_telemetry(report_base) == \
            canonical_without_telemetry(report_armed)

    def test_runner_memo_is_bypassed_when_armed(self):
        assert not telemetry_armed(ReplayConfig())
        assert telemetry_armed(TELEMETRY)
        assert telemetry_armed(ReplayConfig(slo=SloPolicy()))
        a = runner.run_single(
            "web-vm", "POD", scale=0.02, replay_config=TELEMETRY
        )
        b = runner.run_single(
            "web-vm", "POD", scale=0.02, replay_config=TELEMETRY
        )
        assert a.timeline is not b.timeline  # fresh sampler per run
        assert a.summary() == b.summary()


class TestFailSlowLocalization:
    # placed inside the measured span (warmup traffic is unmetered)
    WINDOW = FailSlowSpec(disk=1, start=60.0, end=75.0, multiplier=12.0)

    def _windows(self):
        plan = FaultPlan(seed=1, fail_slow=(self.WINDOW,))
        result = runner.run_observed(
            "web-vm", "POD", scale=0.05, seed=3,
            replay_config=ReplayConfig(
                faults=plan,
                timeline=TimelineConfig(window=1.0),
                slo=TELEMETRY.slo,
            ),
        )
        return result, result.timeline.as_dict()["windows"]

    def test_fail_slow_window_is_annotated_and_visibly_slow(self):
        result, windows = self._windows()
        inside, outside = [], []
        for w in windows:
            if not w["writes"]:
                continue
            mean = w["write_latency"]["mean"]
            if "fail_slow" in w["activity"]:
                assert self.WINDOW.start - 1.0 <= w["t1"]
                assert w["t0"] <= self.WINDOW.end + 1.0
                inside.append(mean)
            else:
                outside.append(mean)
        assert inside and outside
        # the slowdown is localized: the fail-slow windows are clearly
        # slower than the healthy ones, not smeared over the whole run
        assert max(inside) > 3.0 * (sum(outside) / len(outside))

    def test_slo_violation_window_names_the_fail_slow(self):
        result, _ = self._windows()
        annotated = [
            v
            for obj in result.slo_stats["objectives"]
            for v in obj["violations"]
            if "fail_slow" in v["annotations"]
        ]
        assert annotated, (
            "no SLO violation window carries the fail_slow annotation"
        )


class TestRebalanceLocalization:
    def test_rebalance_windows_annotated_and_on_violations(self):
        cc = ClusterConfig(
            rebalance=RebalanceSpec(
                time=70.0, add_nodes=1, entries_per_batch=32, interval=0.2
            ),
        )
        result = runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=2, copies=1, scale=0.05,
            seed=7, cluster_config=cc,
            replay_config=ReplayConfig(
                timeline=TimelineConfig(window=1.0),
                slo=SloPolicy(objectives=(
                    SloObjective(name="wr", metric="latency",
                                 threshold=0.01, op="write", target=0.95),
                )),
            ),
        )
        windows = result.timeline.as_dict()["windows"]
        flagged = [
            w for w in windows
            if "rebalance" in w["activity"] or "migration" in w["activity"]
        ]
        assert flagged
        assert all(w["t1"] >= 70.0 for w in flagged)
        annotated = [
            v
            for obj in result.slo_stats["objectives"]
            for v in obj["violations"]
            if {"rebalance", "migration"} & set(v["annotations"])
        ]
        assert annotated, (
            "no SLO violation window carries the rebalance annotation"
        )

    def test_cluster_node_window_sums_reconcile(self):
        result = runner.run_cluster(
            ["web-vm", "mail"], "POD", nodes=2, copies=1, scale=0.02,
            seed=3,
            replay_config=ReplayConfig(timeline=TimelineConfig(window=1.0)),
        )
        windows = result.timeline.as_dict()["windows"]
        for node_id in result.metrics.node_ids():
            expected = result.metrics.node_as_dict(node_id)["requests"]
            wsum = sum(
                w["nodes"].get(str(node_id), {}).get("requests", 0)
                for w in windows
            )
            assert wsum == expected


class TestSurfacing:
    def test_report_sections_present_exactly_when_armed(self):
        base = runner.run_single("web-vm", "POD", scale=0.02)
        report = build_run_report(base, clock=lambda: 0.0)
        assert not ({"timeline", "spans", "slo"} & set(report))
        armed = runner.run_single(
            "web-vm", "POD", scale=0.02, replay_config=TELEMETRY
        )
        report = build_run_report(armed, clock=lambda: 0.0)
        assert {"timeline", "spans", "slo"} <= set(report)
        assert report["timeline"]["schema_version"] == 1
        json.dumps(report)  # fully serialisable

    def test_openmetrics_and_dashboard_from_report(self):
        armed = runner.run_single(
            "web-vm", "POD", scale=0.02, replay_config=TELEMETRY
        )
        report = build_run_report(armed, clock=lambda: 0.0)
        text = to_openmetrics(report["timeline"])
        assert text.startswith("# TYPE ") and text.endswith("# EOF\n")
        assert 'scope="run"' in text
        html = build_dashboard_html(report)
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html

    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "r.json"
        tl = tmp_path / "tl.jsonl"
        dash = tmp_path / "d.html"
        om = tmp_path / "m.txt"
        rc = main([
            "run", "--trace", "web-vm", "--scheme", "POD",
            "--scale", "0.02", "--seed", "3", "--timeline", "1.0",
            "--spans", "--timeline-out", str(tl),
            "--report-out", str(report),
        ])
        assert rc == 0
        assert json.loads(report.read_text())["timeline"]["windows"]
        assert main(["timeline", "render", str(tl)]) == 0
        assert main(["timeline", "diff", str(tl), str(tl)]) == 0
        assert main([
            "timeline", "export", str(report), "--out", str(om)
        ]) == 0
        assert om.read_text().endswith("# EOF\n")
        assert main(["dash", str(report), "--out", str(dash)]) == 0
        assert "<svg" in dash.read_text()
        capsys.readouterr()

    def test_dashboard_requires_a_timeline(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_dashboard_html({"kind": "pod-run-report"})
