"""Crash-recovery tests: the NVRAM Map table is sufficient metadata.

The paper stores the Map table in non-volatile RAM "to prevent data
loss in case of a power failure" (Section III-B).  These tests verify
that claim end-to-end: after dropping all DRAM state, every scheme
still resolves every LBA to its last-written content, keeps honouring
the consistency rules, and resumes deduplicating as the hot index
re-warms.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from tests.conftest import ALL_SCHEMES, Oracle


@pytest.mark.parametrize("cls", ALL_SCHEMES, ids=lambda c: c.name)
class TestPowerFailure:
    def test_reads_survive(self, cls, small_config, rng):
        scheme = cls(small_config)
        o = Oracle(scheme)
        for _ in range(150):
            lba = int(rng.integers(0, 800))
            n = int(rng.integers(1, 5))
            o.write(lba, [int(rng.integers(1, 40)) for _ in range(n)])
        scheme.simulate_power_failure()
        o.check()  # every LBA still reads its last-written content

    def test_writes_after_recovery_stay_consistent(self, cls, small_config, rng):
        scheme = cls(small_config)
        o = Oracle(scheme)
        for _ in range(100):
            o.write(int(rng.integers(0, 500)), [int(rng.integers(1, 30))])
        scheme.simulate_power_failure()
        for _ in range(100):
            o.write(int(rng.integers(0, 500)), [int(rng.integers(1, 30))])
        o.check()

    def test_caches_are_cold_after_failure(self, cls, small_config):
        scheme = cls(small_config)
        o = Oracle(scheme)
        o.write(0, [1, 2, 3])
        o.read(0, 3)
        o.read(0, 3)
        scheme.simulate_power_failure()
        planned = o.read(0, 3)
        assert planned.cache_hit_blocks == 0  # read cache was volatile


class TestDedupReWarming:
    def test_hot_index_lost_then_rebuilt(self, small_config):
        scheme = SelectDedupe(small_config)
        o = Oracle(scheme)
        o.write(0, [42])
        assert o.write(100, [42]).eliminated  # warm index detects it
        scheme.simulate_power_failure()
        # The fingerprint is gone from DRAM: the duplicate goes
        # undetected (correct, just not space-optimal)...
        assert not o.write(200, [42]).eliminated
        # ... but the new write re-warms the index, so the next
        # duplicate is eliminated again.
        assert o.write(300, [42]).eliminated
        o.check()

    def test_map_table_referenced_blocks_still_protected(self, small_config):
        scheme = SelectDedupe(small_config)
        o = Oracle(scheme)
        o.write(0, [7])
        o.write(100, [7])  # LBA 100 -> block 0 via the map table
        scheme.simulate_power_failure()
        o.write(0, [8])  # must still redirect, not clobber block 0
        assert scheme.content.read(scheme.map_table.translate(100)) == 7
        o.check()

    def test_pod_icache_reattached(self, small_config):
        pod = POD(small_config)
        pod.simulate_power_failure()
        assert pod.cache._index_table is pod.index_table
        # epochs keep working on the fresh cache
        pod.on_epoch(1.0)

    def test_nvram_entries_preserved(self, small_config):
        scheme = SelectDedupe(small_config)
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(100, [1])
        entries_before = scheme.nvram.entries
        assert entries_before > 0
        scheme.simulate_power_failure()
        assert scheme.nvram.entries == entries_before
