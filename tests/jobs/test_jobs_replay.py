"""End-to-end leased jobs inside the replay simulator.

The headline acceptance scenario lives here: a fail-slow window on a
surviving disk stalls the rebuild worker mid-step, its lease expires,
the recovery sweep returns the job to claimable, and a second worker
re-claims it at the next epoch -- the stalled worker's late commit is
fenced, the rebuild completes, and the oracle step ledger proves no
row batch was lost or double-applied.

Also covered: the background scrubber discovering correlated burst
LSEs before foreground reads do, per-tenant admission throttling, the
per-volume NVRAM-loss stall, and the golden guarantee that the
jobs-off path is bit-identical to a config with no jobs field at all.
"""

import dataclasses
import json

from repro.baselines.base import SchemeConfig
from repro.core.select_dedupe import SelectDedupe
from repro.faults import (
    FailSlowSpec,
    FaultPlan,
    LseBurstSpec,
    MemberFailureSpec,
    NvramLossSpec,
)
from repro.experiments.runner import run_multi
from repro.jobs import AdmissionSpec, JobsConfig, LeasePolicy, ScrubberSpec
from repro.obs.report import build_run_report
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace

_TRACE = generate_trace(WEB_VM, scale=0.02)

# Lease short enough that a 40x fail-slow window expires it mid-step.
JOBS = JobsConfig(
    workers=2,
    lease=LeasePolicy(
        duration=0.3, poll_interval=0.02, sweep_interval=0.1,
        max_retries=4, backoff=0.02,
    ),
)


def _scheme():
    return SelectDedupe(
        SchemeConfig(
            logical_blocks=_TRACE.logical_blocks, memory_bytes=128 * 1024
        )
    )


def _replay(config):
    return replay_trace(_TRACE, _scheme(), config)


class TestStaleLeaseRecovery:
    """The acceptance scenario from the issue, as a pinned test."""

    def test_fail_slow_expires_rebuild_lease_and_recovery_completes(self):
        plan = FaultPlan(
            seed=7,
            member_failure=MemberFailureSpec(
                disk=2, time=5.0, rows_per_batch=64, interval=0.02
            ),
            fail_slow=(FailSlowSpec(disk=1, start=5.0, end=9.0, multiplier=40.0),),
        )
        result = _replay(
            ReplayConfig(
                faults=plan, fault_seed=7, check_invariants=True, jobs=JOBS
            )
        )

        jobs = result.jobs_stats
        assert jobs is not None
        counters = jobs["counters"]
        # the fail-slow window stalled the holder past its lease...
        assert counters["stale_leases_detected"] > 0
        # ...every expired lease was re-claimed...
        assert counters["stale_lease_reclaims"] == counters["stale_leases_detected"]
        # ...and the superseded holder's late commits were fenced
        assert counters["fenced_commits"] > 0

        rebuilds = [j for j in jobs["jobs"] if j["kind"] == "rebuild"]
        assert len(rebuilds) == 1
        rebuild = rebuilds[0]
        assert rebuild["state"] == "done"
        assert rebuild["epoch"] > 1  # re-claimed at a higher epoch
        assert rebuild["stale_reclaims"] > 0
        # every disk row was scanned exactly once
        assert rebuild["steps_committed"] * 64 >= rebuild["detail"]["disk_rows"]
        assert rebuild["detail"]["rows_scanned"] == rebuild["detail"]["disk_rows"]

        # the step ledger chains 0 -> total: nothing lost, nothing doubled
        assert jobs["oracle"]["violations"] == []
        # and the data plane is still correct end to end
        assert result.fault_stats["oracle"]["mismatches"] == 0
        assert result.fault_stats["counters"]["member_failures"] == 1
        assert result.sanitizer is not None
        assert result.sanitizer.violations == []

    def test_without_fail_slow_no_lease_expires(self):
        plan = FaultPlan(
            seed=7,
            member_failure=MemberFailureSpec(
                disk=2, time=5.0, rows_per_batch=64, interval=0.02
            ),
        )
        result = _replay(
            ReplayConfig(
                faults=plan, fault_seed=7, check_invariants=True, jobs=JOBS
            )
        )
        counters = result.jobs_stats["counters"]
        assert counters["stale_leases_detected"] == 0
        assert counters["fenced_commits"] == 0
        assert result.jobs_stats["jobs"][0]["state"] == "done"
        assert result.jobs_stats["oracle"]["violations"] == []

    def test_jobs_counters_mirrored_into_registry(self):
        plan = FaultPlan(
            seed=7,
            member_failure=MemberFailureSpec(
                disk=2, time=5.0, rows_per_batch=64, interval=0.02
            ),
            fail_slow=(FailSlowSpec(disk=1, start=5.0, end=9.0, multiplier=40.0),),
        )
        result = _replay(ReplayConfig(faults=plan, fault_seed=7, jobs=JOBS))
        counters = result.metrics.registry.counters()
        assert counters["jobs.stale_lease_reclaims"] > 0
        assert (
            counters["jobs.steps_committed"]
            == result.jobs_stats["counters"]["steps_committed"]
        )


class TestScrubber:
    def test_scrubber_discovers_burst_lses_before_foreground_reads(self):
        plan = FaultPlan(
            seed=11,
            lse_bursts=LseBurstSpec(
                bursts=2, length=4, track_blocks=64, adjacency=2
            ),
        )
        jobs = dataclasses.replace(
            JOBS, scrub=ScrubberSpec(start=0.5, region_blocks=4096, interval=0.01)
        )
        result = _replay(
            ReplayConfig(faults=plan, fault_seed=11, check_invariants=True,
                         jobs=jobs)
        )
        fault_counters = result.fault_stats["counters"]
        # the correlated bursts injected adjacent-track errors...
        assert fault_counters["lse_burst_blocks"] > 0
        # ...and the scrub pass found latent errors proactively
        assert fault_counters["lse_scrub_discoveries"] > 0

        scrubs = [j for j in result.jobs_stats["jobs"] if j["kind"] == "scrub"]
        assert len(scrubs) == 1
        assert scrubs[0]["state"] == "done"
        assert scrubs[0]["detail"]["blocks_scrubbed"] > 0
        assert result.jobs_stats["oracle"]["violations"] == []
        assert result.fault_stats["oracle"]["mismatches"] == 0

    def test_scrub_pass_is_deterministic(self):
        jobs = dataclasses.replace(
            JOBS, scrub=ScrubberSpec(start=0.5, region_blocks=4096, interval=0.01)
        )
        a = _replay(ReplayConfig(jobs=jobs))
        b = _replay(ReplayConfig(jobs=jobs))
        assert a.jobs_stats == b.jobs_stats


class TestAdmission:
    def test_token_bucket_throttles_and_admits_in_order(self):
        jobs = dataclasses.replace(
            JOBS,
            admission=AdmissionSpec(
                rate_blocks=2048.0, burst_blocks=256.0, maintenance_yield=0.25
            ),
        )
        result = run_multi(
            ["web-vm", "mail"],
            "select-dedupe",
            copies=2,
            scale=0.02,
            seed=3,
            replay_config=ReplayConfig(jobs=jobs),
        )
        adm = result.jobs_stats["admission"]
        assert adm["requests_throttled"] > 0
        assert adm["throttle_delay_total"] > 0.0
        assert adm["tenants"] >= 2  # per-volume buckets, not one global
        # most traffic still flows: throttling delays, never drops
        assert adm["requests_admitted"] > adm["requests_throttled"]

    def test_admission_off_has_no_summary(self):
        result = run_multi(
            ["web-vm", "mail"],
            "select-dedupe",
            copies=2,
            scale=0.02,
            seed=3,
            replay_config=ReplayConfig(jobs=JOBS),
        )
        assert "admission" not in result.jobs_stats


class TestPerVolumeNvramLoss:
    def test_volume_scope_stalls_only_hit_volumes(self):
        plan = FaultPlan(
            seed=5, nvram_loss=(NvramLossSpec(time=6.0, scope="volume"),)
        )
        result = run_multi(
            ["web-vm", "mail"],
            "select-dedupe",
            copies=2,
            scale=0.02,
            seed=3,
            replay_config=ReplayConfig(faults=plan, fault_seed=5),
        )
        counters = result.fault_stats["counters"]
        assert counters["nvram_losses"] == 1
        assert counters["nvram_volume_recoveries"] > 0
        assert result.fault_stats["oracle"]["mismatches"] == 0

    def test_global_scope_is_the_default(self):
        assert NvramLossSpec(time=1.0).scope == "global"
        plan = FaultPlan.from_dict(
            {"seed": 1, "nvram_loss": [{"time": 1.0, "scope": "volume"}]}
        )
        assert plan.nvram_loss[0].scope == "volume"
        assert FaultPlan.from_dict(plan.as_dict()) == plan


class TestGoldenJobsOff:
    """Same seed with jobs disabled => byte-identical run report."""

    def _report(self, config):
        result = _replay(config)
        return build_run_report(
            result,
            seed=0,
            scale=0.02,
            config={"trace": "web-vm"},
            clock=lambda: 0.0,
        )

    def test_jobs_off_report_is_bit_identical(self):
        plain = self._report(ReplayConfig())
        explicit_off = self._report(ReplayConfig(jobs=None))
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            explicit_off, sort_keys=True
        )
        assert "jobs" not in plain

    def test_jobs_off_with_faults_is_bit_identical(self):
        plan = FaultPlan(
            seed=7,
            member_failure=MemberFailureSpec(
                disk=2, time=5.0, rows_per_batch=64, interval=0.02
            ),
        )
        base = ReplayConfig(faults=plan, fault_seed=7, check_invariants=True)
        plain = self._report(base)
        explicit_off = self._report(dataclasses.replace(base, jobs=None))
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            explicit_off, sort_keys=True
        )
        assert "jobs" not in plain
        # the ledger keys stay off the jobs-off oracle summary too
        assert "job_steps" not in plain["faults"]["oracle"]

    def test_jobs_armed_report_is_purely_additive(self):
        armed = self._report(ReplayConfig(jobs=JOBS))
        plain = self._report(ReplayConfig())
        assert "jobs" in armed
        assert armed["jobs"]["counters"]["jobs_submitted"] == 0
        for key, value in plain.items():
            assert json.dumps(armed[key], sort_keys=True) == json.dumps(
                value, sort_keys=True
            ), key
