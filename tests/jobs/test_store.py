"""Deterministic unit tests for the job control plane.

The :class:`~repro.jobs.store.JobStore` lease state machine is also
covered property-style (tests/properties/test_prop_lease.py); these
are the example-based anchors: one explicit walk through every edge of
PENDING -> RUNNING -> DONE plus the sweep edge, the fence counters,
the config round-trip, and the oracle step ledger.
"""

import pytest

from repro.errors import ConfigError, JobError
from repro.faults.oracle import ContentOracle
from repro.jobs import (
    AdmissionSpec,
    JobsConfig,
    JobState,
    JobStore,
    LeasePolicy,
    LeasedJob,
    ScrubberSpec,
    ScrubJob,
    Step,
)
from repro.jobs.store import NO_OWNER

LEASE = LeasePolicy(duration=1.0, poll_interval=0.1, sweep_interval=0.5)


class CountJob(LeasedJob):
    """Toy data-plane job: cursor 0..total, one unit per step."""

    kind = "count"

    def __init__(self, total):
        self._total = total
        self.cursor = 0

    def done(self):
        return self.cursor >= self._total

    def progress(self):
        return self.cursor / self._total

    def total(self):
        return self._total

    def run_step(self, now):
        start = self.cursor

        def commit():
            self.cursor = start + 1

        return Step(now, (start, start + 1), commit)

    def summary(self):
        return {"cursor": self.cursor}


class TestLeaseStateMachine:
    def test_happy_path_claim_commit_complete(self):
        store = JobStore(LEASE)
        job = CountJob(2)
        rec = store.submit("count", job, interval=0.1)
        assert rec.state is JobState.PENDING and rec.owner == NO_OWNER

        assert store.claim(0, 0.0) is rec
        assert rec.state is JobState.RUNNING
        assert rec.owner == 0 and rec.epoch == 1
        assert not rec.last_claim_stale

        for _ in range(2):
            step = job.run_step(0.0)
            assert store.commit(rec, 0, 1, 0.0)
            step.commit()
        assert job.done()
        assert store.complete(rec, 0, 1)
        assert rec.state is JobState.DONE and rec.owner == NO_OWNER
        assert store.all_done()
        assert store.counters["steps_committed"] == 2
        assert store.counters["jobs_completed"] == 1
        assert store.counters["stale_leases_detected"] == 0

    def test_running_job_is_not_claimable(self):
        store = JobStore(LEASE)
        rec = store.submit("count", CountJob(1), interval=0.1)
        assert store.claim(0, 0.0) is rec
        assert store.claim(1, 0.0) is None

    def test_not_before_gates_the_claim(self):
        store = JobStore(LEASE)
        rec = store.submit("count", CountJob(1), interval=0.1, not_before=5.0)
        assert store.claim(0, 4.9) is None
        assert store.claim(0, 5.0) is rec

    def test_sweep_ignores_live_leases(self):
        store = JobStore(LEASE)
        rec = store.submit("count", CountJob(1), interval=0.1)
        store.claim(0, 0.0)
        assert store.sweep(rec.lease_expiry) == []
        assert rec.state is JobState.RUNNING

    def test_sweep_expires_and_reclaim_bumps_epoch(self):
        store = JobStore(LEASE)
        job = CountJob(1)
        rec = store.submit("count", job, interval=0.1)
        store.claim(0, 0.0)
        t = rec.lease_expiry + 0.01
        assert store.sweep(t) == [rec]
        assert rec.state is JobState.PENDING
        assert rec.owner == NO_OWNER and rec.stale
        assert store.counters["stale_leases_detected"] == 1

        assert store.claim(1, t) is rec
        assert rec.epoch == 2 and rec.last_claim_stale
        assert store.counters["stale_lease_reclaims"] == 1

    def test_fence_rejects_superseded_worker(self):
        store = JobStore(LEASE)
        job = CountJob(3)
        rec = store.submit("count", job, interval=0.1)
        store.claim(0, 0.0)
        store.sweep(rec.lease_expiry + 0.01)
        store.claim(1, rec.lease_expiry + 0.01)

        # worker 0's epoch-1 handle is dead on every fenced operation
        assert not store.renew(rec, 0, 1, 2.0)
        assert not store.commit(rec, 0, 1, 2.0)
        assert not store.complete(rec, 0, 1)
        assert store.counters["fenced_renewals"] == 1
        assert store.counters["fenced_commits"] == 1
        assert store.counters["fenced_completions"] == 1
        # nothing was applied on its behalf
        assert rec.steps_committed == 0 and job.cursor == 0
        # the live holder is unaffected
        assert store.commit(rec, 1, 2, 2.0)

    def test_fence_requires_owner_and_epoch_both(self):
        store = JobStore(LEASE)
        rec = store.submit("count", CountJob(1), interval=0.1)
        store.claim(0, 0.0)
        assert not store.commit(rec, 1, 1, 0.0)  # wrong worker, right epoch
        assert not store.commit(rec, 0, 2, 0.0)  # right worker, wrong epoch

    def test_commit_renews_the_lease(self):
        store = JobStore(LEASE)
        rec = store.submit("count", CountJob(2), interval=0.1)
        store.claim(0, 0.0)
        assert store.commit(rec, 0, 1, 0.9)
        assert rec.lease_expiry > LEASE.duration  # pushed past the claim's

    def test_bad_interval_rejected(self):
        store = JobStore(LEASE)
        with pytest.raises(JobError):
            store.submit("count", CountJob(1), interval=0.0)


class TestScrubJob:
    def test_region_arithmetic_covers_the_tail(self):
        reads = []

        def read(pba, nblocks):
            reads.append((pba, nblocks))
            return 0.0

        job = ScrubJob(total_blocks=10, region_blocks=4, read=read)
        assert job.total_regions == 3
        while not job.done():
            job.run_step(0.0).commit()
        assert reads == [(0, 4), (4, 4), (8, 2)]
        assert job.blocks_scrubbed == 10

    def test_regions_cap_bounds_the_pass(self):
        job = ScrubJob(total_blocks=100, region_blocks=10, read=lambda p, n: 0.0,
                       regions_cap=3)
        assert job.total_regions == 3

    def test_rejects_empty_volume(self):
        with pytest.raises(JobError):
            ScrubJob(total_blocks=0, region_blocks=4, read=lambda p, n: 0.0)


class TestStepLedger:
    def test_clean_chain_passes(self):
        oracle = ContentOracle()
        oracle.note_job_total("j", 3)
        for i in range(3):
            oracle.note_job_step("j", i, i + 1)
        oracle.note_job_done("j")
        assert oracle.verify_job_steps() == []
        assert "job_steps" in oracle.summary()

    def test_double_applied_step_is_flagged(self):
        oracle = ContentOracle()
        oracle.note_job_total("j", 2)
        oracle.note_job_step("j", 0, 1)
        oracle.note_job_step("j", 0, 1)  # replayed commit
        problems = oracle.verify_job_steps()
        assert problems and any("j" in p for p in problems)

    def test_lost_step_is_flagged(self):
        oracle = ContentOracle()
        oracle.note_job_total("j", 2)
        oracle.note_job_step("j", 1, 2)  # step 0 never committed
        assert oracle.verify_job_steps()

    def test_done_must_reach_total(self):
        oracle = ContentOracle()
        oracle.note_job_total("j", 2)
        oracle.note_job_step("j", 0, 1)
        oracle.note_job_done("j")
        assert oracle.verify_job_steps()

    def test_no_jobs_means_no_ledger_keys(self):
        # bit-identity guard: jobs-off fault reports keep their bytes
        assert "job_steps" not in ContentOracle().summary()


class TestJobsConfig:
    def test_round_trips_through_dict(self):
        config = JobsConfig(
            workers=3,
            lease=LeasePolicy(duration=0.3, poll_interval=0.02,
                              sweep_interval=0.1, max_retries=2, backoff=0.01),
            scrub=ScrubberSpec(start=1.0, region_blocks=4096, interval=0.05,
                               regions=20),
            admission=AdmissionSpec(rate_blocks=1e5, burst_blocks=1e4,
                                    maintenance_yield=0.5),
        )
        assert JobsConfig.from_dict(config.as_dict()) == config

    def test_defaults_round_trip(self):
        assert JobsConfig.from_dict(JobsConfig().as_dict()) == JobsConfig()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            JobsConfig.from_dict({"workerz": 2})

    @pytest.mark.parametrize(
        "bad",
        [
            {"workers": 0},
            {"lease": {"duration": 0.0}},
            {"lease": {"poll_interval": -1}},
            {"lease": {"sweep_interval": 0}},
            {"lease": {"backoff": 0}},
            {"lease": {"max_retries": -1}},
            {"scrub": {"region_blocks": 0}},
            {"scrub": {"interval": 0}},
            {"scrub": {"regions": 0}},
            {"scrub": {"start": -1.0}},
            {"admission": {"rate_blocks": 0}},
            {"admission": {"burst_blocks": -1}},
            {"admission": {"maintenance_yield": -0.1}},
            {"lease": {"durationn": 1.0}},
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            JobsConfig.from_dict(bad)

    def test_example_config_loads(self, tmp_path):
        import json
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] / "examples" / "jobs.json"
        config = JobsConfig.load(str(example))
        assert config.workers >= 2
        assert config.scrub is not None and config.admission is not None
        # and the shipped file is exactly its own canonical form
        assert JobsConfig.from_dict(json.loads(example.read_text())) == config
