"""Public-API surface tests: the documented entry points resolve."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_scheme_classes_exported(self):
        from repro import POD, FullDedupe, IDedup, IODedup, Native, SelectDedupe

        for cls in (POD, SelectDedupe, Native, FullDedupe, IDedup, IODedup):
            assert hasattr(cls, "process")
            assert isinstance(cls.name, str)

    def test_trace_presets_exported(self):
        from repro import HOMES, MAIL, WEB_VM

        assert {WEB_VM.name, HOMES.name, MAIL.name} == {"web-vm", "homes", "mail"}


class TestLazySimExports:
    def test_simulator_lazy_attr(self):
        sim_pkg = importlib.import_module("repro.sim")
        assert sim_pkg.Simulator is not None
        assert sim_pkg.replay_trace is not None
        assert sim_pkg.ReplayConfig is not None

    def test_unknown_attr_raises(self):
        sim_pkg = importlib.import_module("repro.sim")
        with pytest.raises(AttributeError):
            sim_pkg.NoSuchThing


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.baselines",
            "repro.sim",
            "repro.storage",
            "repro.cache",
            "repro.dedup",
            "repro.traces",
            "repro.metrics",
            "repro.experiments",
            "repro.experiments.parallel",
            "repro.experiments.export",
            "repro.experiments.report_md",
            "repro.cli",
        ],
    )
    def test_importable(self, module):
        assert importlib.import_module(module) is not None

    def test_import_order_independent(self):
        """Importing the leaf packages in the awkward order must not
        trip the (documented) lazy-import cycle breakers."""
        import subprocess
        import sys

        code = "import repro.baselines; import repro.sim; import repro.core; print('ok')"
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0 and "ok" in out.stdout, out.stderr
