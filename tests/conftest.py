"""Shared fixtures for the POD reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import SchemeConfig
from repro.baselines.full_dedupe import FullDedupe
from repro.baselines.idedup import IDedup
from repro.baselines.iodedup import IODedup
from repro.baselines.native import Native
from repro.baselines.postprocess import PostProcessDedupe
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from repro.sim.request import IORequest

#: All scheme classes, for parametrised tests.
ALL_SCHEMES = [Native, FullDedupe, IDedup, SelectDedupe, POD, IODedup, PostProcessDedupe]

#: Schemes that actually deduplicate on the write path.
DEDUP_SCHEMES = [FullDedupe, IDedup, SelectDedupe, POD]


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_config():
    """A small but fully functional scheme configuration."""
    return SchemeConfig(
        logical_blocks=4096,
        memory_bytes=64 * 1024,
        index_fraction=0.5,
    )


@pytest.fixture(params=ALL_SCHEMES, ids=lambda cls: cls.name)
def any_scheme(request, small_config):
    """One instance of every scheme."""
    return request.param(small_config)


@pytest.fixture(params=DEDUP_SCHEMES, ids=lambda cls: cls.name)
def dedup_scheme(request, small_config):
    """One instance of every write-deduplicating scheme."""
    return request.param(small_config)


def write(lba, fps, time=0.0):
    """Shorthand write-request builder."""
    return IORequest.write(time=time, lba=lba, fingerprints=list(fps))


def read(lba, nblocks, time=0.0):
    """Shorthand read-request builder."""
    return IORequest.read(time=time, lba=lba, nblocks=nblocks)


class Oracle:
    """Data-integrity oracle: drives a scheme request-by-request while
    remembering the last content written to every LBA, then asserts
    that the scheme's map/content state returns exactly that."""

    def __init__(self, scheme):
        self.scheme = scheme
        self.expected = {}
        self.now = 0.0

    def write(self, lba, fps):
        self.now += 1e-3
        req = IORequest.write(time=self.now, lba=lba, fingerprints=list(fps))
        planned = self.scheme.process(req, self.now)
        for i, fp in enumerate(fps):
            self.expected[lba + i] = fp
        return planned

    def read(self, lba, nblocks):
        self.now += 1e-3
        req = IORequest.read(time=self.now, lba=lba, nblocks=nblocks)
        return self.scheme.process(req, self.now)

    def check(self):
        problems = self.scheme.check_integrity(self.expected)
        assert problems == [], problems
