"""Integration tests: every fault class injected into real replays.

Each test arms one fault class (or a combination) against a scaled-down
web-vm replay and asserts three things: the fault actually fired (the
counters prove it), the system paid a plausible cost (response times,
recovery histograms), and the content oracle stayed clean -- no
injected fault ever turns into silently wrong data.
"""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.pod import POD
from repro.core.select_dedupe import SelectDedupe
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan
from repro.obs.events import EVENT_FIELDS, FAULT_EVENT_TYPES, TraceLevel
from repro.obs.trace import TraceRecorder
from repro.sim.replay import ReplayConfig, replay_trace
from repro.storage.raid import RaidLevel
from repro.storage.scheduler import SchedulingPolicy
from repro.traces.synthetic import WEB_VM, generate_trace

_TRACE = generate_trace(WEB_VM, scale=0.02)


def run(plan=None, cls=SelectDedupe, memory_kib=128, recorder=None, **cfg):
    scheme = cls(SchemeConfig(logical_blocks=_TRACE.logical_blocks,
                              memory_bytes=memory_kib * 1024))
    config = ReplayConfig(faults=plan, check_invariants=True, **cfg)
    return replay_trace(_TRACE, scheme, config, recorder=recorder)


@pytest.fixture(scope="module")
def healthy():
    return run(None)


# ----------------------------------------------------------------------
# zero-overhead off path + determinism
# ----------------------------------------------------------------------


class TestOffPathAndDeterminism:
    def test_empty_plan_is_bit_identical_to_no_plan(self, healthy):
        """Arming an *empty* plan (injector + oracle shadowing every
        request) must not change a single simulated completion time."""
        shadowed = run(FaultPlan())
        assert shadowed.metrics.as_dict() == healthy.metrics.as_dict()
        assert shadowed.fault_stats is not None
        assert shadowed.fault_stats["oracle"]["mismatches"] == 0
        assert healthy.fault_stats is None

    def test_same_seed_reproduces_exactly(self):
        plan = FaultPlan.from_dict({
            "seed": 13,
            "latent_sector_errors": {"random_count": 10},
            "nvram_loss": [{"time": 9.0, "lose_journal_tail": 5}],
            "index_corruption": [{"time": 6.0, "entries": 2}],
        })
        a, b = run(plan), run(plan)
        assert a.fault_stats == b.fault_stats
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_fault_seed_overrides_plan_seed(self):
        plan = FaultPlan.from_dict(
            {"seed": 1, "latent_sector_errors": {"random_count": 10}}
        )
        r = run(plan, fault_seed=77)
        assert r.fault_stats["seed"] == 77

    def test_fault_seed_without_plan_rejected(self):
        with pytest.raises(ConfigError, match="fault_seed"):
            run(None, fault_seed=3)

    def test_event_driven_schedulers_rejected(self):
        with pytest.raises(ConfigError, match="analytic"):
            run(FaultPlan.from_dict(
                {"latent_sector_errors": {"random_count": 1}}
            ), scheduler=SchedulingPolicy("fcfs"))

    def test_seed_changes_lse_placement(self):
        scheme = SelectDedupe(SchemeConfig(
            logical_blocks=_TRACE.logical_blocks, memory_bytes=128 * 1024))
        plan = FaultPlan.from_dict(
            {"latent_sector_errors": {"random_count": 20}}
        )
        a = FaultInjector(plan.with_seed(1))._resolve_lse_pbas(scheme)
        b = FaultInjector(plan.with_seed(1))._resolve_lse_pbas(scheme)
        c = FaultInjector(plan.with_seed(2))._resolve_lse_pbas(scheme)
        assert a == b
        assert a != c


# ----------------------------------------------------------------------
# latent sector errors
# ----------------------------------------------------------------------


class TestLatentSectorErrors:
    def test_reconstruction_on_healthy_raid5(self, healthy):
        plan = FaultPlan.from_dict(
            {"seed": 11, "latent_sector_errors": {"random_count": 40}}
        )
        r = run(plan)
        c = r.fault_stats["counters"]
        assert c["lse_injected"] == 40
        assert c.get("lse_reconstructions", 0) > 0
        assert c.get("lse_unrecoverable", 0) == 0
        # every injected error is recovered, healed, or still latent
        assert (c.get("lse_sectors_recovered", 0)
                + c.get("lse_healed_by_write", 0)
                + c.get("lse_still_latent", 0)) == c["lse_injected"]
        # reconstruction + retries cost real disk time
        assert r.metrics.as_dict()["makespan"] >= healthy.metrics.as_dict()["makespan"]
        assert r.fault_stats["recovery_latency"]["count"] >= c["lse_reconstructions"]
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_unrecoverable_without_parity(self):
        plan = FaultPlan.from_dict(
            {"seed": 11, "latent_sector_errors": {"random_count": 40}}
        )
        r = run(plan, raid_level=RaidLevel.RAID0, ndisks=4)
        c = r.fault_stats["counters"]
        assert c.get("lse_unrecoverable", 0) > 0
        assert c.get("lse_reconstructions", 0) == 0
        # the oracle still vouches for content: the *data* was never
        # wrong, the reads were just slow and unrepaired
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_pinned_pba_outside_volume_rejected(self):
        from repro.errors import FaultError

        plan = FaultPlan.from_dict(
            {"latent_sector_errors": {"pbas": [10 ** 9]}}
        )
        with pytest.raises(FaultError, match="outside the volume"):
            run(plan)

    def test_retry_policy_charged(self):
        base = {"seed": 11, "latent_sector_errors": {"random_count": 40}}
        none = run(FaultPlan.from_dict({**base, "lse_retry":
                                        {"max_retries": 0}}))
        many = run(FaultPlan.from_dict({**base, "lse_retry":
                                        {"max_retries": 3, "backoff": 5e-3}}))
        assert none.fault_stats["counters"].get("lse_retries", 0) == 0
        assert many.fault_stats["counters"]["lse_retries"] > 0
        assert (many.metrics.as_dict()["mean_response"]
                > none.metrics.as_dict()["mean_response"])


# ----------------------------------------------------------------------
# fail-slow disks
# ----------------------------------------------------------------------


class TestFailSlow:
    def test_window_slows_the_replay(self, healthy):
        plan = FaultPlan.from_dict({
            "fail_slow": [{"disk": d, "start": 0.0, "end": 1e9,
                           "multiplier": 4.0} for d in range(4)],
        })
        r = run(plan)
        assert r.fault_stats["counters"]["fail_slow_windows"] == 4
        assert (r.metrics.as_dict()["mean_response"]
                > 1.5 * healthy.metrics.as_dict()["mean_response"])
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_window_outside_run_is_free(self, healthy):
        plan = FaultPlan.from_dict({
            "fail_slow": [{"disk": 0, "start": 1e6, "end": 2e6,
                           "multiplier": 8.0}],
        })
        r = run(plan)
        assert r.metrics.as_dict() == healthy.metrics.as_dict()

    def test_unknown_disk_rejected(self):
        from repro.errors import FaultError

        plan = FaultPlan.from_dict(
            {"fail_slow": [{"disk": 9, "start": 0.0, "end": 1.0}]}
        )
        with pytest.raises(FaultError, match="unknown disk"):
            run(plan)


# ----------------------------------------------------------------------
# member failure + rebuild
# ----------------------------------------------------------------------


class TestMemberFailure:
    PLAN = {
        "member_failure": {"disk": 2, "time": 5.0, "rows_per_batch": 256,
                           "interval": 0.01, "capacity_aware": True},
    }

    def test_fail_rebuild_heal_cycle(self, healthy):
        r = run(FaultPlan.from_dict(self.PLAN))
        c = r.fault_stats["counters"]
        assert c["member_failures"] == 1
        assert c["rebuilds_completed"] == 1
        rb = r.fault_stats["rebuild"]
        assert rb["done"] and rb["progress"] == 1.0
        # capacity-aware: a mostly-empty volume skips most rows
        assert rb["rows_skipped"] > rb["rows_rebuilt"]
        assert rb["rows_scanned"] == rb["rows_skipped"] + rb["rows_rebuilt"]
        # the degraded window + rebuild load cost something
        assert (r.metrics.as_dict()["mean_response"]
                >= healthy.metrics.as_dict()["mean_response"])
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_requires_raid5(self):
        with pytest.raises(ConfigError, match="RAID-5"):
            run(FaultPlan.from_dict(self.PLAN),
                raid_level=RaidLevel.RAID0, ndisks=4)

    def test_rejected_on_already_degraded_array(self):
        with pytest.raises(ConfigError, match="already runs degraded"):
            run(FaultPlan.from_dict(self.PLAN), failed_disk=1)


# ----------------------------------------------------------------------
# NVRAM power loss
# ----------------------------------------------------------------------


class TestNvramLoss:
    def test_torn_tail_recovers_cleanly(self):
        plan = FaultPlan.from_dict({
            "nvram_loss": [{"time": 10.0, "tear_journal_tail": 3}],
        })
        r = run(plan)
        c = r.fault_stats["counters"]
        assert c["nvram_losses"] == 1
        assert c["torn_tails_detected"] == 1
        assert c["journal_records_replayed"] > 0
        # journaling visible in scheme stats
        assert r.scheme_stats["journal_records_appended"] > 0
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_lost_tail_quarantines_and_heals(self):
        plan = FaultPlan.from_dict({
            "nvram_loss": [{"time": 8.0, "lose_journal_tail": 60,
                            "tear_journal_tail": 0}],
        })
        r = run(plan)
        c = r.fault_stats["counters"]
        assert c.get("lbas_quarantined", 0) > 0
        oracle = r.fault_stats["oracle"]
        # mismatches outside the declared at-risk set are bugs
        assert oracle["mismatches"] == 0
        # later writes heal quarantined LBAs back to full service
        stats = r.scheme_stats
        assert stats["quarantine_heals"] + stats["quarantined_lbas"] >= c["lbas_quarantined"]

    def test_recovery_stall_charges_response_time(self):
        base = {"nvram_loss": [{"time": 10.0, "tear_journal_tail": 0,
                                "lose_journal_tail": 0,
                                "base_recovery_cost": 0.0,
                                "replay_cost_per_record": 0.0}]}
        slow = {"nvram_loss": [{"time": 10.0, "tear_journal_tail": 0,
                                "lose_journal_tail": 0,
                                "base_recovery_cost": 2.0,
                                "replay_cost_per_record": 0.0}]}
        free = run(FaultPlan.from_dict(base))
        paid = run(FaultPlan.from_dict(slow))
        assert (paid.metrics.as_dict()["mean_response"]
                > free.metrics.as_dict()["mean_response"])

    def test_repeated_losses_survive(self):
        plan = FaultPlan.from_dict({
            "nvram_loss": [
                {"time": 6.0, "lose_journal_tail": 10},
                {"time": 14.0, "tear_journal_tail": 4},
            ],
        })
        r = run(plan)
        assert r.fault_stats["counters"]["nvram_losses"] == 2
        assert r.fault_stats["oracle"]["mismatches"] == 0


# ----------------------------------------------------------------------
# index corruption
# ----------------------------------------------------------------------


class TestIndexCorruption:
    def test_bit_flips_never_corrupt_data(self):
        plan = FaultPlan.from_dict({
            "seed": 5,
            "index_corruption": [{"time": 6.0, "entries": 3},
                                 {"time": 12.0, "entries": 3, "bit": 7}],
        })
        r = run(plan, memory_kib=1024)
        c = r.fault_stats["counters"]
        assert c.get("index_corruptions", 0) > 0
        assert r.fault_stats["oracle"]["mismatches"] == 0

    def test_skip_counted_when_index_empty(self):
        from repro.baselines.native import Native

        plan = FaultPlan.from_dict({
            "index_corruption": [{"time": 6.0, "entries": 1}],
        })
        r = run(plan, cls=Native)
        assert r.fault_stats["counters"]["index_corruptions_skipped"] == 1


# ----------------------------------------------------------------------
# everything at once + observability
# ----------------------------------------------------------------------

EVERYTHING = {
    "seed": 7,
    "latent_sector_errors": {"random_count": 6},
    "fail_slow": [{"disk": 0, "start": 0.0, "end": 50.0, "multiplier": 3.0}],
    "member_failure": {"disk": 2, "time": 20.0, "rows_per_batch": 256,
                       "interval": 0.01, "capacity_aware": True},
    "nvram_loss": [{"time": 10.0, "lose_journal_tail": 8}],
    "index_corruption": [{"time": 6.0, "entries": 2}],
}


class TestCombined:
    @pytest.mark.parametrize("cls", [SelectDedupe, POD], ids=lambda c: c.name)
    def test_all_five_classes_with_oracle_and_invariants(self, cls):
        r = run(FaultPlan.from_dict(EVERYTHING), cls=cls, memory_kib=1024)
        c = r.fault_stats["counters"]
        assert c["lse_injected"] == 6
        assert c["fail_slow_windows"] == 1
        assert c["member_failures"] == 1
        assert c["nvram_losses"] == 1
        assert c.get("index_corruptions", 0) + c.get(
            "index_corruptions_skipped", 0) > 0
        assert r.fault_stats["oracle"]["mismatches"] == 0
        assert r.sanitizer is not None
        assert r.sanitizer.violations == []

    def test_fault_events_respect_field_contract(self):
        recorder = TraceRecorder(level=TraceLevel.SUMMARY)
        run(FaultPlan.from_dict(EVERYTHING), memory_kib=1024,
            recorder=recorder)
        fault_events = [e for e in recorder.events
                        if e.etype in FAULT_EVENT_TYPES]
        assert fault_events, "a full plan must emit fault events"
        kinds = {e.etype for e in fault_events}
        assert kinds == FAULT_EVENT_TYPES  # both inject and recover seen
        for event in fault_events:
            assert set(event.fields) == set(EVENT_FIELDS[event.etype])

    def test_registry_carries_fault_metrics(self):
        r = run(FaultPlan.from_dict(EVERYTHING), memory_kib=1024)
        registry = r.metrics.registry
        counters = registry.counters()
        assert counters.get("faults.lse_injected") == 6
        assert counters.get("faults.member_failures") == 1
        hists = registry.histograms()
        assert "faults.recovery_latency" in hists
        assert "faults.blast_radius" in hists
        assert hists["faults.recovery_latency"].count > 0

    def test_report_and_rendering_include_faults(self):
        from repro.obs import build_run_report, render_run_report

        r = run(FaultPlan.from_dict(EVERYTHING), memory_kib=1024)
        report = build_run_report(r, seed=7, scale=0.02, clock=lambda: 0.0)
        assert report["faults"]["counters"]["nvram_losses"] == 1
        text = render_run_report(report)
        assert "fault injection" in text
        assert "oracle.mismatches" in text

    def test_healthy_report_has_empty_faults_section(self, healthy):
        from repro.obs import build_run_report

        report = build_run_report(healthy, clock=lambda: 0.0)
        assert report["faults"] == {}
