"""Golden fault determinism: same plan + seed => bit-identical report.

The whole point of a *deterministic* fault model is that a failure run
can be replayed exactly -- for debugging, for regression pinning, for
CI.  This test runs the shipped example plan (``examples/faults.json``,
the same file the CI fault-smoke step uses) twice and demands the two
run reports serialise to the same bytes.
"""

import json
from pathlib import Path

from repro.baselines.base import SchemeConfig
from repro.core.select_dedupe import SelectDedupe
from repro.faults import FaultPlan
from repro.obs.report import build_run_report
from repro.sim.replay import ReplayConfig, replay_trace
from repro.traces.synthetic import WEB_VM, generate_trace

EXAMPLE_PLAN = Path(__file__).resolve().parents[2] / "examples" / "faults.json"

_TRACE = generate_trace(WEB_VM, scale=0.02)


def run_report(fault_seed=7):
    plan = FaultPlan.load(str(EXAMPLE_PLAN))
    scheme = SelectDedupe(
        SchemeConfig(
            logical_blocks=_TRACE.logical_blocks, memory_bytes=128 * 1024
        )
    )
    result = replay_trace(
        _TRACE,
        scheme,
        ReplayConfig(faults=plan, fault_seed=fault_seed, check_invariants=True),
    )
    report = build_run_report(
        result,
        seed=0,
        scale=0.02,
        config={"faults": str(EXAMPLE_PLAN), "fault_seed": fault_seed},
        clock=lambda: 0.0,
    )
    return result, report


def canonical(report):
    return json.dumps(report, sort_keys=True)


class TestExamplePlan:
    def test_example_plan_arms_all_five_fault_classes(self):
        plan = FaultPlan.load(str(EXAMPLE_PLAN))
        assert not plan.is_empty()
        assert plan.latent_sector_errors is not None
        assert plan.fail_slow
        assert plan.member_failure is not None
        assert plan.nvram_loss
        assert plan.index_corruption

    def test_example_plan_round_trips_through_json(self):
        plan = FaultPlan.load(str(EXAMPLE_PLAN))
        assert FaultPlan.from_dict(plan.as_dict()) == plan


class TestGoldenDeterminism:
    def test_same_fault_seed_yields_bit_identical_report(self):
        result_a, report_a = run_report(fault_seed=7)
        result_b, report_b = run_report(fault_seed=7)
        assert canonical(report_a) == canonical(report_b)
        # the faults actually fired (this is not vacuous determinism)
        faults = report_a["faults"]
        assert faults["counters"]["lse_injected"] > 0
        assert faults["counters"]["member_failures"] == 1
        assert faults["counters"]["nvram_losses"] == 1
        assert faults["oracle"]["mismatches"] == 0
        assert result_a.sanitizer is not None
        assert result_a.sanitizer.violations == []

    def test_seed_override_reaches_the_report(self):
        _, report = run_report(fault_seed=11)
        assert report["faults"]["seed"] == 11

    def test_report_is_json_serialisable(self):
        _, report = run_report(fault_seed=7)
        json.loads(canonical(report))
