"""Unit tests for the end-to-end content oracle."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.select_dedupe import SelectDedupe
from repro.errors import FaultError
from repro.faults import ContentOracle
from repro.sim.request import IORequest


def make_scheme():
    return SelectDedupe(SchemeConfig(logical_blocks=512, memory_bytes=64 * 1024))


def drive(scheme, oracle, writes):
    now = 0.0
    for lba, fps in writes:
        now += 1e-3
        req = IORequest.write(time=now, lba=lba, fingerprints=list(fps))
        scheme.process(req, now)
        oracle.note_write(req)
    return now


class TestCleanRuns:
    def test_reads_of_written_blocks_verify(self):
        scheme, oracle = make_scheme(), ContentOracle()
        now = drive(scheme, oracle, [(0, [1, 2, 3]), (10, [1, 2, 3]), (0, [9, 9])])
        req = IORequest.read(time=now + 1e-3, lba=0, nblocks=3)
        scheme.process(req, now + 1e-3)
        oracle.check_read(req, scheme)
        assert oracle.mismatches == 0
        assert oracle.blocks_checked == 3
        oracle.assert_clean(scheme)

    def test_never_written_blocks_are_skipped(self):
        scheme, oracle = make_scheme(), ContentOracle()
        req = IORequest.read(time=1.0, lba=100, nblocks=4)
        oracle.check_read(req, scheme)
        assert oracle.blocks_checked == 0 and oracle.mismatches == 0


class TestMismatchDetection:
    def test_corrupted_mapping_is_caught_inline(self):
        scheme, oracle = make_scheme(), ContentOracle()
        now = drive(scheme, oracle, [(0, [1, 2, 3]), (50, [7, 8])])
        # corrupt the live state behind the oracle's back
        scheme.map_table._map[50] = scheme.regions.home_of(51)
        scheme.map_table._refs[scheme.regions.home_of(51)] = 1
        req = IORequest.read(time=now + 1e-3, lba=50, nblocks=1)
        oracle.check_read(req, scheme)
        assert oracle.mismatches == 1
        with pytest.raises(FaultError, match="content oracle"):
            oracle.assert_clean(scheme)

    def test_verify_all_sweeps_final_state(self):
        scheme, oracle = make_scheme(), ContentOracle()
        drive(scheme, oracle, [(0, [1, 2, 3])])
        scheme.content.write(scheme.map_table.translate(1), 424242)
        problems = oracle.verify_all(scheme)
        assert len(problems) == 1 and "LBA 1" in problems[0]


class TestAtRisk:
    def test_at_risk_reads_counted_not_failed(self):
        scheme, oracle = make_scheme(), ContentOracle()
        now = drive(scheme, oracle, [(0, [1, 2])])
        oracle.mark_at_risk([0])
        req = IORequest.read(time=now + 1e-3, lba=0, nblocks=2)
        oracle.check_read(req, scheme)
        assert oracle.at_risk_reads == 1  # LBA 0 flagged, LBA 1 checked
        assert oracle.blocks_checked == 1
        oracle.assert_clean(scheme)

    def test_write_heals_at_risk(self):
        scheme, oracle = make_scheme(), ContentOracle()
        drive(scheme, oracle, [(0, [1, 2])])
        oracle.mark_at_risk([0, 1])
        drive(scheme, oracle, [(0, [5, 6])])
        assert oracle.at_risk == set()

    def test_at_risk_excluded_from_final_sweep(self):
        scheme, oracle = make_scheme(), ContentOracle()
        drive(scheme, oracle, [(0, [1])])
        scheme.content.write(scheme.map_table.translate(0), 31337)
        oracle.mark_at_risk([0])
        assert oracle.verify_all(scheme) == []
        oracle.assert_clean(scheme)

    def test_summary_shape(self):
        oracle = ContentOracle()
        s = oracle.summary()
        assert set(s) == {"writes_noted", "reads_checked", "blocks_checked",
                          "at_risk_reads", "at_risk_lbas", "mismatches"}
