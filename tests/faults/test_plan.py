"""Unit tests for fault-plan validation and (de)serialisation."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    FailSlowSpec,
    FaultPlan,
    IndexCorruptionSpec,
    LatentSectorErrorSpec,
    MemberFailureSpec,
    NvramLossSpec,
    RetryPolicy,
)

FULL = {
    "seed": 11,
    "latent_sector_errors": {"pbas": [1, 2, 3], "random_count": 4},
    "lse_retry": {"max_retries": 2, "backoff": 0.001},
    "fail_slow": [{"disk": 0, "start": 1.0, "end": 2.0, "multiplier": 3.0}],
    "member_failure": {"disk": 1, "time": 5.0, "rows_per_batch": 8,
                       "interval": 0.1, "capacity_aware": True},
    "nvram_loss": [{"time": 7.0, "torn_entries": 4, "lose_journal_tail": 1,
                    "tear_journal_tail": 2}],
    "index_corruption": [{"time": 9.0, "entries": 2, "bit": 17}],
}


class TestValidation:
    def test_defaults_are_empty(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert not FaultPlan(fail_slow=(FailSlowSpec(0, 0.0, 1.0),)).is_empty()

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(seed=-1)

    @pytest.mark.parametrize("bad", [
        lambda: RetryPolicy(max_retries=-1),
        lambda: RetryPolicy(backoff=-0.1),
        lambda: LatentSectorErrorSpec(pbas=(-3,)),
        lambda: LatentSectorErrorSpec(random_count=-1),
        lambda: FailSlowSpec(disk=-1, start=0.0, end=1.0),
        lambda: FailSlowSpec(disk=0, start=2.0, end=1.0),
        lambda: FailSlowSpec(disk=0, start=0.0, end=1.0, multiplier=0.5),
        lambda: MemberFailureSpec(disk=0, time=-1.0),
        lambda: MemberFailureSpec(disk=0, time=0.0, rows_per_batch=0),
        lambda: MemberFailureSpec(disk=0, time=0.0, interval=0.0),
        lambda: NvramLossSpec(time=-1.0),
        lambda: NvramLossSpec(time=0.0, tear_journal_tail=-1),
        lambda: NvramLossSpec(time=0.0, base_recovery_cost=-1.0),
        lambda: IndexCorruptionSpec(time=0.0, entries=0),
        lambda: IndexCorruptionSpec(time=0.0, bit=63),
        lambda: IndexCorruptionSpec(time=0.0, bit=-1),
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultError):
            bad()

    def test_with_seed_replaces_only_seed(self):
        plan = FaultPlan.from_dict(FULL)
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.member_failure == plan.member_failure
        assert reseeded.fail_slow == plan.fail_slow


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan.from_dict(FULL)
        again = FaultPlan.from_dict(plan.as_dict())
        assert again == plan

    def test_as_dict_is_json_ready(self):
        json.dumps(FaultPlan.from_dict(FULL).as_dict())

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultError, match="unknown fault plan key"):
            FaultPlan.from_dict({"surprise": 1})

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(FaultError, match="FailSlowSpec"):
            FaultPlan.from_dict({"fail_slow": [{"disk": 0, "start": 0.0,
                                                "end": 1.0, "wat": 2}]})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FULL))
        assert FaultPlan.load(str(path)) == FaultPlan.from_dict(FULL)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json{")
        with pytest.raises(FaultError):
            FaultPlan.load(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(FaultError, match="JSON object"):
            FaultPlan.load(str(path))
        with pytest.raises(FaultError):
            FaultPlan.load(str(tmp_path / "missing.json"))


class TestHashability:
    def test_plan_is_hashable_for_config_memoisation(self):
        """Plans ride inside the frozen, memo-cache-keyed ReplayConfig."""
        from repro.sim.replay import ReplayConfig

        a = FaultPlan.from_dict(FULL)
        b = FaultPlan.from_dict(FULL)
        assert hash(a) == hash(b) and a == b
        assert hash(ReplayConfig(faults=a)) == hash(ReplayConfig(faults=b))
        assert hash(a) != hash(a.with_seed(99)) or a != a.with_seed(99)
