"""Behavioural tests for Select-Dedupe's write path."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.categorize import Category
from repro.core.select_dedupe import SelectDedupe
from tests.conftest import Oracle


@pytest.fixture
def scheme():
    return SelectDedupe(
        SchemeConfig(logical_blocks=4096, memory_bytes=256 * 1024, index_fraction=0.5)
    )


class TestFullyRedundantWrites:
    def test_small_redundant_write_eliminated(self, scheme):
        o = Oracle(scheme)
        o.write(0, [111])
        planned = o.write(100, [111])  # same content elsewhere
        assert planned.eliminated is True
        assert planned.volume_ops == []
        assert scheme.write_requests_removed == 1
        o.check()

    def test_same_location_rewrite_eliminated(self, scheme):
        o = Oracle(scheme)
        o.write(0, [111, 112])
        planned = o.write(0, [111, 112])
        assert planned.eliminated is True
        assert len(scheme.map_table) == 0  # same-location: no map entry
        o.check()

    def test_sequential_duplicate_run_eliminated(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1, 2, 3, 4])
        planned = o.write(500, [1, 2, 3, 4])
        assert planned.eliminated
        assert scheme.category_counts[Category.FULLY_REDUNDANT] == 1
        # LBAs 500..503 must now resolve to the donor blocks 0..3.
        assert scheme.map_table.translate_many(range(500, 504)) == [0, 1, 2, 3]
        o.check()

    def test_eliminated_write_pays_only_fingerprint_delay(self, scheme):
        o = Oracle(scheme)
        o.write(0, [9])
        planned = o.write(50, [9])
        assert planned.delay == pytest.approx(scheme.config.fingerprint_delay)


class TestScatteredPartialWrites:
    def test_scattered_partial_bypassed(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(2, [2])
        # 4-block write with two isolated duplicates -> category 2.
        planned = o.write(100, [1, 50, 2, 51])
        assert not planned.eliminated
        assert scheme.category_counts[Category.SCATTERED_PARTIAL] == 1
        # Everything written in place: one contiguous extent, no map
        # entries -- reads stay sequential.
        data_ops = [op for op in planned.volume_ops]
        assert len(data_ops) == 1 and data_ops[0].nblocks == 4
        assert len(scheme.map_table) == 0
        o.check()


class TestSequentialPartialWrites:
    def test_category3_dedupes_run_writes_rest(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1, 2, 3, 4])
        planned = o.write(200, [1, 2, 3, 90, 91])
        assert scheme.category_counts[Category.SEQUENTIAL_PARTIAL] == 1
        written = sum(op.nblocks for op in planned.volume_ops)
        assert written == 2  # only the unique tail hits the disk
        assert scheme.map_table.translate_many(range(200, 203)) == [0, 1, 2]
        o.check()


class TestConsistencyRules:
    def test_referenced_block_never_overwritten(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])      # donor at home 0
        o.write(100, [1])    # LBA 100 -> PBA 0
        o.write(0, [2])      # new content for LBA 0: must redirect
        assert scheme.map_table.translate(100) == 0
        assert scheme.content.read(0) == 1  # referenced data intact
        assert scheme.map_table.translate(0) != 0
        o.check()

    def test_log_block_reclaimed_when_dereferenced(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(100, [1])    # pin home 0
        o.write(0, [2])      # LBA 0 redirected to a log block
        log_pba = scheme.map_table.translate(0)
        assert scheme.log_alloc.is_allocated(log_pba)
        o.write(100, [3])    # unpin home 0
        o.write(0, [4])      # home free again: write home, free log
        assert scheme.map_table.translate(0) == 0
        assert not scheme.log_alloc.is_allocated(log_pba)
        o.check()

    def test_stale_intra_request_duplicate_falls_back(self, scheme):
        o = Oracle(scheme)
        o.write(0, [7])
        # One request that overwrites the donor AND tries to dedupe
        # onto it: chunk 0 rewrites LBA 0 with new content, and a
        # second request dedupes onto the now-stale index entry.
        o.write(0, [8])            # invalidates fp 7 at PBA 0
        planned = o.write(50, [7])  # index miss now -> unique write
        assert not planned.eliminated
        o.check()

    def test_integrity_after_mixed_workload(self, scheme, rng):
        o = Oracle(scheme)
        fps = list(range(1, 40))
        for step in range(300):
            lba = int(rng.integers(0, 1000))
            n = int(rng.integers(1, 6))
            content = [int(rng.choice(fps)) for _ in range(n)]
            o.write(lba, content)
            if step % 5 == 0:
                o.read(lba, n)
        o.check()


class TestStats:
    def test_category_counts_in_stats(self, scheme):
        o = Oracle(scheme)
        o.write(0, [1])
        o.write(10, [1])
        s = scheme.stats()
        assert s["category_1_fully_redundant"] == 1
        assert s["scheme"] == "Select-Dedupe"
