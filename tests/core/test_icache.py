"""Unit tests for iCache: ghosts, cost-benefit, repartitioning."""

import pytest

from repro.cache.lru import LRUCache
from repro.constants import BLOCK_SIZE, INDEX_ENTRY_SIZE
from repro.core.icache import ICache, ICacheConfig
from repro.dedup.index_table import IndexEntry, IndexTable
from repro.errors import CacheError

TOTAL = 64 * BLOCK_SIZE  # room for 64 read blocks / 8192 index entries


def make_icache(**kw):
    cfg = dict(total_bytes=TOTAL, initial_index_fraction=0.5, step_fraction=0.1)
    cfg.update(kw)
    return ICache(ICacheConfig(**cfg))


class TestConfig:
    def test_invalid(self):
        with pytest.raises(CacheError):
            ICacheConfig(total_bytes=-1)
        with pytest.raises(CacheError):
            ICacheConfig(total_bytes=10, initial_index_fraction=2.0)
        with pytest.raises(CacheError):
            ICacheConfig(total_bytes=10, step_fraction=0.0)
        with pytest.raises(CacheError):
            ICacheConfig(total_bytes=10, min_fraction=0.7)


class TestGhostPlumbing:
    def test_read_miss_probes_ghost(self):
        ic = make_icache()
        ic.read_insert(1)
        # Evict by filling beyond the read capacity (32 blocks).
        for pba in range(2, 40):
            ic.read_insert(pba)
        assert 1 not in ic.read
        assert ic.read_lookup(1) is False
        assert ic.ghost_read.hits == 1

    def test_index_miss_probes_ghost(self):
        ic = make_icache()
        ic.note_index_evictions([(123, IndexEntry(pba=5))])
        ic.on_index_miss(123)
        assert ic.ghost_index.hits == 1

    def test_ghost_plus_actual_bounded_by_total(self):
        ic = make_icache()
        assert ic.index.capacity_bytes + ic.ghost_index.capacity_bytes == TOTAL
        assert ic.read.capacity_bytes + ic.ghost_read.capacity_bytes == TOTAL

    def test_read_remove_clears_both(self):
        ic = make_icache()
        ic.read_insert(1)
        ic.read_remove(1)
        assert ic.read_lookup(1) is False
        # miss above was after removal: ghost should not hold it either
        assert ic.ghost_read.hits == 0


class TestCostBenefit:
    def test_benefits_scale_with_hits(self):
        ic = make_icache(read_miss_cost=10e-3, write_saved_cost=20e-3)
        ic.note_index_evictions([(1, IndexEntry(0)), (2, IndexEntry(1))])
        ic.on_index_miss(1)
        ic.on_index_miss(2)
        ic.read_insert(9)
        for pba in range(10, 50):
            ic.read_insert(pba)
        ic.read_lookup(9)  # ghost read hit
        ib, rb = ic.cost_benefit()
        assert ib == pytest.approx(2 * 20e-3)
        assert rb == pytest.approx(1 * 10e-3)


class TestRepartition:
    def test_index_wins_grows_index(self):
        ic = make_icache()
        before = ic.index.capacity_bytes
        ic.note_index_evictions([(1, IndexEntry(0))])
        ic.on_index_miss(1)
        swapped = ic.on_epoch(1.0)
        assert ic.index.capacity_bytes == before + int(TOTAL * 0.1)
        assert swapped == pytest.approx(int(TOTAL * 0.1))
        assert ic.repartitions == 1

    def test_read_wins_grows_read(self):
        ic = make_icache()
        before = ic.read.capacity_bytes
        ic.read_insert(1)
        for pba in range(2, 40):
            ic.read_insert(pba)
        ic.read_lookup(1)
        ic.on_epoch(1.0)
        assert ic.read.capacity_bytes == before + int(TOTAL * 0.1)

    def test_tie_no_repartition(self):
        ic = make_icache()
        assert ic.on_epoch(1.0) == 0.0
        assert ic.repartitions == 0

    def test_min_fraction_floor(self):
        ic = make_icache(min_fraction=0.25)
        floor = int(TOTAL * 0.25)
        for epoch in range(50):
            ic.read_insert(epoch + 1000)
            # force read wins every epoch
            ic.ghost_read.record_eviction(epoch)
            ic.ghost_read.hit(epoch)
            ic.on_epoch(float(epoch))
        assert ic.index.capacity_bytes >= floor

    def test_epoch_resets_ghost_counters(self):
        ic = make_icache()
        ic.note_index_evictions([(1, IndexEntry(0))])
        ic.on_index_miss(1)
        ic.on_epoch(1.0)
        assert ic.ghost_index.hits == 0

    def test_partition_history_recorded(self):
        ic = make_icache()
        ic.on_epoch(1.0)
        ic.on_epoch(2.0)
        assert len(ic.partition_history) == 2
        assert ic.partition_history[0][0] == 1.0

    def test_total_capacity_invariant(self):
        ic = make_icache()
        for epoch in range(30):
            if epoch % 2:
                ic.note_index_evictions([(epoch, IndexEntry(epoch))])
                ic.on_index_miss(epoch)
            else:
                ic.ghost_read.record_eviction(epoch + 500)
                ic.ghost_read.hit(epoch + 500)
            ic.on_epoch(float(epoch))
            assert ic.index.capacity_bytes + ic.read.capacity_bytes == TOTAL


class TestSwapIn:
    def test_index_entries_restored_through_index_table(self):
        ic = make_icache(step_fraction=0.25)
        table = IndexTable(ic.index)
        ic.attach_index_table(table)
        # Fill the index beyond half so a shrink evicts real entries.
        n = ic.index.capacity_bytes // INDEX_ENTRY_SIZE
        for fp in range(n):
            table.insert(fp, fp + 10_000)
        ic.note_index_evictions(table.drain_evicted())
        # Force a read-favouring epoch: index shrinks.
        ic.ghost_read.record_eviction("blk")
        ic.ghost_read.hit("blk")
        ic.on_epoch(1.0)
        shrunk = len(ic.index)
        # Now force an index-favouring epoch: grow and swap back in.
        ic.on_index_miss(0)  # may or may not hit ghost; force benefit:
        ic.ghost_index.hits += 1
        ic.on_epoch(2.0)
        assert len(ic.index) > shrunk
        # Restored entries are usable for dedup lookups again.
        restored = sum(1 for fp in range(n) if table.peek(fp) is not None)
        assert restored > shrunk

    def test_read_blocks_restored_on_growth(self):
        ic = make_icache(step_fraction=0.25)
        for pba in range(32):
            ic.read_insert(pba)
        # Shrink the read cache (index wins), then grow it back.
        ic.ghost_index.record_eviction(1)
        ic.ghost_index.hit(1)
        ic.on_epoch(1.0)
        held_after_shrink = len(ic.read)
        ic.ghost_read.record_eviction("x")
        ic.ghost_read.hit("x")
        ic.on_epoch(2.0)
        assert len(ic.read) > held_after_shrink

    def test_stats_keys(self):
        ic = make_icache()
        s = ic.stats()
        assert {"index_bytes", "read_bytes", "repartitions", "total_swapped_bytes"} <= set(s)
