"""Behavioural tests for POD (Select-Dedupe + iCache)."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.icache import ICache
from repro.core.pod import POD
from tests.conftest import Oracle


@pytest.fixture
def pod():
    return POD(
        SchemeConfig(
            logical_blocks=4096,
            memory_bytes=256 * 1024,
            icache_epoch=0.5,
        )
    )


class TestComposition:
    def test_uses_icache(self, pod):
        assert isinstance(pod.cache, ICache)
        assert pod.icache is pod.cache

    def test_epoch_interval_from_config(self, pod):
        assert pod.epoch_interval == 0.5

    def test_index_table_attached_for_swap_in(self, pod):
        assert pod.cache._index_table is pod.index_table

    def test_inherits_select_dedupe_policy(self, pod):
        o = Oracle(pod)
        o.write(0, [1])
        planned = o.write(100, [1])
        assert planned.eliminated
        o.check()

    def test_features_table1(self, pod):
        assert pod.features["cache_partitioning"] == "dynamic/adaptive"
        assert pod.features["small_writes_elimination"] is True
        assert pod.features["capacity_saving"] is True


class TestEpochBehaviour:
    def test_on_epoch_returns_swap_ops(self, pod):
        # Force an index-favouring epoch.
        pod.cache.ghost_index.record_eviction(1)
        pod.cache.ghost_index.hit(1)
        ops = pod.on_epoch(1.0)
        assert len(ops) == 2  # swap-in read + swap-out write
        for op in ops:
            assert pod.regions.is_swap(op.pba)

    def test_quiet_epoch_no_swap(self, pod):
        assert pod.on_epoch(1.0) == []

    def test_swap_cursor_wraps_region(self, pod):
        pod_swap_blocks = pod.regions.swap_blocks
        for i in range(pod_swap_blocks * 3):
            side = pod.cache.ghost_index if i % 2 else pod.cache.ghost_read
            side.record_eviction(i)
            side.hit(i)
            for op in pod.on_epoch(float(i + 1)):
                assert pod.regions.is_swap(op.pba)
                assert pod.regions.is_swap(op.pba + op.nblocks - 1)

    def test_integrity_with_epochs_interleaved(self, pod, rng):
        o = Oracle(pod)
        for step in range(200):
            lba = int(rng.integers(0, 500))
            content = [int(rng.integers(1, 30)) for _ in range(int(rng.integers(1, 5)))]
            o.write(lba, content)
            if step % 10 == 0:
                pod.on_epoch(o.now)
        o.check()
