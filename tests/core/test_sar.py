"""Behavioural tests for the SAR (SSD-assisted) extension."""

import pytest

from repro.baselines.base import SchemeConfig
from repro.core.sar import SARDedupe
from repro.errors import ConfigError
from repro.sim.replay import ReplayConfig, replay_trace
from repro.storage.ssd import Ssd, SsdParams
from repro.errors import StorageError
from tests.conftest import Oracle


def make(ssd_kb=256):
    return SARDedupe(
        SchemeConfig(
            logical_blocks=4096,
            memory_bytes=64 * 1024,
            ssd_bytes=ssd_kb * 1024,
        )
    )


class TestSsdModel:
    def test_service_time_flat(self):
        p = SsdParams()
        assert p.service_time(1) < 1e-3  # no seeks, sub-millisecond
        assert p.service_time(8) > p.service_time(1)

    def test_fcfs_horizon(self):
        ssd = Ssd(SsdParams())
        first = ssd.service(0.0, 4)
        second = ssd.service(0.0, 4)
        assert second > first
        ssd.reset()
        assert ssd.busy_until == 0.0

    def test_invalid_params(self):
        with pytest.raises(StorageError):
            SsdParams(total_blocks=0)
        with pytest.raises(StorageError):
            SsdParams().service_time(0)


class TestAdmission:
    def test_remapped_dedupe_admitted(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        planned = o.write(100, [1])  # LBA 100 -> block 0: fragmented ref
        assert planned.eliminated
        assert planned.ssd_write_blocks == 1
        assert s.ssd_admitted_blocks == 1
        o.check()

    def test_same_location_rewrite_not_admitted(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        planned = o.write(0, [1])  # same LBA, same content: no remap
        assert planned.eliminated
        assert planned.ssd_write_blocks == 0

    def test_config_requires_ssd(self):
        with pytest.raises(ConfigError):
            SARDedupe(SchemeConfig(logical_blocks=1024, memory_bytes=64 * 1024))


class TestReads:
    def test_ssd_resident_blocks_skip_hdd(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1, 2, 3, 4])
        o.write(100, [1, 2, 3, 4])  # deduped, blocks staged on SSD
        planned = o.read(100, 4)
        assert planned.ssd_read_blocks == 4
        assert planned.volume_ops == []
        assert s.ssd_served_blocks == 4
        o.check()

    def test_mixed_read_splits_traffic(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1, 2])
        o.write(100, [1, 2])   # staged
        o.write(102, [50, 51])  # plain HDD data
        planned = o.read(100, 4)
        assert planned.ssd_read_blocks == 2
        assert sum(op.nblocks for op in planned.volume_ops) == 2

    def test_overwrite_invalidates_ssd_copy(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(100, [1])    # block 0 staged
        o.write(100, [9])    # LBA 100 rewritten uniquely
        o.write(0, [8])      # block 0's home content replaced (refs gone)
        planned = o.read(0, 1)
        assert planned.ssd_read_blocks == 0  # stale copy was dropped
        o.check()

    def test_ssd_capacity_lru(self):
        s = make(ssd_kb=8)  # 2 blocks of SSD
        o = Oracle(s)
        for i in range(4):
            o.write(i, [100 + i])
        for i in range(4):
            o.write(200 + i, [100 + i])  # four remapped refs, SSD holds 2
        assert len(s._ssd) == 2
        o.check()

    def test_power_failure_drops_residency(self):
        s = make()
        o = Oracle(s)
        o.write(0, [1])
        o.write(100, [1])
        s.simulate_power_failure()
        planned = o.read(100, 1)
        assert planned.ssd_read_blocks == 0
        o.check()


class TestReplayIntegration:
    def _trace(self):
        from repro.traces.synthetic import WEB_VM, generate_trace

        return generate_trace(WEB_VM, scale=0.005)

    def test_replay_with_ssd(self):
        trace = self._trace()
        scheme = SARDedupe(
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=64 * 1024,
                ssd_bytes=4 * 1024 * 1024,
            )
        )
        result = replay_trace(trace, scheme, ReplayConfig(ssd_params=SsdParams()))
        assert result.metrics.requests > 0
        assert scheme.ssd_admitted_blocks > 0

    def test_replay_without_ssd_params_is_config_error(self):
        trace = self._trace()
        scheme = SARDedupe(
            SchemeConfig(
                logical_blocks=trace.logical_blocks,
                memory_bytes=64 * 1024,
                ssd_bytes=4 * 1024 * 1024,
            )
        )
        with pytest.raises(ConfigError):
            replay_trace(trace, scheme)

    def test_sar_reads_no_slower_than_plain_select(self):
        from repro.core.select_dedupe import SelectDedupe

        trace = self._trace()

        def read_mean(cls, **kw):
            scheme = cls(
                SchemeConfig(
                    logical_blocks=trace.logical_blocks,
                    memory_bytes=64 * 1024,
                    **kw,
                )
            )
            config = ReplayConfig(ssd_params=SsdParams()) if kw else ReplayConfig()
            return replay_trace(trace, scheme, config).metrics.read_summary().mean

        select = read_mean(SelectDedupe)
        sar = read_mean(SARDedupe, ssd_bytes=4 * 1024 * 1024)
        assert sar <= select * 1.02
