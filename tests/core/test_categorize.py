"""Unit tests for the Figure-5 write categorisation."""

import pytest

from repro.core.categorize import (
    Category,
    categorize_write,
    sequential_runs,
)
from repro.errors import DedupError


class TestSequentialRuns:
    def test_all_unique(self):
        assert sequential_runs([None, None]) == []

    def test_single_run(self):
        assert sequential_runs([10, 11, 12]) == [(0, 3)]

    def test_run_broken_by_unique(self):
        assert sequential_runs([10, 11, None, 12]) == [(0, 2), (3, 1)]

    def test_run_broken_by_non_consecutive_pba(self):
        assert sequential_runs([10, 11, 20, 21]) == [(0, 2), (2, 2)]

    def test_isolated_duplicates(self):
        assert sequential_runs([5, None, 9, None, 3]) == [(0, 1), (2, 1), (4, 1)]

    def test_doctest_example(self):
        assert sequential_runs([10, 11, 12, None, 7, 9]) == [(0, 3), (4, 1), (5, 1)]

    def test_descending_pbas_not_a_run(self):
        assert sequential_runs([12, 11, 10]) == [(0, 1), (1, 1), (2, 1)]


class TestCategorize:
    def test_unique_request(self):
        d = categorize_write([None, None, None])
        assert d.category is Category.UNIQUE
        assert d.dedupe_chunks == []

    def test_category1_fully_redundant_sequential(self):
        d = categorize_write([20, 21, 22, 23])
        assert d.category is Category.FULLY_REDUNDANT
        assert d.dedupe_chunks == [0, 1, 2, 3]

    def test_category1_single_small_write(self):
        """A 4 KB fully redundant write is eliminated -- the key
        difference from iDedup."""
        d = categorize_write([42])
        assert d.category is Category.FULLY_REDUNDANT
        assert d.dedupe_chunks == [0]

    def test_fully_redundant_but_scattered_is_not_category1(self):
        d = categorize_write([10, 20, 30])
        assert d.category is Category.SCATTERED_PARTIAL
        assert d.dedupe_chunks == []

    def test_category2_below_threshold(self):
        d = categorize_write([10, 11, None, None], threshold=3)
        assert d.category is Category.SCATTERED_PARTIAL
        assert d.dedupe_chunks == []
        assert d.redundant_chunks == [0, 1]

    def test_category3_sequential_run_meets_threshold(self):
        d = categorize_write([10, 11, 12, None, None], threshold=3)
        assert d.category is Category.SEQUENTIAL_PARTIAL
        assert d.dedupe_chunks == [0, 1, 2]

    def test_category3_only_qualifying_runs_deduplicated(self):
        # One 3-run and one isolated duplicate: only the run dedupes.
        d = categorize_write([10, 11, 12, None, 55, None], threshold=3)
        assert d.category is Category.SEQUENTIAL_PARTIAL
        assert d.dedupe_chunks == [0, 1, 2]
        assert 4 in d.redundant_chunks

    def test_scattered_many_short_runs_stay_category2(self):
        # Three isolated duplicates: redundant count meets the
        # threshold but no run does, so nothing is deduplicated.
        d = categorize_write([10, None, 30, None, 50, None], threshold=3)
        assert d.category is Category.SCATTERED_PARTIAL

    def test_threshold_respected(self):
        dup = [10, 11, None, None]
        assert categorize_write(dup, threshold=2).category is Category.SEQUENTIAL_PARTIAL
        assert categorize_write(dup, threshold=3).category is Category.SCATTERED_PARTIAL

    def test_fully_redundant_with_two_runs_uses_threshold_rule(self):
        # All chunks redundant but split across two sequential runs:
        # not category 1; each 2-run is below threshold 3 -> bypass.
        d = categorize_write([10, 11, 30, 31], threshold=3)
        assert d.category is Category.SCATTERED_PARTIAL
        # With threshold 2 both runs qualify -> category 3.
        d = categorize_write([10, 11, 30, 31], threshold=2)
        assert d.category is Category.SEQUENTIAL_PARTIAL
        assert d.dedupe_chunks == [0, 1, 2, 3]

    def test_empty_request_rejected(self):
        with pytest.raises(DedupError):
            categorize_write([])

    def test_bad_threshold_rejected(self):
        with pytest.raises(DedupError):
            categorize_write([None], threshold=0)

    def test_runs_reported(self):
        d = categorize_write([10, 11, None, 50])
        assert d.runs == [(0, 2), (3, 1)]
