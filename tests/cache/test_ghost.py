"""Unit tests for the metadata-only ghost cache."""

import pytest

from repro.cache.ghost import GhostCache
from repro.errors import CacheError


class TestGhostCache:
    def test_record_and_hit(self):
        g = GhostCache(100, default_entry_size=10)
        g.record_eviction("a")
        assert g.hit("a") is True
        assert g.hits == 1

    def test_hit_removes_key(self):
        g = GhostCache(100, default_entry_size=10)
        g.record_eviction("a")
        g.hit("a")
        assert "a" not in g
        assert g.hit("a") is False

    def test_miss_not_counted(self):
        g = GhostCache(100, default_entry_size=10)
        assert g.hit("never") is False
        assert g.hits == 0

    def test_capacity_ages_out_lru(self):
        g = GhostCache(30, default_entry_size=10)
        g.record_eviction("a")
        g.record_eviction("b")
        g.record_eviction("c")
        dropped = g.record_eviction("d")
        assert dropped == ["a"]
        assert len(g) == 3

    def test_re_eviction_refreshes_recency(self):
        g = GhostCache(30, default_entry_size=10)
        for k in "abc":
            g.record_eviction(k)
        g.record_eviction("a")  # refresh
        dropped = g.record_eviction("d")
        assert dropped == ["b"]

    def test_oversize_entry_dropped_immediately(self):
        g = GhostCache(30, default_entry_size=10)
        dropped = g.record_eviction("big", size=31)
        assert dropped == ["big"]
        assert len(g) == 0

    def test_remove_silent(self):
        g = GhostCache(100, default_entry_size=10)
        g.record_eviction("a")
        assert g.remove("a") is True
        assert g.hits == 0
        assert g.remove("a") is False

    def test_resize_sheds(self):
        g = GhostCache(40, default_entry_size=10)
        for k in "abcd":
            g.record_eviction(k)
        dropped = g.resize(20)
        assert dropped == ["a", "b"]
        assert g.used_bytes == 20

    def test_keys_mru_order(self):
        g = GhostCache(100, default_entry_size=10)
        for k in "abc":
            g.record_eviction(k)
        assert list(g.keys_mru()) == ["c", "b", "a"]

    def test_reset_counters(self):
        g = GhostCache(100, default_entry_size=10)
        g.record_eviction("a")
        g.hit("a")
        g.reset_counters()
        assert g.hits == 0

    def test_invalid_params(self):
        with pytest.raises(CacheError):
            GhostCache(-1)
        g = GhostCache(10)
        with pytest.raises(CacheError):
            g.record_eviction("a", size=0)
