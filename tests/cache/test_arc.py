"""Unit tests for the ARC replacement policy."""

import pytest

from repro.cache.arc import ARCache
from repro.errors import CacheError


class TestARCBasics:
    def test_put_get(self):
        c = ARCache(4)
        c.put("a", 1)
        assert c.get("a") == 1

    def test_first_get_moves_t1_to_t2(self):
        c = ARCache(4)
        c.put("a", 1)
        assert "a" in c.t1
        c.get("a")
        assert "a" in c.t2 and "a" not in c.t1

    def test_capacity_bound(self):
        c = ARCache(4)
        for i in range(50):
            c.put(i, i)
        assert len(c) <= 4

    def test_ghost_lists_bounded(self):
        c = ARCache(4)
        for i in range(100):
            c.put(i, i)
        s = c.sizes()
        assert s["t1"] + s["t2"] <= 4
        assert s["t1"] + s["t2"] + s["b1"] + s["b2"] <= 2 * 4

    def test_invalid_capacity(self):
        with pytest.raises(CacheError):
            ARCache(0)


class TestARCAdaptation:
    def test_b1_hit_grows_p(self):
        c = ARCache(4)
        c.put("hot", 1)
        c.get("hot")  # one entry in T2 so evictions go through _replace
        for i in range(8):  # recency traffic overflows T1 into B1
            c.put(i, i)
        assert c.b1, "recency evictions should populate B1"
        ghost = next(iter(c.b1))
        p_before = c.p
        c.put(ghost, "again")
        assert c.p >= p_before
        assert ghost in c.t2

    def test_b2_hit_shrinks_p(self):
        c = ARCache(4)
        # Build frequent entries, then push them out to B2.
        for i in range(4):
            c.put(i, i)
            c.get(i)  # promote to T2
        for i in range(10, 20):
            c.put(i, i)
            c.get(i)
        if not c.b2:
            pytest.skip("workload did not populate B2")
        ghost = next(iter(c.b2))
        # Force p up first so the shrink is observable.
        c.p = 3
        c.put(ghost, "again")
        assert c.p <= 3
        assert ghost in c.t2

    def test_scan_resistance(self):
        """A one-pass scan must not wipe the frequent working set."""
        c = ARCache(8)
        hot = list(range(4))
        for k in hot:
            c.put(k, k)
            c.get(k)
            c.get(k)
        for k in range(100, 200):  # the scan
            c.put(k, k)
        # Re-reference the hot set: ARC should still do better than
        # "everything was evicted" thanks to B-list adaptation.
        c.hits = c.misses = 0
        for k in hot:
            if c.get(k) is None:
                c.put(k, k)
        assert c.hits >= 1

    def test_hit_ratio_reporting(self):
        c = ARCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("zz")
        assert c.hit_ratio == 0.5


class TestARCStress:
    def test_mixed_workload_invariants(self):
        c = ARCache(16)
        import random

        r = random.Random(7)
        for _ in range(3000):
            k = r.randrange(60)
            if c.get(k) is None:
                c.put(k, k)
            s = c.sizes()
            assert s["t1"] + s["t2"] <= 16
            assert 0 <= s["p"] <= 16
            assert s["t1"] + s["b1"] <= 16
            assert s["t1"] + s["t2"] + s["b1"] + s["b2"] <= 32
