"""Unit tests for the fixed index/read cache partition."""

import pytest

from repro.cache.partition import PartitionedCache, PartitionSizes, split_budget
from repro.constants import BLOCK_SIZE, INDEX_ENTRY_SIZE
from repro.errors import CacheError


class TestSplitBudget:
    def test_even_split(self):
        s = split_budget(1000, 0.5)
        assert s.index_bytes == 500 and s.read_bytes == 500

    def test_extremes(self):
        assert split_budget(1000, 0.0).index_bytes == 0
        assert split_budget(1000, 1.0).read_bytes == 0

    def test_total_preserved(self):
        for frac in (0.2, 0.33, 0.8):
            s = split_budget(1001, frac)
            assert s.total_bytes == 1001

    def test_invalid(self):
        with pytest.raises(CacheError):
            split_budget(-1, 0.5)
        with pytest.raises(CacheError):
            split_budget(100, 1.5)
        with pytest.raises(CacheError):
            PartitionSizes(-1, 0)


class TestPartitionedCache:
    def test_entry_sizes(self):
        pc = PartitionedCache(1 << 20, 0.5)
        assert pc.index.default_entry_size == INDEX_ENTRY_SIZE
        assert pc.read.default_entry_size == BLOCK_SIZE

    def test_index_roundtrip(self):
        pc = PartitionedCache(1 << 20)
        pc.index_insert(111, 5)
        assert pc.index_lookup(111) == 5
        assert pc.index_remove(111)
        assert pc.index_lookup(111) is None

    def test_read_roundtrip(self):
        pc = PartitionedCache(1 << 20)
        assert pc.read_lookup(7) is False
        pc.read_insert(7)
        assert pc.read_lookup(7) is True
        assert pc.read_remove(7)
        assert pc.read_lookup(7) is False

    def test_on_epoch_is_noop(self):
        pc = PartitionedCache(1 << 20)
        assert pc.on_epoch(1.0) == 0.0

    def test_ghost_hooks_are_noops(self):
        pc = PartitionedCache(1 << 20)
        pc.on_index_miss(123)
        pc.note_index_evictions([(1, None)])

    def test_stats_keys(self):
        pc = PartitionedCache(1 << 20, 0.25)
        stats = pc.stats()
        assert stats["index_bytes"] == (1 << 20) // 4
        assert {"read_hits", "read_misses", "index_hits", "index_misses"} <= set(stats)

    def test_index_capacity_in_entries(self):
        pc = PartitionedCache(64 * INDEX_ENTRY_SIZE * 2, 0.5)
        for fp in range(100):
            pc.index_insert(fp, fp)
        assert len(pc.index) == 64
