"""Unit tests for the byte-capacity LRU cache."""

import pytest

from repro.cache.lru import LRUCache
from repro.errors import CacheError


class TestBasics:
    def test_put_get(self):
        c = LRUCache(100)
        c.put("a", 1, size=10)
        assert c.get("a") == 1

    def test_miss_returns_none(self):
        c = LRUCache(100)
        assert c.get("missing") is None

    def test_contains_and_len(self):
        c = LRUCache(100)
        c.put("a", size=10)
        assert "a" in c and len(c) == 1

    def test_used_and_free_bytes(self):
        c = LRUCache(100)
        c.put("a", size=30)
        c.put("b", size=20)
        assert c.used_bytes == 50
        assert c.free_bytes == 50

    def test_update_replaces_size(self):
        c = LRUCache(100)
        c.put("a", size=30)
        c.put("a", size=50)
        assert c.used_bytes == 50

    def test_default_entry_size(self):
        c = LRUCache(100, default_entry_size=25)
        c.put("a")
        assert c.used_bytes == 25

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CacheError):
            LRUCache(-1)
        c = LRUCache(10)
        with pytest.raises(CacheError):
            c.put("a", size=0)


class TestEviction:
    def test_lru_order_evicted_first(self):
        c = LRUCache(30, default_entry_size=10)
        c.put("a")
        c.put("b")
        c.put("c")
        victims = c.put("d")
        assert [v[0] for v in victims] == ["a"]

    def test_get_promotes(self):
        c = LRUCache(30, default_entry_size=10)
        c.put("a")
        c.put("b")
        c.put("c")
        c.get("a")
        victims = c.put("d")
        assert [v[0] for v in victims] == ["b"]

    def test_peek_does_not_promote(self):
        c = LRUCache(30, default_entry_size=10)
        c.put("a")
        c.put("b")
        c.put("c")
        c.peek("a")
        victims = c.put("d")
        assert [v[0] for v in victims] == ["a"]

    def test_oversize_entry_rejected_whole(self):
        c = LRUCache(30, default_entry_size=10)
        c.put("a")
        victims = c.put("big", "x", size=31)
        assert victims == [("big", "x", 31)]
        assert "a" in c and "big" not in c

    def test_capacity_never_exceeded(self):
        c = LRUCache(55, default_entry_size=10)
        for i in range(20):
            c.put(i)
            assert c.used_bytes <= 55

    def test_resize_shrink_sheds_lru(self):
        c = LRUCache(50, default_entry_size=10)
        for k in "abcde":
            c.put(k)
        victims = c.resize(20)
        assert [v[0] for v in victims] == ["a", "b", "c"]
        assert c.keys_lru_order() == ["d", "e"]

    def test_resize_grow_keeps_all(self):
        c = LRUCache(20, default_entry_size=10)
        c.put("a")
        c.put("b")
        assert c.resize(100) == []
        assert len(c) == 2

    def test_pop_lru(self):
        c = LRUCache(100, default_entry_size=10)
        c.put("a")
        c.put("b")
        assert c.pop_lru()[0] == "a"
        assert c.pop_lru()[0] == "b"
        assert c.pop_lru() is None

    def test_clear(self):
        c = LRUCache(100, default_entry_size=10)
        c.put("a")
        c.put("b")
        victims = c.clear()
        assert len(victims) == 2 and len(c) == 0 and c.used_bytes == 0

    def test_remove(self):
        c = LRUCache(100, default_entry_size=10)
        c.put("a")
        assert c.remove("a") is True
        assert c.remove("a") is False
        assert c.used_bytes == 0


class TestCounters:
    def test_hit_miss_counting(self):
        c = LRUCache(100, default_entry_size=10)
        c.put("a")
        c.get("a")
        c.get("b")
        assert c.hits == 1 and c.misses == 1
        assert c.hit_ratio == 0.5

    def test_reset_counters(self):
        c = LRUCache(100, default_entry_size=10)
        c.get("x")
        c.reset_counters()
        assert c.hits == 0 and c.misses == 0
        assert c.hit_ratio == 0.0

    def test_zero_capacity_cache_never_holds(self):
        c = LRUCache(0, default_entry_size=10)
        victims = c.put("a")
        assert victims and "a" not in c
